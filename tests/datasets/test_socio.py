"""Tests for the German socio-economics stand-in (§III-C calibration)."""

import numpy as np
import pytest

from repro.datasets.socio import PARTIES, SPREAD_DIRECTION, make_socio


class TestShape:
    def test_paper_dimensions(self, socio_dataset):
        assert socio_dataset.n_rows == 412
        assert socio_dataset.n_descriptions == 13
        assert socio_dataset.n_targets == 5
        assert socio_dataset.target_names == list(PARTIES)

    def test_vote_shares_plausible(self, socio_dataset):
        totals = socio_dataset.targets.sum(axis=1)
        assert totals.min() > 60.0
        assert totals.max() < 110.0

    def test_region_metadata(self, socio_dataset):
        region = socio_dataset.metadata["region"]
        counts = {kind: (region == kind).sum() for kind in np.unique(region)}
        assert counts["east"] == 87
        assert counts["student_city"] == 3

    def test_named_districts(self, socio_dataset):
        names = set(socio_dataset.metadata["district"])
        for must in ("Leipzig", "Munich", "Heidelberg"):
            assert must in names

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            make_socio(0, n_rows=50, n_east=40, n_city=20)


class TestPlantedStructure:
    def test_east_has_few_children_and_strong_left(self, socio_dataset):
        region = socio_dataset.metadata["region"]
        east = region == "east"
        children = socio_dataset.column("children_pop").values
        left = socio_dataset.target("left_2009")
        assert children[east].mean() < children[~east].mean() - 2.0
        assert left[east].mean() > left[~east].mean() + 10.0

    def test_student_cities_have_few_children(self, socio_dataset):
        region = socio_dataset.metadata["region"]
        children = socio_dataset.column("children_pop").values
        students = region == "student_city"
        west = region == "west"
        assert children[students].mean() < children[west].mean() - 2.0

    def test_cities_middleaged_and_green(self, socio_dataset):
        region = socio_dataset.metadata["region"]
        city = region == "city"
        middleaged = socio_dataset.column("middleaged_pop").values
        green = socio_dataset.target("green_2009")
        assert middleaged[city].mean() > middleaged[~city].mean() + 2.0
        assert green[city].mean() > green[~city].mean() + 5.0

    def test_planted_low_variance_direction(self, socio_dataset):
        """Variance along (0.5704, 0.8214) on (CDU, SPD) is tiny in the East."""
        region = socio_dataset.metadata["region"]
        east = region == "east"
        pair = socio_dataset.targets[:, :2]
        projections = pair @ SPREAD_DIRECTION
        assert projections[east].var() < 0.05 * projections.var()

    def test_cdu_spd_anticorrelated_in_east(self, socio_dataset):
        region = socio_dataset.metadata["region"]
        east = region == "east"
        cdu = socio_dataset.target("cdu_2009")[east]
        spd = socio_dataset.target("spd_2009")[east]
        assert np.corrcoef(cdu, spd)[0, 1] < -0.9
