"""Serve the mining engine over HTTP and stream a job's patterns live.

Two modes:

- no arguments: spin up an in-process ``MiningServer`` on a free port
  (exactly what ``sisd serve`` runs), drive it as a client, shut down;
- with a URL argument: act as a pure client against a server you
  started elsewhere, e.g. ``sisd serve --port 8765`` in another
  terminal, then ``python examples/serve_and_stream.py
  http://127.0.0.1:8765``.

Either way the client side is identical — that is the point of
``RemoteWorkspace``: it mirrors the local ``Workspace`` verbs, and the
canonical wire schemas make the remote patterns bit-identical to a
local run of the same spec.
"""

import sys

from repro import MiningSpec, RemoteWorkspace, Workspace
from repro.events import CallbackObserver


def main() -> int:
    own_server = len(sys.argv) < 2
    handle = None
    if own_server:
        from repro.server import MiningServer

        handle = MiningServer(port=0, backend="thread", max_workers=2).run_in_thread()
        url = handle.url
        print(f"started an in-process mining server at {url}")
    else:
        url = sys.argv[1]

    spec = MiningSpec.build(
        "synthetic", kind="spread", n_iterations=3, beam_width=20, top_k=60
    )

    try:
        with RemoteWorkspace(url) as remote:
            print("server health:", remote.health()["status"])

            # Live streaming over SSE: each pattern is yielded the moment
            # its iteration event arrives; the observer additionally hears
            # the job's scheduling decisions.
            watch = CallbackObserver(
                on_schedule=lambda e: print(f"  ~ scheduler: {e}")
            )
            print("\nstreaming patterns as they are mined:")
            for iteration in remote.stream(spec, observer=watch):
                print(f"  {iteration.index}. {iteration.location}")
                if iteration.spread is not None:
                    print(f"     {iteration.spread}")

            # Submit/poll, Workspace-style.
            job_id = remote.submit(spec)
            result = remote.result(job_id)
            print(f"\nsubmitted again as {job_id}: "
                  f"{remote.status(job_id).value} "
                  f"(cache made it instant: {result.elapsed_seconds:.2f}s run)")

            # The acceptance bar of the network layer: remote == local.
            local = Workspace().mine(spec)
            identical = all(
                str(a.location) == str(b.location)
                and a.location.score.ic == b.location.score.ic
                for a, b in zip(local.iterations, result.iterations)
            )
            print(f"remote result bit-identical to local mining: {identical}")
    finally:
        if handle is not None:
            handle.stop()
            print("server stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
