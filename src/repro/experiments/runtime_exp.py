"""Table II: runtime of background-distribution updating (§III-E).

The paper measures, per dataset, the time to *fit the initial MaxEnt
distribution* and then — as patterns accumulate — the time to find the
MaxEnt distribution incorporating all previous patterns plus the newly
identified one (a full coordinate-descent refit), separately for streams
of location patterns and of spread patterns.

What must reproduce (and is asserted by the tests):

- the init row is roughly constant across datasets;
- location-refit time grows with the iteration count and with the
  target dimension — the Mammals column (d_y = 124) dwarfs the others
  and is only run to 10 iterations, like the paper's dashes;
- spread-refit time stays low (each spread constraint is rank-one).

Pattern streams are synthetic random subgroups (~10% of rows, limited
overlap) rather than mined patterns: Table II times the *model fitting*,
which depends on the constraint structure, not on how patterns were
found; random extensions keep the bench self-contained and fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.registry import load_dataset
from repro.model.background import BackgroundModel
from repro.model.patterns import LocationConstraint, PatternConstraint, SpreadConstraint
from repro.report.tables import format_table
from repro.search.sphere import random_unit
from repro.utils.rng import as_rng
from repro.utils.timer import Stopwatch

#: Table II dataset columns (paper's abbreviations -> registry names).
TABLE2_DATASETS = {"GSE": "socio", "WQ": "water", "Cr": "crime", "Ma": "mammals"}

#: The paper runs Mammals only to iteration 10 ("-" afterwards) because
#: location refits grow too slow for interactive use.
MAMMALS_MAX_ITER = 10


def _random_location_stream(
    targets: np.ndarray, n_patterns: int, rng
) -> list[LocationConstraint]:
    n = targets.shape[0]
    size = max(2, int(0.1 * n))
    return [
        LocationConstraint.from_data(targets, rng.choice(n, size=size, replace=False))
        for _ in range(n_patterns)
    ]


def _random_spread_stream(
    targets: np.ndarray, n_patterns: int, rng
) -> list[SpreadConstraint]:
    n, d = targets.shape
    size = max(2, int(0.1 * n))
    return [
        SpreadConstraint.from_data(
            targets, rng.choice(n, size=size, replace=False), random_unit(rng, d)
        )
        for _ in range(n_patterns)
    ]


@dataclass(frozen=True)
class Table2Result:
    """Per-dataset init time and per-iteration refit times (seconds)."""

    n_iterations: int
    init_seconds: dict[str, float]                  # per dataset label
    location_seconds: dict[str, list[float]]        # label -> per-iteration
    spread_seconds: dict[str, list[float]]          # label -> per-iteration

    def format(self) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        loc_labels = list(self.location_seconds)
        spread_labels = list(self.spread_seconds)
        headers = (
            ["iteration"]
            + [f"{label} loc" for label in loc_labels]
            + [f"{label} spr" for label in spread_labels]
        )
        rows: list[tuple] = [
            (
                "init",
                *(self.init_seconds[label] for label in loc_labels),
                *(self.init_seconds[label] for label in spread_labels),
            )
        ]
        for k in range(self.n_iterations):
            cells: list[object] = [k + 1]
            for label in loc_labels:
                series = self.location_seconds[label]
                cells.append(series[k] if k < len(series) else "-")
            for label in spread_labels:
                series = self.spread_seconds[label]
                cells.append(series[k] if k < len(series) else "-")
            rows.append(tuple(cells))
        return format_table(
            headers, rows, floatfmt=".3f",
            title="Table II: background-distribution update runtimes (seconds)",
        )


def _time_refits(
    model: BackgroundModel, stream: list[PatternConstraint]
) -> list[float]:
    """Refit time with the first k constraints, for k = 1..len(stream)."""
    times = []
    for k in range(1, len(stream) + 1):
        watch = Stopwatch()
        with watch:
            model.refit(stream[:k])
        times.append(watch.elapsed)
    return times


def run_table2(
    seed: int = 0,
    *,
    n_iterations: int = 20,
    datasets: dict[str, str] | None = None,
    mammals_max_iter: int = MAMMALS_MAX_ITER,
) -> Table2Result:
    """Measure init and refit runtimes on the four Table II datasets."""
    datasets = dict(TABLE2_DATASETS if datasets is None else datasets)
    rng = as_rng(seed)

    init_seconds: dict[str, float] = {}
    location_seconds: dict[str, list[float]] = {}
    spread_seconds: dict[str, list[float]] = {}

    for label, name in datasets.items():
        data = load_dataset(name, seed=seed)
        watch = Stopwatch()
        with watch:
            model = BackgroundModel.from_targets(data.targets)
        init_seconds[label] = watch.elapsed

        n_loc = min(n_iterations, mammals_max_iter) if label == "Ma" else n_iterations
        location_stream = _random_location_stream(data.targets, n_loc, rng)
        location_seconds[label] = _time_refits(model.copy(), location_stream)

        if label != "Ma":  # the paper has no Mammals spread column
            spread_stream = _random_spread_stream(data.targets, n_iterations, rng)
            spread_seconds[label] = _time_refits(model.copy(), spread_stream)

    return Table2Result(
        n_iterations=n_iterations,
        init_seconds=init_seconds,
        location_seconds=location_seconds,
        spread_seconds=spread_seconds,
    )
