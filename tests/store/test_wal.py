"""DurableLog: the append-only journal + sqlite compaction underneath.

The WAL's contract is narrow and absolute: every acknowledged ``put``/
``delete`` survives a process death at *any* point — including mid-
compaction and with a torn final journal line — and replaying the same
journal twice changes nothing (idempotence).
"""

import json

import pytest

from repro.store import DurableLog


def _open(tmp_path, **kwargs):
    return DurableLog(tmp_path / "log.db", tmp_path / "wal.jsonl", **kwargs)


class TestRoundTrip:
    def test_put_get_delete(self, tmp_path):
        with _open(tmp_path) as log:
            log.put("a", {"x": 1})
            log.put("b", {"y": [1.0, 2.5]})
            assert log.get("a") == {"x": 1}
            assert log.get("missing") is None
            log.delete("a")
            assert log.get("a") is None
            assert log.snapshot() == {"b": {"y": [1.0, 2.5]}}

    def test_get_returns_a_copy(self, tmp_path):
        with _open(tmp_path) as log:
            log.put("a", {"nested": {"n": 1}})
            log.get("a")["nested"]["n"] = 99
            assert log.get("a") == {"nested": {"n": 1}}

    def test_overwrite_is_last_writer_wins(self, tmp_path):
        with _open(tmp_path) as log:
            log.put("a", {"v": 1})
            log.put("a", {"v": 2})
            assert log.get("a") == {"v": 2}

    def test_float_values_round_trip_exactly(self, tmp_path):
        value = {"f": 1.0 / 3.0, "g": 2.2250738585072014e-308}
        with _open(tmp_path) as log:
            log.put("a", value)
        with _open(tmp_path) as log:
            assert log.get("a") == value


class TestDurability:
    def test_reopen_replays_uncompacted_journal(self, tmp_path):
        # compact_every high: everything stays in the journal.
        log = _open(tmp_path, compact_every=10_000)
        log.put("a", {"v": 1})
        log.put("b", {"v": 2})
        log.delete("a")
        del log  # simulated crash: no close(), no compaction
        with _open(tmp_path) as reopened:
            assert reopened.replayed_ops == 3
            assert reopened.snapshot() == {"b": {"v": 2}}

    def test_reopen_after_compaction(self, tmp_path):
        with _open(tmp_path) as log:
            for i in range(8):
                log.put(f"k{i}", {"v": i})
            log.compact()
            assert log.pending_ops == 0
        with _open(tmp_path) as reopened:
            assert reopened.replayed_ops == 0
            assert reopened.get("k5") == {"v": 5}

    def test_auto_compaction_truncates_journal(self, tmp_path):
        log = _open(tmp_path, compact_every=4)
        for i in range(10):
            log.put(f"k{i}", {"v": i})
        assert log.pending_ops < 4
        log.close()
        with _open(tmp_path) as reopened:
            assert reopened.snapshot() == {f"k{i}": {"v": i} for i in range(10)}

    def test_torn_tail_is_discarded_not_fatal(self, tmp_path):
        log = _open(tmp_path, compact_every=10_000)
        log.put("a", {"v": 1})
        log.put("b", {"v": 2})
        log.close()
        wal = tmp_path / "wal.jsonl"
        # A crash mid-append leaves half a JSON line with no newline.
        wal.write_bytes(wal.read_bytes() + b'{"op": "put", "key": "c"')
        with _open(tmp_path) as reopened:
            assert reopened.discarded_tail
            assert reopened.snapshot() == {"a": {"v": 1}, "b": {"v": 2}}

    def test_replay_is_idempotent(self, tmp_path):
        log = _open(tmp_path, compact_every=10_000)
        log.put("a", {"v": 1})
        log.close()
        # Re-opening replays the journal into sqlite and compacts; a
        # second re-open must see the same state, not a duplicate error.
        with _open(tmp_path) as first:
            assert first.get("a") == {"v": 1}
        with _open(tmp_path) as second:
            assert second.get("a") == {"v": 1}

    def test_journal_lines_are_json_objects(self, tmp_path):
        log = _open(tmp_path, compact_every=10_000)
        log.put("a", {"v": 1})
        log.delete("a")
        lines = (tmp_path / "wal.jsonl").read_text().splitlines()
        ops = [json.loads(line)["op"] for line in lines]
        assert ops == ["put", "delete"]
        log.close()


class TestValidation:
    def test_closed_log_refuses_writes(self, tmp_path):
        log = _open(tmp_path)
        log.close()
        with pytest.raises(Exception):
            log.put("a", {"v": 1})

    def test_close_is_idempotent(self, tmp_path):
        log = _open(tmp_path)
        log.close()
        log.close()
