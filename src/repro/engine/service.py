"""Mining-as-a-service: submit/status/result/cancel over a worker pool.

:class:`MiningService` turns the batch runner into a long-lived server
object: clients submit :class:`~repro.engine.jobs.MiningJob` specs and
poll (or block on) results while a bounded pool of workers drains the
queue. Identical specs are deduplicated through an LRU result cache
keyed by the job fingerprint, so a dashboard re-requesting the same
mining run costs nothing the second time.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import (
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from enum import Enum

from repro.engine.cache import LRUCache
from repro.engine.jobs import JobResult, MiningJob, run_job
from repro.errors import EngineError

#: Pool implementations selectable via ``MiningService(backend=...)``.
BACKENDS = ("process", "thread", "serial")


class JobStatus(str, Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class MiningService:
    """Bounded concurrent execution of mining jobs with result caching.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrently running jobs (default 2).
    backend:
        ``"process"`` (default) isolates each job in a worker process —
        right for CPU-bound mining; ``"thread"`` keeps everything
        in-process (fast startup, handy for tests and small jobs);
        ``"serial"`` executes synchronously at submit time.
    cache_size:
        Capacity of the fingerprint-keyed result cache.

    The service is a context manager; leaving the block shuts the pool
    down and waits for running jobs.
    """

    def __init__(
        self,
        *,
        max_workers: int = 2,
        backend: str = "process",
        cache_size: int = 64,
    ) -> None:
        if max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        if backend not in BACKENDS:
            raise EngineError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.backend = backend
        self.max_workers = max_workers
        if backend == "process":
            self._pool = ProcessPoolExecutor(max_workers=max_workers)
        elif backend == "thread":
            self._pool = ThreadPoolExecutor(max_workers=max_workers)
        else:
            self._pool = None
        self._cache = LRUCache(cache_size)
        self._lock = threading.Lock()
        self._futures: dict[str, Future] = {}
        self._jobs: dict[str, MiningJob] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    def submit(self, job: MiningJob) -> str:
        """Queue a job; returns its id. Cached specs resolve instantly."""
        if not isinstance(job, MiningJob):
            raise EngineError(f"expected MiningJob, got {type(job).__name__}")
        job_id = f"job-{next(self._ids):04d}"
        fp = job.fingerprint()
        cached = self._cache.get(fp)
        if cached is not None:
            future: Future = Future()
            future.set_result(cached)
        elif self._pool is None:
            future = Future()
            try:
                future.set_result(self._finish(fp, run_job(job)))
            except Exception as exc:  # surface via result(), like a pool would
                future.set_exception(exc)
        else:
            future = self._pool.submit(run_job, job)
            future.add_done_callback(self._make_cache_callback(fp))
        with self._lock:
            self._futures[job_id] = future
            self._jobs[job_id] = job
        return job_id

    def status(self, job_id: str) -> JobStatus:
        """Current lifecycle state of one job."""
        future = self._future_of(job_id)
        if future.cancelled():
            return JobStatus.CANCELLED
        if future.running():
            return JobStatus.RUNNING
        if future.done():
            return JobStatus.FAILED if future.exception() else JobStatus.DONE
        return JobStatus.PENDING

    def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until the job finishes and return its result.

        Re-raises the job's exception on failure and
        :class:`concurrent.futures.CancelledError` after a cancel.
        """
        return self._future_of(job_id).result(timeout=timeout)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started yet; True on success."""
        return self._future_of(job_id).cancel()

    def job(self, job_id: str) -> MiningJob:
        """The spec submitted under ``job_id``."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise EngineError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> dict[str, JobStatus]:
        """Snapshot of every submitted job's status, by id."""
        with self._lock:
            ids = list(self._futures)
        return {job_id: self.status(job_id) for job_id in ids}

    def wait_all(self, timeout: float | None = None) -> dict[str, JobStatus]:
        """Wait for all non-cancelled jobs, then return their statuses.

        ``timeout`` bounds the *total* wait; if it expires while jobs
        are still running, :class:`TimeoutError` is raised. Job failures
        and cancellations do not raise here — the returned statuses tell
        that story.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            futures = list(self._futures.values())
        for future in futures:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                future.result(timeout=remaining)
            except CancelledError:
                pass
            except FuturesTimeoutError:  # pre-3.11 this is not TimeoutError
                raise
            except Exception:
                pass
        return self.jobs()

    @property
    def cache_stats(self):
        """Hit/miss counters of the result cache."""
        return self._cache.stats

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _future_of(self, job_id: str) -> Future:
        with self._lock:
            try:
                return self._futures[job_id]
            except KeyError:
                raise EngineError(f"unknown job id {job_id!r}") from None

    def _finish(self, fp: str, result: JobResult) -> JobResult:
        self._cache.put(fp, result)
        return result

    def _make_cache_callback(self, fp: str):
        def _store(future: Future) -> None:
            if not future.cancelled() and future.exception() is None:
                self._cache.put(fp, future.result())

        return _store
