"""Iterative subjectively-interesting subgroup discovery (the facade).

:class:`SubgroupDiscovery` wires the pieces together the way the paper's
experiments use them: fit the background model from a prior (empirical
by default), beam-search the most subjectively interesting location
pattern, optionally find its spread direction, assimilate what was shown
to the user, repeat. Each call to :meth:`step` is one iteration of the
paper's mining loop.

>>> from repro.datasets import make_synthetic
>>> miner = SubgroupDiscovery(make_synthetic(0))
>>> iteration = miner.step(kind="spread")      # doctest: +SKIP
>>> print(iteration.location.description)      # doctest: +SKIP
attr3 = '1'
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.datasets.schema import Dataset
from repro.engine.cache import BeliefCache, CachedStep
from repro.engine.executor import Executor, SerialExecutor
from repro.errors import SearchError
from repro.events import MiningObserver
from repro.interest.dl import DLParams
from repro.interest.si import score_location, score_spread
from repro.lang.description import Description
from repro.lang.refinement import RefinementOperator
from repro.model.background import BackgroundModel
from repro.model.priors import Prior
from repro.obs import clock
from repro.obs.instruments import (
    MINER_STEPS_MINED,
    MINER_STEPS_REPLAYED,
    STEP_PHASE_LOCATION,
    STEP_PHASE_SPREAD,
)
from repro.obs.trace import TRACER, current
from repro.search.beam import LocationBeamSearch, LocationICScorer
from repro.search.config import SearchConfig
from repro.search.results import (
    LocationPatternResult,
    MiningIteration,
    ScoredSubgroup,
    SearchResult,
    SpreadPatternResult,
)
from repro.search.spread import find_spread_direction
from repro.utils.rng import as_rng, generator_from_state, rng_state


class SubgroupDiscovery:
    """Iterative miner over one dataset.

    .. note::
        As a *public entry point* this class is superseded by
        :class:`repro.api.Workspace` driven by a declarative
        :class:`repro.spec.MiningSpec` — the Workspace routes one spec
        to inline, interactive, or service execution and produces
        byte-identical results. ``SubgroupDiscovery`` remains the
        execution substrate underneath and keeps working.

    Parameters
    ----------
    dataset:
        Data with description attributes and real-valued targets.
    targets:
        Optional subset of target attributes to model (names).
    prior:
        Background prior; defaults to the empirical mean/covariance of
        the (selected) targets, the setup of all the paper's experiments.
    config:
        Beam-search settings (paper defaults).
    dl_params:
        Description-length weights (gamma=0.1, eta=1).
    seed:
        Seed for the spread search's random restarts.
    executor:
        Backend for the beam search's scoring shards and the spread
        search's restart fan-out (serial by default; a
        :class:`~repro.engine.executor.ProcessExecutor` returns
        identical results, in parallel).
    observer:
        Optional :class:`~repro.events.MiningObserver` receiving
        ``on_candidate`` for every beam candidate scored and
        ``on_iteration`` for every completed :meth:`step`.
    belief_cache:
        Optional :class:`~repro.engine.cache.BeliefCache`. When given,
        every :meth:`step` first looks itself up under the chain hash of
        (dataset content, config, assimilated-constraint sequence, RNG
        state): a hit *replays* the cached iteration — assimilating the
        stored constraints and restoring the post-step RNG state, so the
        continuation is bit-identical to a cold run — and a miss mines
        normally and stores the outcome. Sessions sharing a prefix of
        assimilated patterns through one cache pay for the first new
        iteration onward only. Replayed steps fire ``on_iteration`` but
        not ``on_candidate`` (no beam search ran).
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        targets: list[str] | None = None,
        prior: Prior | None = None,
        config: SearchConfig = SearchConfig(),
        dl_params: DLParams = DLParams(),
        seed=0,
        executor: Executor | None = None,
        observer: MiningObserver | None = None,
        belief_cache: BeliefCache | None = None,
    ) -> None:
        if targets is not None:
            dataset = dataset.with_targets(targets)
        self.dataset = dataset
        self.targets = dataset.targets
        self.config = config
        self.dl_params = dl_params
        # Case weights (if any) ride the dataset; the model owns them from
        # here on and every scorer/objective reads them off the model.
        self.model = (
            BackgroundModel(dataset.n_rows, prior, weights=dataset.weights)
            if prior is not None
            else BackgroundModel.from_targets(self.targets, weights=dataset.weights)
        )
        self.operator = RefinementOperator(
            dataset,
            n_split_points=config.n_split_points,
            strategy=config.split_strategy,
            attributes=config.attributes,
        )
        self.history: list[MiningIteration] = []
        self._rng = as_rng(seed)
        self.executor = executor if executor is not None else SerialExecutor()
        self.observer = observer
        self.belief_cache = belief_cache
        self._base_fp: str | None = None
        #: Memoized belief chain: ``(constraint, fp_after_it)`` pairs.
        self._chain: list[tuple] = []

    # ------------------------------------------------------------------ #
    # Single-shot searches
    # ------------------------------------------------------------------ #
    def search_locations(self) -> SearchResult:
        """Run the beam search against the *current* belief state."""
        scorer = LocationICScorer(self.model, self.targets)
        search = LocationBeamSearch(
            self.operator,
            scorer,
            config=self.config,
            dl_params=self.dl_params,
            executor=self.executor,
            observer=self.observer,
        )
        return search.run()

    def find_location(self) -> LocationPatternResult:
        """The single most subjectively interesting location pattern."""
        result = self.search_locations()
        if result.best is None:
            raise SearchError(
                "beam search found no admissible subgroup; relax min_coverage "
                "or max_coverage_fraction"
            )
        return self.as_location_result(result.best)

    def as_location_result(self, entry: ScoredSubgroup) -> LocationPatternResult:
        """Promote a beam-search log entry to an assimilable result."""
        return LocationPatternResult(
            description=entry.description,
            indices=entry.indices,
            mean=entry.observed_mean,
            score=entry.score,
            coverage=entry.size / self.dataset.n_rows,
        )

    def find_spread_for(
        self,
        location: LocationPatternResult,
        *,
        sparsity: int | None = None,
    ) -> SpreadPatternResult:
        """Most interesting spread direction for an assimilated location.

        Per §II-D the spread step runs *after* the location pattern has
        been assimilated ("we only ever provide the user with spread
        patterns for subgroups for which the location pattern has been
        provided first"); call :meth:`assimilate` with the location
        result before this, or use :meth:`step` which does both.
        """
        outcome = find_spread_direction(
            self.model,
            location.indices,
            self.targets,
            sparsity=sparsity,
            seed=self._rng,
            executor=self.executor,
        )
        score = score_spread(
            self.model,
            location.indices,
            outcome.direction,
            outcome.variance,
            location.mean,
            len(location.description),
            params=self.dl_params,
        )
        return SpreadPatternResult(
            description=location.description,
            indices=location.indices,
            direction=outcome.direction,
            variance=outcome.variance,
            center=location.mean,
            score=score,
        )

    # ------------------------------------------------------------------ #
    # Assimilation and iteration
    # ------------------------------------------------------------------ #
    def assimilate(
        self, pattern: LocationPatternResult | SpreadPatternResult
    ) -> "SubgroupDiscovery":
        """Update the belief state with a pattern shown to the user."""
        self.model.assimilate(pattern.constraint())
        return self

    def _belief_fingerprint(self) -> str:
        """Chain hash of the current belief state (see BeliefCache).

        The chain is re-derived from ``model.constraints`` every call —
        not tracked by interception — so external :meth:`assimilate`
        calls, undo (a model swap), and resumed sessions all fingerprint
        correctly; the memo only skips re-hashing an unchanged prefix
        (matched by constraint identity, safe because the memo holds the
        references alive).
        """
        if self._base_fp is None:
            self._base_fp = BeliefCache.base_fingerprint(
                self.dataset, self.config, self.dl_params, self.model.prior
            )
        fp = self._base_fp
        chain: list[tuple] = []
        for i, constraint in enumerate(self.model.constraints):
            if i < len(self._chain) and self._chain[i][0] is constraint:
                fp = self._chain[i][1]
            else:
                fp = BeliefCache.extend(fp, constraint)
            chain.append((constraint, fp))
        self._chain = chain
        return fp

    def _replay_step(self, entry: CachedStep) -> MiningIteration:
        """Re-apply one cached iteration as if it had just been mined."""
        for constraint in entry.constraints:
            self.model.assimilate(constraint)
        try:
            self._rng = generator_from_state(entry.rng_state)
        except ValueError as exc:  # pragma: no cover - corrupt cache entry
            raise SearchError(f"belief cache entry is corrupt: {exc}") from exc
        iteration = entry.iteration
        if iteration.index != len(self.history) + 1:
            # The entry was mined at a different history depth (e.g. the
            # warm session assimilated patterns manually); the belief
            # chain proves the *work* is identical, only the label moves.
            iteration = replace(iteration, index=len(self.history) + 1)
        self.history.append(iteration)
        if self.observer is not None:
            self.observer.on_iteration(iteration)
        return iteration

    def step(
        self, *, kind: str = "location", sparsity: int | None = None
    ) -> MiningIteration:
        """One mining iteration: find, show, assimilate.

        ``kind="location"`` mines and assimilates a location pattern;
        ``kind="spread"`` runs the paper's two-step process — location
        first, then the spread direction of the same subgroup — and
        assimilates both. With a :attr:`belief_cache`, a step whose
        belief state was mined before replays from the cache instead
        (bit-identical results, no beam search).
        """
        if kind not in ("location", "spread"):
            raise SearchError(f"kind must be 'location' or 'spread', got {kind!r}")
        key = None
        if self.belief_cache is not None:
            key = BeliefCache.step_key(
                self._belief_fingerprint(), kind, sparsity, rng_state(self._rng)
            )
            entry = self.belief_cache.get(key)
            if entry is not None:
                MINER_STEPS_REPLAYED.inc()
                return self._replay_step(entry)
        trace_ctx = current()
        n_before = len(self.model.constraints)
        t_location = clock.perf_counter()
        location = self.find_location()
        self.assimilate(location)
        t_spread = clock.perf_counter()
        STEP_PHASE_LOCATION.observe(t_spread - t_location)
        TRACER.record("step.location", t_location, t_spread, trace_ctx)
        spread = None
        if kind == "spread":
            spread = self.find_spread_for(location, sparsity=sparsity)
            self.assimilate(spread)
            t_done = clock.perf_counter()
            STEP_PHASE_SPREAD.observe(t_done - t_spread)
            TRACER.record("step.spread", t_spread, t_done, trace_ctx)
        MINER_STEPS_MINED.inc()
        iteration = MiningIteration(
            index=len(self.history) + 1, location=location, spread=spread
        )
        self.history.append(iteration)
        if key is not None:
            self.belief_cache.put(
                key,
                CachedStep(
                    iteration=iteration,
                    constraints=tuple(self.model.constraints[n_before:]),
                    rng_state=rng_state(self._rng),
                ),
            )
        if self.observer is not None:
            self.observer.on_iteration(iteration)
        return iteration

    def run(
        self, n_iterations: int, *, kind: str = "location", sparsity: int | None = None
    ) -> list[MiningIteration]:
        """Run ``n_iterations`` mining steps; returns the new iterations."""
        if n_iterations < 1:
            raise SearchError(f"n_iterations must be >= 1, got {n_iterations}")
        return [self.step(kind=kind, sparsity=sparsity) for _ in range(n_iterations)]

    # ------------------------------------------------------------------ #
    # Utilities
    # ------------------------------------------------------------------ #
    def score_description(self, description: Description) -> ScoredSubgroup:
        """SI of a given intention under the *current* belief state.

        Used to track how the SI of known patterns changes as others are
        assimilated (the paper's Table I).
        """
        mask = self.operator.extension_mask(description.canonical())
        size = int(mask.sum())
        if size == 0:
            raise SearchError(f"description {description} has an empty extension")
        if self.model.weights is None:
            observed = self.targets[mask].mean(axis=0)
        else:
            # Premultiplied weighted mean: bit-identical to the branch
            # above under unit weights (see stats._weighted_mean).
            sub = self.targets[mask]
            w = self.model.weights[mask]
            observed = (sub * w[:, None]).mean(axis=0) * (
                sub.shape[0] / float(w.sum())
            )
        score = score_location(
            self.model, mask, observed, len(description.canonical()),
            params=self.dl_params,
        )
        return ScoredSubgroup(
            description=description.canonical(),
            indices=np.flatnonzero(mask),
            observed_mean=observed,
            score=score,
        )
