"""Tests for the refinement operator."""

import numpy as np
import pytest

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.errors import DataError
from repro.lang.conditions import EqualsCondition, NumericCondition
from repro.lang.description import Description
from repro.lang.refinement import RefinementOperator


@pytest.fixture()
def dataset(rng):
    columns = [
        Column("num", AttributeKind.NUMERIC, rng.standard_normal(50)),
        Column("bin", AttributeKind.BINARY, rng.integers(0, 2, 50).astype(float)),
        Column("cat", AttributeKind.CATEGORICAL, rng.choice(["r", "g", "b"], 50)),
        Column("const", AttributeKind.NUMERIC, np.zeros(50)),
    ]
    return Dataset("toy", columns, rng.standard_normal((50, 1)), ["y"])


class TestPool:
    def test_pool_composition(self, dataset):
        op = RefinementOperator(dataset)
        kinds = {}
        for cond in op.conditions:
            kinds.setdefault(cond.attribute, []).append(cond)
        # numeric: 4 split points x 2 ops = 8 conditions.
        assert len(kinds["num"]) == 8
        # binary: 2 equalities; categorical: 3 equalities.
        assert len(kinds["bin"]) == 2
        assert len(kinds["cat"]) == 3
        # constant column yields nothing.
        assert "const" not in kinds

    def test_attribute_subset(self, dataset):
        op = RefinementOperator(dataset, attributes=["bin"])
        assert {c.attribute for c in op.conditions} == {"bin"}

    def test_unknown_attribute(self, dataset):
        with pytest.raises(DataError, match="unknown"):
            RefinementOperator(dataset, attributes=["nope"])

    def test_len(self, dataset):
        op = RefinementOperator(dataset)
        assert len(op) == len(op.conditions)


class TestMasks:
    def test_mask_cached_and_readonly(self, dataset):
        op = RefinementOperator(dataset)
        cond = op.conditions[0]
        mask1 = op.mask_of(cond)
        mask2 = op.mask_of(cond)
        assert mask1 is mask2
        with pytest.raises(ValueError):
            mask1[0] = True

    def test_extension_mask_matches_description(self, dataset):
        op = RefinementOperator(dataset)
        description = Description(
            (NumericCondition("num", "<=", 0.0), EqualsCondition("bin", 1.0))
        )
        np.testing.assert_array_equal(
            op.extension_mask(description), description.matches(dataset)
        )


class TestRefinements:
    def test_root_refinements_cover_pool(self, dataset):
        op = RefinementOperator(dataset)
        refined = list(op.refinements(Description()))
        assert len(refined) == len(op.conditions)
        for description, condition in refined:
            assert len(description) == 1
            assert condition in op.conditions

    def test_extensions_shrink(self, dataset):
        op = RefinementOperator(dataset)
        parent = Description((EqualsCondition("bin", 1.0),))
        parent_mask = op.extension_mask(parent)
        for refined, condition in op.refinements(parent):
            child_mask = parent_mask & op.mask_of(condition)
            assert not np.any(child_mask & ~parent_mask)

    def test_no_duplicate_equality_on_same_attribute(self, dataset):
        op = RefinementOperator(dataset)
        parent = Description((EqualsCondition("cat", "r"),))
        for refined, _ in op.refinements(parent):
            cats = [
                c for c in refined.conditions
                if isinstance(c, EqualsCondition) and c.attribute == "cat"
            ]
            assert len(cats) == 1

    def test_no_noop_refinements(self, dataset):
        """Refining never returns a description equal to its parent."""
        op = RefinementOperator(dataset)
        parent = Description((NumericCondition("num", "<=", -10.0),)).canonical()
        for refined, _ in op.refinements(parent):
            assert refined != parent

    def test_loosening_bound_skipped(self, dataset):
        """Adding a looser <= bound canonicalizes away and is skipped."""
        op = RefinementOperator(dataset)
        tightest = min(
            c.threshold
            for c in op.conditions
            if isinstance(c, NumericCondition) and c.attribute == "num" and c.op == "<="
        )
        parent = Description((NumericCondition("num", "<=", tightest),))
        for refined, _ in op.refinements(parent):
            le_bounds = [
                c.threshold
                for c in refined.conditions
                if isinstance(c, NumericCondition)
                and c.attribute == "num" and c.op == "<="
            ]
            assert le_bounds == [tightest]

    def test_contradictions_skipped(self, dataset):
        op = RefinementOperator(dataset)
        for refined, _ in op.refinements(Description()):
            for deeper, _ in op.refinements(refined):
                assert not deeper.is_contradictory()
