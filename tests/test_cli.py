"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.engine.jobs import MiningJob
from repro.persist import save_jobs
from repro.search.config import SearchConfig


class TestDatasets:
    def test_lists_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("crime", "mammals", "socio", "synthetic", "water"):
            assert name in out


class TestExperimentsListing:
    def test_lists_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "table2" in out

    def test_registry_covers_all_paper_artifacts(self):
        expected = {f"fig{k}" for k in range(1, 11)} | {"table1", "table2"}
        assert set(EXPERIMENTS) == expected


class TestMine:
    def test_mine_synthetic(self, capsys):
        code = main(
            ["mine", "synthetic", "--iterations", "2", "--kind", "spread"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "iteration 1" in out
        assert "location:" in out
        assert "spread:" in out

    def test_mine_location_only(self, capsys):
        assert main(["mine", "synthetic", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "spread:" not in out

    def test_unknown_dataset_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["mine", "nope"])

    def test_custom_gamma(self, capsys):
        assert main(["mine", "synthetic", "--iterations", "1", "--gamma", "1.0"]) == 0

    def test_mine_with_workers(self, capsys):
        code = main(
            ["mine", "synthetic", "--iterations", "1", "--workers", "2",
             "--beam-width", "8", "--depth", "2"]
        )
        assert code == 0
        assert "location:" in capsys.readouterr().out

    def test_mine_without_dataset_or_spec_fails_cleanly(self, capsys):
        assert main(["mine"]) == 1
        assert "error:" in capsys.readouterr().err


class TestMineSpec:
    """``mine`` is a thin spec builder; ``--spec`` runs a saved file."""

    def test_save_spec_then_run_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        code = main(
            ["mine", "synthetic", "--iterations", "1", "--beam-width", "8",
             "--depth", "2", "--save-spec", str(spec_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spec written" in out
        assert "iteration" not in out  # builder mode does not mine

        document = json.loads(spec_path.read_text())
        assert document["dataset"]["name"] == "synthetic"
        assert document["search"]["beam_width"] == 8

        assert main(["mine", "--spec", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "iteration 1" in out
        assert "location:" in out

    def test_spec_flag_and_dataset_are_mutually_exclusive(self, tmp_path, capsys):
        assert main(["mine", "synthetic", "--spec", "whatever.json"]) == 1
        assert "not both" in capsys.readouterr().err

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["mine", "--spec", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_invalid_spec_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"dataset": "synthetic", "sarch": {}}))
        assert main(["mine", "--spec", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert str(bad) in err  # the failing file is named

    def test_branch_bound_strategy_from_flags(self, capsys):
        code = main(
            ["mine", "crime", "--strategy", "branch_bound", "--depth", "1"]
        )
        assert code == 0
        assert "location:" in capsys.readouterr().out

    def test_contradictory_flags_rejected_not_ignored(self, capsys):
        # Explicit --iterations on a single-shot strategy must error,
        # not silently mine something else.
        code = main(
            ["mine", "crime", "--strategy", "branch_bound", "--depth", "1",
             "--iterations", "5"]
        )
        assert code == 1
        assert "single-shot" in capsys.readouterr().err

    def test_flags_override_loaded_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert main(
            ["mine", "synthetic", "--iterations", "2", "--beam-width", "8",
             "--depth", "2", "--save-spec", str(spec_path)]
        ) == 0
        capsys.readouterr()
        # --iterations 1 must override the file's 2, not be ignored.
        assert main(["mine", "--spec", str(spec_path), "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "iteration 1" in out
        assert "iteration 2" not in out

    def test_default_valued_flags_still_override_spec(self, tmp_path, capsys):
        # --strategy beam / --measure si spell out library defaults, but
        # typed explicitly they must still beat the loaded spec.
        spec_path = tmp_path / "qb.json"
        assert main(
            ["mine", "crime", "--strategy", "quality_beam", "--measure",
             "mean_shift", "--depth", "1", "--beam-width", "6",
             "--save-spec", str(spec_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["mine", "--spec", str(spec_path), "--strategy", "beam",
             "--measure", "si", "--iterations", "2"]
        )
        assert code == 0
        # quality_beam rejects n_iterations=2, so reaching iteration 2
        # proves the strategy override took effect.
        assert "iteration 2" in capsys.readouterr().out

    def test_targets_flag_selects_branch_bound_target(self, capsys):
        from repro.datasets import load_dataset

        target = load_dataset("synthetic", seed=0).target_names[0]
        code = main(
            ["mine", "synthetic", "--strategy", "branch_bound", "--depth", "1",
             "--targets", target]
        )
        assert code == 0
        assert "location:" in capsys.readouterr().out


class TestBatch:
    @pytest.fixture()
    def jobs_file(self, tmp_path):
        config = SearchConfig(beam_width=6, max_depth=2, top_k=10)
        jobs = [
            MiningJob(dataset="synthetic", seed=s, config=config, name=f"job{s}")
            for s in range(4)
        ]
        return str(save_jobs(jobs, tmp_path / "jobs.json"))

    def test_batch_runs_jobs_concurrently(self, jobs_file, capsys):
        assert main(["batch", jobs_file, "--workers", "4"]) == 0
        out = capsys.readouterr().out
        for s in range(4):
            assert f"[job{s}]" in out
        assert "4 job(s) done" in out

    def test_batch_writes_output_document(self, jobs_file, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        code = main(["batch", jobs_file, "--workers", "2", "--output", str(out_path)])
        assert code == 0
        document = json.loads(out_path.read_text())
        assert len(document["results"]) == 4
        first = document["results"][0]
        assert first["job"]["dataset"] == "synthetic"
        assert first["iterations"][0]["location"]["type"] == "location_pattern"

    def test_batch_empty_file_fails_cleanly(self, tmp_path, capsys):
        # A malformed batch file is a ReproError, not a traceback.
        bad = tmp_path / "bad.json"
        bad.write_text('{"jobs": []}')
        assert main(["batch", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_isolates_failing_jobs(self, tmp_path, capsys):
        import json as json_module

        config = SearchConfig(beam_width=6, max_depth=2, top_k=10)
        jobs = [
            MiningJob(dataset="synthetic", config=config, name="good"),
            MiningJob(dataset="doesnotexist", config=config, name="bad"),
        ]
        jobs_file = str(save_jobs(jobs, tmp_path / "mixed.json"))
        out_path = tmp_path / "results.json"
        code = main(["batch", jobs_file, "--output", str(out_path)])
        assert code == 1  # a failure is reported in the exit code...
        out = capsys.readouterr().out
        assert "[good]" in out
        assert "[bad] FAILED:" in out
        document = json_module.loads(out_path.read_text())
        assert len(document["results"]) == 1  # ...but good work is kept
        assert len(document["failures"]) == 1

    def test_batch_unwritable_output_fails_cleanly(self, jobs_file, tmp_path, capsys):
        code = main(
            ["batch", jobs_file, "--output", str(tmp_path / "no-dir" / "out.json")]
        )
        assert code == 1
        assert "error: cannot write" in capsys.readouterr().err

    def test_batch_invalid_json_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "garbage.json"
        bad.write_text("{not json")
        assert main(["batch", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestExperimentCommand:
    def test_run_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "sisd" in capsys.readouterr().out


class TestMineSharedMemory:
    def test_mine_with_shared_memory(self, capsys):
        code = main(
            ["mine", "synthetic", "--iterations", "1", "--workers", "2",
             "--shared-memory", "--beam-width", "8", "--depth", "2"]
        )
        assert code == 0
        assert "location:" in capsys.readouterr().out

    def test_shared_memory_and_start_method_saved_to_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        code = main(
            ["mine", "synthetic", "--workers", "2", "--shared-memory",
             "--start-method", "spawn", "--save-spec", str(spec_path)]
        )
        assert code == 0
        document = json.loads(spec_path.read_text())
        assert document["executor"]["shared_memory"] is True
        assert document["executor"]["start_method"] == "spawn"
        assert document["executor"]["workers"] == 2

    def test_flags_default_to_off(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert main(["mine", "synthetic", "--save-spec", str(spec_path)]) == 0
        document = json.loads(spec_path.read_text())
        assert document["executor"]["shared_memory"] is False
        assert document["executor"]["start_method"] is None


class TestServe:
    def test_serve_flags_parse_with_documented_defaults(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 8765)
        assert (args.workers, args.backend) == (2, "thread")
        assert args.quiet is False and args.no_candidates is False
        custom = _build_parser().parse_args(
            ["serve", "--port", "0", "--backend", "process",
             "--workers", "4", "--quiet", "--no-candidates"]
        )
        assert custom.port == 0
        assert custom.backend == "process"

    def test_serve_end_to_end_against_the_cli_wiring(self):
        # Drive the same objects _cmd_serve builds (run() would block):
        # a server with a LiveReporter observer, exercised over HTTP.
        from repro.client import RemoteWorkspace
        from repro.report.live import LiveReporter
        from repro.server import MiningServer
        from repro.spec import MiningSpec
        import io

        log = io.StringIO()
        server = MiningServer(
            port=0, backend="thread", max_workers=1,
            observer=LiveReporter(log), candidate_events=False,
        )
        with server.run_in_thread() as handle:
            remote = RemoteWorkspace(handle.url)
            spec = MiningSpec.build(
                "synthetic", n_iterations=1, beam_width=6, max_depth=2, top_k=10
            )
            result = remote.mine(spec)
            assert result.iterations
        printed = log.getvalue()
        assert "queued" in printed  # the server-side log saw the schedule
