"""Beam search driven by a classical quality measure.

Same level-wise exploration as :class:`repro.search.beam.LocationBeamSearch`
but scored by any :class:`~repro.baselines.quality.QualityMeasure` —
the apples-to-apples comparison harness for SI vs the classical measures
(same language, same beam, different objective).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.quality import QualityMeasure
from repro.lang.description import Description
from repro.lang.refinement import RefinementOperator
from repro.search.config import SearchConfig
from repro.utils.timer import TimeBudget


@dataclass(frozen=True)
class QualitySubgroup:
    """A subgroup scored by a baseline quality measure."""

    description: Description
    indices: np.ndarray
    quality: float

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    def __str__(self) -> str:
        return f"{self.description}  (n={self.size}, q={self.quality:.4g})"


@dataclass(frozen=True)
class QualitySearchResult:
    best: QualitySubgroup | None
    log: tuple[QualitySubgroup, ...]
    n_evaluated: int


class QualityBeamSearch:
    """Beam search maximizing an objective quality measure."""

    def __init__(
        self,
        operator: RefinementOperator,
        quality: QualityMeasure,
        *,
        config: SearchConfig = SearchConfig(),
    ) -> None:
        self.operator = operator
        self.quality = quality
        self.config = config

    def run(self) -> QualitySearchResult:
        """Execute the level-wise search under the quality measure."""
        config = self.config
        n_rows = self.quality.n_rows
        budget = TimeBudget(config.time_budget_seconds)
        max_size = min(
            int(config.max_coverage_fraction * n_rows), n_rows - 1
        )

        entries: list[tuple[float, int, QualitySubgroup]] = []
        counter = 0
        beam: list[tuple[Description, np.ndarray]] = [
            (Description(), np.ones(n_rows, dtype=bool))
        ]
        seen: set[Description] = set()
        n_evaluated = 0

        for _depth in range(1, config.max_depth + 1):
            level: list[QualitySubgroup] = []
            for parent_description, parent_mask in beam:
                if budget.expired:
                    break
                for refined, condition in self.operator.refinements(parent_description):
                    if refined in seen:
                        continue
                    seen.add(refined)
                    mask = parent_mask & self.operator.mask_of(condition)
                    size = int(mask.sum())
                    if size < config.min_coverage or size > max_size:
                        continue
                    subgroup = QualitySubgroup(
                        description=refined,
                        indices=np.flatnonzero(mask),
                        quality=float(self.quality(mask)),
                    )
                    level.append(subgroup)
                    entries.append((subgroup.quality, counter, subgroup))
                    counter += 1
                    n_evaluated += 1
            if not level or budget.expired:
                break
            level.sort(key=lambda s: -s.quality)
            beam = []
            for subgroup in level[: config.beam_width]:
                mask = np.zeros(n_rows, dtype=bool)
                mask[subgroup.indices] = True
                beam.append((subgroup.description, mask))

        entries.sort(key=lambda t: (-t[0], t[1]))
        log = tuple(entry for _, _, entry in entries[: config.top_k])
        return QualitySearchResult(
            best=log[0] if log else None,
            log=log,
            n_evaluated=n_evaluated,
        )
