"""MaxEnt background model for *binary* targets (the paper's §V future work).

The paper treats binary presence/absence targets (the mammal data) with
the Gaussian model and notes both that spread patterns degenerate there
(a Bernoulli's variance is a function of its mean) and that "the
attributes are binary is another form of background knowledge that could
in principle be incorporated into the method, but it would lead to
different derivations". These are those derivations.

Model. The MaxEnt distribution over {0,1}^(n x d) subject to expected
column means is a product of independent Bernoullis, one probability per
(point, attribute); like the Gaussian case, points sharing an update
history share parameters (a block partition).

Location update. Assimilating a subgroup-mean constraint
``E[f_I(Y)_j] = phat_j`` by minimum-KL tilts each attribute's log-odds by
a common amount inside the extension:

    p'_(ij) = sigmoid( logit(p_(ij)) + lam_j ),   i in I,

with ``lam_j`` the unique root of the monotone equation
``mean_(i in I) p'_(ij) = phat_j`` (solved by Brent). This is the exact
Bernoulli analogue of Theorem 1.

Information content. Under the model the subgroup mean per attribute is
a (scaled) Poisson-binomial; matching its first two moments with a
normal — exact mean ``mean(p_ij)``, exact variance
``sum p_ij (1 - p_ij) / |I|^2`` — gives the IC used here, the direct
analogue of Eq. 13 restricted to the (independent) binary setting.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize

from repro.errors import ModelError
from repro.model.blocks import BlockPartition
from repro.model.patterns import LocationConstraint

#: Probabilities are clamped inside (EPS, 1-EPS): a subgroup whose
#: observed mean is exactly 0 or 1 would need an infinite tilt.
_EPS = 1e-9
_LOG_2PI = math.log(2.0 * math.pi)


def _logit(p: np.ndarray) -> np.ndarray:
    return np.log(p) - np.log1p(-p)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -700.0, 700.0)))


class BernoulliBackgroundModel:
    """Belief state over an ``(n, d)`` binary target matrix.

    Parameters
    ----------
    n_rows:
        Number of data points.
    prior_means:
        Expected value of each target attribute (the user's prior,
        typically the empirical column means) — clamped into
        ``(1e-9, 1 - 1e-9)``.
    """

    def __init__(self, n_rows: int, prior_means: np.ndarray) -> None:
        if n_rows <= 0:
            raise ModelError(f"n_rows must be positive, got {n_rows}")
        prior = np.asarray(prior_means, dtype=float)
        if prior.ndim != 1 or prior.size == 0:
            raise ModelError("prior_means must be a non-empty 1-D array")
        if np.any(prior < 0.0) or np.any(prior > 1.0):
            raise ModelError("prior means must lie in [0, 1]")
        self.prior = np.clip(prior, _EPS, 1.0 - _EPS)
        self._n_rows = n_rows
        self._partition = BlockPartition(n_rows)
        self._probs: list[np.ndarray] = [self.prior.copy()]
        self._constraints: list[LocationConstraint] = []

    # ------------------------------------------------------------------ #
    # Constructors / introspection
    # ------------------------------------------------------------------ #
    @classmethod
    def from_targets(cls, targets: np.ndarray) -> "BernoulliBackgroundModel":
        """Model with the empirical column means as the prior."""
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets[:, None]
        if not np.isin(targets, (0.0, 1.0)).all():
            raise ModelError("targets must be binary (0/1)")
        return cls(targets.shape[0], targets.mean(axis=0))

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def dim(self) -> int:
        return int(self.prior.shape[0])

    @property
    def n_blocks(self) -> int:
        return self._partition.n_blocks

    @property
    def constraints(self) -> tuple[LocationConstraint, ...]:
        return tuple(self._constraints)

    def block_probs(self, block: int) -> np.ndarray:
        """Per-attribute success probabilities of one block (copy)."""
        return self._probs[block].copy()

    def point_probs(self) -> np.ndarray:
        """``(n, d)`` matrix of per-point success probabilities."""
        return np.stack(self._probs)[self._partition.labels]

    # ------------------------------------------------------------------ #
    # Subgroup expectations
    # ------------------------------------------------------------------ #
    def _as_mask(self, indices) -> np.ndarray:
        arr = np.asarray(indices)
        if arr.dtype == bool:
            if arr.shape != (self._n_rows,):
                raise ModelError(f"mask must have shape ({self._n_rows},)")
            mask = arr
        else:
            mask = np.zeros(self._n_rows, dtype=bool)
            mask[arr.astype(np.int64)] = True
        if not mask.any():
            raise ModelError("subgroup extension is empty")
        return mask

    def subgroup_mean_moments(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """Mean and variance of ``f_I(Y)`` per attribute (Poisson-binomial)."""
        mask = self._as_mask(indices)
        counts = self._partition.counts_in(mask).astype(float)
        size = counts.sum()
        probs = np.stack(self._probs)          # (B, d)
        mean = counts @ probs / size
        variance = counts @ (probs * (1.0 - probs)) / size**2
        return mean, variance

    def expected_subgroup_mean(self, indices) -> np.ndarray:
        """``E[f_I(Y)]`` per attribute under the current model."""
        return self.subgroup_mean_moments(indices)[0]

    # ------------------------------------------------------------------ #
    # Location update (Bernoulli analogue of Theorem 1)
    # ------------------------------------------------------------------ #
    def assimilate(self, constraint: LocationConstraint) -> "BernoulliBackgroundModel":
        """KL-minimal update enforcing the subgroup's observed mean."""
        if constraint.mean.shape[0] != self.dim:
            raise ModelError(
                f"constraint dimension {constraint.mean.shape[0]} != {self.dim}"
            )
        if np.any(constraint.mean < 0.0) or np.any(constraint.mean > 1.0):
            raise ModelError("binary location constraint mean must be in [0, 1]")
        mask = constraint.mask(self._n_rows)
        created = self._partition.split(mask)
        for old_label in sorted(created, key=created.get):
            if created[old_label] != len(self._probs):
                raise ModelError("partition and parameter store out of sync")
            self._probs.append(self._probs[old_label].copy())

        counts = self._partition.counts_in(mask).astype(float)
        inside = np.flatnonzero(counts)
        size = counts.sum()
        target = np.clip(constraint.mean, _EPS, 1.0 - _EPS)
        logits = np.stack([_logit(self._probs[b]) for b in inside])  # (B_in, d)
        weights = counts[inside][:, None]

        for j in range(self.dim):
            col_logits = logits[:, j]

            def gap(lam: float) -> float:
                return float(
                    (weights[:, 0] * _sigmoid(col_logits + lam)).sum() / size
                    - target[j]
                )

            # gap is strictly increasing in lam, from -target to 1-target.
            lo, hi = -1.0, 1.0
            while gap(lo) > 0.0 and lo > -750.0:
                lo *= 2.0
            while gap(hi) < 0.0 and hi < 750.0:
                hi *= 2.0
            lam = float(optimize.brentq(gap, lo, hi, xtol=1e-13))
            for row, b in enumerate(inside):
                self._probs[b][j] = float(_sigmoid(logits[row, j] + lam))

        self._constraints.append(constraint)
        return self

    def constraint_residual(self, constraint: LocationConstraint) -> float:
        """Max absolute gap between expected and specified subgroup mean."""
        expected = self.expected_subgroup_mean(constraint.indices)
        return float(np.abs(expected - np.clip(constraint.mean, _EPS, 1 - _EPS)).max())

    # ------------------------------------------------------------------ #
    # Information content (Eq. 13 analogue)
    # ------------------------------------------------------------------ #
    def location_ic(self, indices, observed_mean: np.ndarray) -> float:
        """IC of a location pattern under the Bernoulli model.

        Normal approximation of the (independent) Poisson-binomial
        subgroup means, matching exact first and second moments.
        """
        observed = np.asarray(observed_mean, dtype=float)
        if observed.shape != (self.dim,):
            raise ModelError(f"observed_mean must have shape ({self.dim},)")
        mean, variance = self.subgroup_mean_moments(indices)
        variance = np.maximum(variance, 1e-300)
        z2 = (observed - mean) ** 2 / variance
        return float(0.5 * np.sum(_LOG_2PI + np.log(variance) + z2))

    def copy(self) -> "BernoulliBackgroundModel":
        """Deep copy (independent partition and probability store)."""
        clone = BernoulliBackgroundModel(self._n_rows, self.prior)
        clone._partition = BlockPartition(self._n_rows)
        clone._partition._labels[:] = self._partition.labels
        clone._partition._n_blocks = self._partition.n_blocks
        clone._probs = [p.copy() for p in self._probs]
        clone._constraints = list(self._constraints)
        return clone
