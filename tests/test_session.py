"""Tests for the interactive mining session."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.session import MiningSession


class TestStepAndHistory:
    def test_steps_accumulate(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        first = session.step()
        second = session.step()
        assert session.n_iterations == 2
        assert session.history[0] is first
        assert first.location.description != second.location.description

    def test_report_lists_patterns(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        session.step(kind="spread")
        text = session.report()
        assert "iterations: 1" in text
        assert "location:" in text
        assert "spread:" in text


class TestUndo:
    def test_undo_restores_belief_state(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        first = session.step()
        means_after_first = session.miner.model.point_means().copy()
        session.step()
        undone = session.undo()
        assert undone.index == 2
        np.testing.assert_allclose(
            session.miner.model.point_means(), means_after_first
        )
        assert session.n_iterations == 1

    def test_undo_to_initial_state(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        session.step()
        session.undo()
        assert session.n_iterations == 0
        assert session.miner.model.n_blocks == 1

    def test_undo_then_remine_finds_same_pattern(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        first = session.step()
        session.undo()
        again = session.step()
        assert str(again.location.description) == str(first.location.description)

    def test_undo_empty_raises(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        with pytest.raises(SearchError, match="undo"):
            session.undo()


class TestPersistence:
    def test_save_and_resume_belief_state(self, synthetic_dataset, tmp_path):
        session = MiningSession(synthetic_dataset, seed=0)
        session.step()
        session.step()
        path = session.save(tmp_path / "session.json")

        resumed = MiningSession.resume(synthetic_dataset, path, seed=0)
        np.testing.assert_allclose(
            resumed.miner.model.point_means(), session.miner.model.point_means()
        )
        assert len(resumed.miner.model.constraints) == 2

    def test_resumed_session_mines_the_next_pattern(
        self, synthetic_dataset, tmp_path
    ):
        """Resume must continue where the saved session left off."""
        session = MiningSession(synthetic_dataset, seed=0)
        session.step()
        path = session.save(tmp_path / "session.json")
        expected_next = session.step()

        resumed = MiningSession.resume(synthetic_dataset, path, seed=0)
        actual_next = resumed.step()
        assert str(actual_next.location.description) == str(
            expected_next.location.description
        )

    def test_resume_wrong_dataset_rejected(
        self, synthetic_dataset, water_dataset, tmp_path
    ):
        session = MiningSession(synthetic_dataset, seed=0)
        path = session.save(tmp_path / "session.json")
        with pytest.raises(SearchError, match="dataset"):
            MiningSession.resume(water_dataset, path)

    def test_save_resume_step_equals_uninterrupted_run(
        self, synthetic_dataset, tmp_path
    ):
        """The RNG round-trip: continuation is bit-identical.

        Spread steps consume the random-restart stream, so without the
        persisted RNG state a resumed session would draw different
        starting points than the uninterrupted run.
        """
        session = MiningSession(synthetic_dataset, seed=0)
        session.step(kind="spread")
        path = session.save(tmp_path / "session.json")
        expected = session.step(kind="spread")

        resumed = MiningSession.resume(synthetic_dataset, path, seed=0)
        actual = resumed.step(kind="spread")
        assert str(actual.location.description) == str(expected.location.description)
        np.testing.assert_array_equal(
            actual.spread.direction, expected.spread.direction
        )
        assert actual.spread.score.ic == expected.spread.score.ic
        # ...and the RNG streams stay aligned on the step after that.
        np.testing.assert_array_equal(
            resumed.step(kind="spread").spread.direction,
            session.step(kind="spread").spread.direction,
        )

    def test_rng_state_round_trips_through_json(
        self, synthetic_dataset, tmp_path
    ):
        session = MiningSession(synthetic_dataset, seed=42)
        session.step(kind="spread")
        path = session.save(tmp_path / "session.json")
        resumed = MiningSession.resume(synthetic_dataset, path, seed=42)
        assert (
            resumed.miner._rng.bit_generator.state
            == session.miner._rng.bit_generator.state
        )

    def test_save_resume_with_non_default_bit_generator(
        self, synthetic_dataset, tmp_path
    ):
        """MT19937 keeps its key as an ndarray; save must still be JSON."""
        session = MiningSession(
            synthetic_dataset, seed=np.random.Generator(np.random.MT19937(0))
        )
        session.step(kind="spread")
        path = session.save(tmp_path / "session.json")
        # The saved state names its bit generator, so resume restores it
        # even with the default (PCG64) seed argument.
        resumed = MiningSession.resume(synthetic_dataset, path, seed=0)
        assert type(resumed.miner._rng.bit_generator).__name__ == "MT19937"
        expected = session.step(kind="spread")
        actual = resumed.step(kind="spread")
        np.testing.assert_array_equal(
            actual.spread.direction, expected.spread.direction
        )

    def test_resume_rejects_corrupt_rng_state(self, synthetic_dataset, tmp_path):
        import json

        session = MiningSession(synthetic_dataset, seed=0)
        path = session.save(tmp_path / "session.json")
        document = json.loads(path.read_text())
        document["rng_state"] = {"bit_generator": "NotAGenerator"}
        path.write_text(json.dumps(document))
        with pytest.raises(SearchError, match="bit generator"):
            MiningSession.resume(synthetic_dataset, path)
        # A name that exists in np.random but is not a BitGenerator (and
        # would have nasty side effects if called) is rejected the same way.
        document["rng_state"] = {"bit_generator": "seed"}
        path.write_text(json.dumps(document))
        with pytest.raises(SearchError, match="bit generator"):
            MiningSession.resume(synthetic_dataset, path)

    def test_resume_restores_step_defaults(self, synthetic_dataset, tmp_path):
        """A spec-built spread session keeps mining spread after resume."""
        session = MiningSession(synthetic_dataset, seed=0, kind="spread")
        session.step()
        path = session.save(tmp_path / "session.json")
        expected = session.step()

        resumed = MiningSession.resume(synthetic_dataset, path, seed=0)
        assert resumed.default_kind == "spread"
        actual = resumed.step()  # bare step must continue as spread
        assert actual.spread is not None
        np.testing.assert_array_equal(
            actual.spread.direction, expected.spread.direction
        )
        # An explicit argument overrides the saved default.
        override = MiningSession.resume(
            synthetic_dataset, path, seed=0, kind="location"
        )
        assert override.default_kind == "location"

    def test_resume_tolerates_documents_without_rng_state(
        self, synthetic_dataset, tmp_path
    ):
        """Old save files (pre RNG persistence) still load."""
        import json

        session = MiningSession(synthetic_dataset, seed=0)
        session.step()
        path = session.save(tmp_path / "session.json")
        document = json.loads(path.read_text())
        del document["rng_state"]
        path.write_text(json.dumps(document))
        resumed = MiningSession.resume(synthetic_dataset, path, seed=0)
        assert resumed.n_iterations == 0
        resumed.step()  # still mines


class TestSessionClose:
    def test_close_releases_a_parallel_executor(self, synthetic_dataset):
        from repro.engine.executor import ProcessExecutor
        from repro.search.config import SearchConfig

        config = SearchConfig(beam_width=4, max_depth=1, top_k=5)
        executor = ProcessExecutor(2, shared_memory=True)
        with MiningSession(
            synthetic_dataset, config=config, executor=executor
        ) as session:
            session.step()
            assert executor._persistent is not None
            history = session.history
        assert executor._persistent is None  # close() shut the warm pool
        assert len(history) == 1
        assert session.history  # history stays readable after close

    def test_close_is_a_no_op_for_serial_sessions(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        session.step()
        session.close()
        session.close()
