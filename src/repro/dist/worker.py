"""``WorkerDaemon``: one compute node of the distributed mining tier.

A worker is deliberately dumb: it holds a content-addressed cache of
session contexts and executes shards against them. All policy —
sharding, ordering, retries, failover — lives in the coordinator's
:class:`~repro.dist.executor.DistExecutor`, which is what keeps the
determinism argument in one place.

HTTP surface (bodies are pickles, see :mod:`repro.dist.wire`):

=========================  ===========================================
``GET /health``            liveness + cached context digests + counters
``PUT /contexts/{digest}`` store one pickled context (verified against
                           its sha256 content address)
``POST /shards``           execute ``fn(context, item)`` over a shard's
                           items, in order; replies ``unknown-context``
                           when the digest has never been shipped here
=========================  ===========================================

Shards run on a thread pool off the asyncio loop, so health checks stay
responsive while numpy crunches. On start the daemon can announce its
URL to a coordinator (``POST {coordinator}/workers/register``, the
endpoint :class:`~repro.dist.router.MiningRouter` serves), retrying in
the background so boot order does not matter.
"""

from __future__ import annotations

import asyncio
import json
import secrets
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection
from urllib.parse import urlsplit

from repro.dist import wire as dwire
from repro.errors import EngineError
from repro.obs import clock
from repro.obs.instruments import (
    METRICS,
    WORKER_CONTEXT_MISSES,
    WORKER_ERRORS,
    WORKER_ITEMS,
    WORKER_SHARD_SECONDS,
    WORKER_SHARDS,
)
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.obs.trace import TRACER, TraceContext
from repro.server import http
from repro.server.app import ServerHandle
from repro.version import __version__

__all__ = ["WorkerDaemon"]

#: Pickled shard bodies may carry whole mask stacks; allow far more
#: than the JSON tier's 16 MiB.
MAX_SHARD_BODY = 256 * 2**20

#: Context-cache miss sentinel (``None`` is a legitimate context).
_MISS = object()


class WorkerDaemon:
    """Serve shard execution over HTTP (stdlib asyncio only).

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port.
    parallelism:
        Shards executed concurrently (thread pool size). The default 2
        keeps a node useful while one long shard runs.
    max_contexts:
        Cached contexts kept (LRU by digest). A context evicted here is
        simply re-shipped by the coordinator on its next miss.
    register_with:
        Optional coordinator/router base URL. The daemon announces
        ``{"url": ...}`` to ``POST {register_with}/workers/register``
        after binding, retrying in the background until it succeeds.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        parallelism: int = 2,
        max_contexts: int = 8,
        register_with: str | None = None,
    ) -> None:
        if parallelism < 1:
            raise EngineError(f"parallelism must be >= 1, got {parallelism}")
        if max_contexts < 1:
            raise EngineError(f"max_contexts must be >= 1, got {max_contexts}")
        self.host = host
        self.port = port
        self.parallelism = parallelism
        self.max_contexts = max_contexts
        self.register_with = register_with
        #: Per-boot marker, so a coordinator can tell a restarted worker
        #: (fresh, empty context cache) from a live one.
        self.generation = secrets.token_hex(8)
        self._contexts: OrderedDict[str, object] = OrderedDict()
        self._contexts_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=parallelism, thread_name_prefix="repro-dist-shard"
        )
        self._server: asyncio.AbstractServer | None = None
        self._started_at: float | None = None
        self._stats = {"shards": 0, "items": 0, "context_misses": 0, "errors": 0}

    # ------------------------------------------------------------------ #
    # Lifecycle (mirrors MiningServer so ServerHandle works unchanged)
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listener and kick off self-registration, if any."""
        if self._server is not None:
            raise EngineError("worker is already running")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = clock.monotonic()
        if self.register_with is not None:
            threading.Thread(
                target=self._register_loop,
                name="repro-dist-register",
                daemon=True,
            ).start()

    async def serve_forever(self) -> None:
        """Serve until cancelled; requires a prior :meth:`start`."""
        if self._server is None:
            raise EngineError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener and tear down the shard thread pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False, cancel_futures=True)

    def run(self, *, announce=None) -> None:
        """Blocking entry point (``sisd worker``): serve until Ctrl-C."""
        try:
            asyncio.run(self._run_forever(announce))
        except KeyboardInterrupt:
            pass
        finally:
            self._pool.shutdown(wait=False, cancel_futures=True)

    async def _run_forever(self, announce) -> None:
        await self.start()
        if announce is not None:
            announce(self)
        await self.serve_forever()

    def run_in_thread(self, *, ready_timeout: float = 30.0) -> ServerHandle:
        """Start on a daemon thread; returns a :class:`ServerHandle`."""
        started = threading.Event()
        handle = ServerHandle(self)

        def target() -> None:
            try:
                asyncio.run(self._serve_until_stopped(started, handle))
            except BaseException as exc:  # pragma: no cover - surfaced below
                handle.error = exc
            finally:
                started.set()

        thread = threading.Thread(
            target=target, name="repro-dist-worker", daemon=True
        )
        handle._thread = thread
        thread.start()
        started.wait(ready_timeout)
        if handle.error is not None:
            raise EngineError(f"worker failed to start: {handle.error}")
        if self._server is None:
            raise EngineError("worker failed to start within ready_timeout")
        return handle

    async def _serve_until_stopped(self, started, handle: ServerHandle) -> None:
        await self.start()
        handle._loop = asyncio.get_running_loop()
        handle._stop = asyncio.Event()
        started.set()
        await handle._stop.wait()
        await self.stop()

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def _register_loop(self, attempts: int = 60, pause: float = 0.5) -> None:
        """Announce this worker to the coordinator, best-effort."""
        split = urlsplit(self.register_with)
        body = json.dumps(
            {"url": self.url, "generation": self.generation}
        ).encode("utf-8")
        for _ in range(attempts):
            conn = HTTPConnection(
                split.hostname or "127.0.0.1", split.port or 80, timeout=5.0
            )
            try:
                conn.request(
                    "POST",
                    "/workers/register",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                if conn.getresponse().status < 400:
                    return
            except OSError:
                pass  # coordinator not up yet; retry
            finally:
                conn.close()
            time.sleep(pause)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # loop shutdown; transport closed by the finally below

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await http.read_request(
                        reader, max_body=MAX_SHARD_BODY
                    )
                except http.HttpError as exc:
                    writer.write(self._error(exc.status, str(exc), keep=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep = request.keep_alive
                try:
                    response = await self._dispatch(request)
                except http.HttpError as exc:
                    response = self._error(exc.status, str(exc), keep=keep)
                except Exception as exc:  # noqa: BLE001 - last-resort guard
                    response = self._error(500, str(exc), keep=keep)
                writer.write(response)
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # coordinator went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _error(self, status: int, message: str, *, keep: bool) -> bytes:
        body = http.json_body(
            {"schema": dwire.DIST_SCHEMA, "error": {"message": message}}
        )
        return http.render_response(status, body, keep_alive=keep)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: http.Request) -> bytes:
        parts = [part for part in request.path.split("/") if part]
        if parts == ["health"] and request.method == "GET":
            return http.render_response(200, http.json_body(self._health()))
        if parts == ["metrics"] and request.method == "GET":
            return http.render_response(
                200,
                METRICS.render().encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        if len(parts) == 2 and parts[0] == "contexts" and request.method == "PUT":
            return self._put_context(parts[1], request.body)
        if parts == ["shards"] and request.method == "POST":
            return await self._run_shard(request.body)
        raise http.HttpError(
            404,
            f"no route for {request.method} {request.path}; this is a "
            f"sisd worker daemon: /health, /metrics, /contexts/{{digest}}, "
            f"/shards",
        )

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def _health(self) -> dict:
        with self._contexts_lock:
            digests = list(self._contexts)
        return {
            "schema": dwire.DIST_SCHEMA,
            "status": "ok",
            "role": "worker",
            "version": __version__,
            "generation": self.generation,
            "parallelism": self.parallelism,
            "uptime_seconds": (
                0.0
                if self._started_at is None
                else clock.monotonic() - self._started_at
            ),
            "contexts": digests,
            "shards": dict(self._stats),
            "observability": {
                "metrics": "/metrics",
                "spans_retained": len(TRACER.finished()),
            },
        }

    def _put_context(self, digest: str, body: bytes) -> bytes:
        if dwire.digest_of(body) != digest:
            raise http.HttpError(
                400, f"context body does not hash to {digest}"
            )
        context = dwire.load(body)
        with self._contexts_lock:
            self._contexts[digest] = context
            self._contexts.move_to_end(digest)
            while len(self._contexts) > self.max_contexts:
                self._contexts.popitem(last=False)
        return http.render_response(
            200, http.json_body({"schema": dwire.DIST_SCHEMA, "stored": digest})
        )

    async def _run_shard(self, body: bytes) -> bytes:
        envelope = dwire.load(body)
        if not isinstance(envelope, dict) or envelope.get("schema") != dwire.DIST_SCHEMA:
            raise http.HttpError(400, "malformed shard envelope")
        digest = envelope.get("context")
        fn = envelope.get("fn")
        items = envelope.get("items")
        if not callable(fn) or not isinstance(items, list):
            raise http.HttpError(400, "shard envelope needs a callable and items")
        context = _MISS
        if digest is None:
            context = None
        else:
            with self._contexts_lock:
                if digest in self._contexts:
                    self._contexts.move_to_end(digest)
                    context = self._contexts[digest]
        if context is _MISS:
            # Content-addressed miss: ask the coordinator for the bytes
            # (it pushes once, then every later shard rides the cache).
            self._stats["context_misses"] += 1
            WORKER_CONTEXT_MISSES.inc()
            reply = {"schema": dwire.DIST_SCHEMA, "status": "unknown-context"}
            return http.render_response(
                200, dwire.dump(reply), content_type=dwire.PICKLE_CONTENT_TYPE
            )
        trace_ctx = TraceContext.from_wire(envelope.get("trace"))
        loop = asyncio.get_running_loop()
        reply = await loop.run_in_executor(
            self._pool, self._execute, context, fn, items, trace_ctx
        )
        return http.render_response(
            200, dwire.dump(reply), content_type=dwire.PICKLE_CONTENT_TYPE
        )

    def _execute(self, context, fn, items: list, trace_ctx=None) -> dict:
        """Run one shard in order; errors travel back as the exception."""
        started = clock.perf_counter()
        try:
            results = [fn(context, item) for item in items]
        except BaseException as exc:  # noqa: BLE001 - shipped to the caller
            self._stats["errors"] += 1
            WORKER_ERRORS.inc()
            return {"schema": dwire.DIST_SCHEMA, "status": "error", "error": exc}
        ended = clock.perf_counter()
        WORKER_SHARD_SECONDS.observe(ended - started)
        WORKER_SHARDS.inc()
        WORKER_ITEMS.inc(len(items))
        TRACER.record(
            "worker.shard", started, ended, trace_ctx, tags={"items": len(items)}
        )
        self._stats["shards"] += 1
        self._stats["items"] += len(items)
        return {"schema": dwire.DIST_SCHEMA, "status": "ok", "results": results}
