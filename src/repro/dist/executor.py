"""``DistExecutor``: the Executor protocol over worker-node daemons.

The engine's determinism contract (items sharded by the caller, ``fn``
pure in ``(context, item)``, merges in item order) is exactly what makes
cross-machine execution safe: this executor may send any shard to any
node, retry it elsewhere after a death, or run it locally — the reply
is scattered back into its canonical slot either way, so the result is
bit-identical to :class:`~repro.engine.executor.SerialExecutor` no
matter which node answered, in which order, or how many died.

Failure policy, in one place:

- transport failures (connection refused/reset, timeouts) sideline the
  worker with exponential backoff and move the shard to the next live
  node; when every node is sidelined the shard runs locally (unless
  ``local_fallback=False``), so *no job ever fails because a node
  died*;
- remote **execution** errors — ``fn`` itself raised — re-raise locally
  unchanged: a deterministic function fails identically everywhere, so
  failover would just fail N times.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection
from typing import Any, Callable, Iterable
from urllib.parse import urlsplit

from repro.dist import wire as dwire
from repro.errors import EngineError
from repro.obs import clock
from repro.obs.instruments import (
    DIST_CONTEXTS_SHIPPED,
    DIST_FAILOVERS,
    DIST_SHARD_RTT,
    DIST_SHARDS_LOCAL,
    DIST_SHARDS_REMOTE,
)
from repro.obs.trace import TRACER, TraceContext, current

__all__ = ["DistExecutor", "ShardError", "WorkerClient", "WorkerUnavailable"]


class WorkerUnavailable(EngineError):
    """A worker could not be reached (or answered garbage): failover."""


class ShardError(EngineError):
    """A worker answered, but with a malformed or refused shard reply."""


class WorkerClient:
    """Blocking HTTP client for one :class:`~repro.dist.worker.WorkerDaemon`.

    One connection per call (the daemon supports keep-alive, but a fresh
    connection makes death detection trivial and retries stateless).
    Every transport-level failure is normalized to
    :class:`WorkerUnavailable` so the executor has exactly one signal to
    failover on.
    """

    def __init__(self, url: str, *, timeout: float = 60.0) -> None:
        if "//" not in url:
            url = "http://" + url
        split = urlsplit(url)
        if split.scheme not in ("", "http"):
            raise EngineError(f"worker URLs are plain http, got {split.scheme!r}")
        self.url = url.rstrip("/")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    def _exchange(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        content_type: str = dwire.PICKLE_CONTENT_TYPE,
    ) -> tuple[int, bytes]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": content_type} if body is not None else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise WorkerUnavailable(
                f"worker {self.url} unreachable: {exc}"
            ) from exc
        finally:
            conn.close()

    def health(self) -> dict:
        """The worker's health document (raises WorkerUnavailable)."""
        import json

        status, body = self._exchange("GET", "/health")
        if status != 200:
            raise WorkerUnavailable(
                f"worker {self.url} health answered HTTP {status}"
            )
        return json.loads(body)

    def put_context(self, digest: str, payload: bytes) -> None:
        """Ship one pickled context under its content address."""
        status, body = self._exchange("PUT", f"/contexts/{digest}", payload)
        if status != 200:
            raise WorkerUnavailable(
                f"worker {self.url} refused context {digest[:12]}: "
                f"HTTP {status} {body[:200]!r}"
            )

    def run_shard(
        self, digest: str | None, fn, items: list, trace: dict | None = None
    ) -> dict:
        """Execute one shard remotely; returns the decoded reply envelope."""
        payload = dwire.dump(dwire.shard_request(digest, fn, items, trace=trace))
        status, body = self._exchange("POST", "/shards", payload)
        if status != 200:
            raise WorkerUnavailable(
                f"worker {self.url} refused shard: HTTP {status} {body[:200]!r}"
            )
        try:
            reply = dwire.load(body)
        except EngineError as exc:
            raise WorkerUnavailable(
                f"worker {self.url} answered an undecodable shard reply"
            ) from exc
        if not isinstance(reply, dict) or reply.get("status") not in (
            dwire.REPLY_STATUSES
        ):
            raise ShardError(f"worker {self.url} shard reply is malformed")
        return reply


class _WorkerState:
    """Liveness bookkeeping for one worker (exponential backoff)."""

    def __init__(self, client: WorkerClient, backoff: float, max_backoff: float):
        self.client = client
        self._backoff = backoff
        self._max_backoff = max_backoff
        self.failures = 0
        self.dead_until = 0.0
        #: Context digests this worker confirmed holding (cleared on
        #: failure: a restarted daemon has an empty cache).
        self.shipped: set[str] = set()
        #: Serializes context shipment: concurrent shards that all miss
        #: must not each re-upload the (potentially large) payload.
        self.ship_lock = threading.Lock()

    @property
    def url(self) -> str:
        return self.client.url

    def alive(self, now: float) -> bool:
        return now >= self.dead_until

    def mark_dead(self, now: float) -> None:
        self.failures += 1
        pause = min(
            self._backoff * (2 ** (self.failures - 1)), self._max_backoff
        )
        self.dead_until = now + pause
        self.shipped.clear()

    def mark_alive(self) -> None:
        self.failures = 0
        self.dead_until = 0.0


def _call_context_free(context, item):
    """Adapter for :meth:`DistExecutor.map`: the fn rides as the context."""
    return context(item)


class _DistSession:
    """One fan-out scope: the context pickled once, shipped by digest."""

    #: Payloads take the copying path in the beam (no shm across machines).
    uses_shared_arrays = False

    def __init__(self, owner: "DistExecutor", context: Any) -> None:
        self._owner = owner
        self._context = context
        self._payload = dwire.dump(context)
        self._digest = dwire.digest_of(self._payload)
        self._closed = False

    def map(self, fn: Callable[[Any, Any], Any], items: Iterable[Any]) -> list:
        if self._closed:
            raise EngineError("executor session is closed")
        return self._owner._map_shards(self, fn, list(items))

    def close(self) -> None:
        """Nothing remote to release: contexts stay cached by digest."""
        self._closed = True

    def __enter__(self) -> "_DistSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class DistExecutor:
    """Fan mining shards out to :class:`~repro.dist.worker.WorkerDaemon` nodes.

    Parameters
    ----------
    workers:
        Worker base URLs (``http://host:port``). May be empty only with
        ``registry`` set.
    registry:
        Optional coordinator/router base URL whose ``GET /workers``
        listing (see :class:`~repro.dist.router.MiningRouter`) is merged
        into the static list at construction and whenever every static
        worker is sidelined.
    timeout:
        Socket timeout per shard round trip, seconds.
    local_fallback:
        Run a shard in-process when no worker can take it (default).
        ``False`` raises :class:`WorkerUnavailable` instead — useful in
        tests that must prove the remote path ran.
    backoff / max_backoff:
        Exponential sideline window after a worker failure: the first
        failure pauses ``backoff`` seconds, doubling up to
        ``max_backoff``.
    shards_per_worker:
        Shard granularity: items are grouped into at most
        ``workers × shards_per_worker`` contiguous chunks (keyed only by
        the item count, never by liveness, so the grouping is stable).
    """

    def __init__(
        self,
        workers: Iterable[str] = (),
        *,
        registry: str | None = None,
        timeout: float = 60.0,
        local_fallback: bool = True,
        backoff: float = 0.25,
        max_backoff: float = 30.0,
        shards_per_worker: int = 4,
    ) -> None:
        urls = list(dict.fromkeys(workers))
        if registry is not None:
            for url in self._discover(registry, timeout):
                if url not in urls:
                    urls.append(url)
        if not urls:
            raise EngineError(
                "DistExecutor needs at least one worker URL (or a registry "
                "that lists some)"
            )
        if shards_per_worker < 1:
            raise EngineError(
                f"shards_per_worker must be >= 1, got {shards_per_worker}"
            )
        self.timeout = timeout
        self.local_fallback = local_fallback
        self.parallelism = len(urls)
        self._states = [
            _WorkerState(WorkerClient(url, timeout=timeout), backoff, max_backoff)
            for url in urls
        ]
        self._lock = threading.Lock()
        self._shards_per_worker = shards_per_worker
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, 2 * len(urls)),
            thread_name_prefix="repro-dist-map",
        )
        #: Observability counters (asserted in tests, shown in benches).
        self.stats = {
            "shards_remote": 0,
            "shards_local": 0,
            "failovers": 0,
            "contexts_shipped": 0,
        }

    @staticmethod
    def _discover(registry: str, timeout: float) -> list[str]:
        """Worker URLs a router/coordinator currently knows about."""
        import json

        split = urlsplit(registry if "//" in registry else "http://" + registry)
        conn = HTTPConnection(
            split.hostname or "127.0.0.1", split.port or 80, timeout=timeout
        )
        try:
            conn.request("GET", "/workers")
            response = conn.getresponse()
            if response.status != 200:
                return []
            document = json.loads(response.read())
            return [str(url) for url in document.get("workers", [])]
        except (OSError, ValueError):
            return []
        finally:
            conn.close()

    # ------------------------------------------------------------------ #
    # Executor protocol
    # ------------------------------------------------------------------ #
    def session(self, context: Any = None) -> _DistSession:
        """Open a fan-out scope; the context ships once per worker."""
        return _DistSession(self, context)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Context-free ordered map: the function itself is the context."""
        with self.session(fn) as session:
            return session.map(_call_context_free, items)

    def close(self) -> None:
        """Release the dispatch pool; idempotent."""
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "DistExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistExecutor({[state.url for state in self._states]!r}, "
            f"local_fallback={self.local_fallback})"
        )

    # ------------------------------------------------------------------ #
    # Sharding and dispatch
    # ------------------------------------------------------------------ #
    def _chunks(self, n_items: int) -> list[tuple[int, int]]:
        """Contiguous ``(start, stop)`` shard bounds for ``n_items``.

        Keyed only by the item count and the *configured* node count —
        never by which nodes are alive — so the shard layout (and hence
        every payload) is identical run to run. Determinism does not
        require that (merges are positional), but stable shards make
        failures reproducible and content-addressing effective.
        """
        if n_items == 0:
            return []
        n_shards = min(n_items, self.parallelism * self._shards_per_worker)
        base, extra = divmod(n_items, n_shards)
        bounds = []
        start = 0
        for index in range(n_shards):
            stop = start + base + (1 if index < extra else 0)
            bounds.append((start, stop))
            start = stop
        return bounds

    def _map_shards(self, session: _DistSession, fn, items: list) -> list:
        bounds = self._chunks(len(items))
        if not bounds:
            return []
        # The ambient trace context is thread-local; capture it here (the
        # caller's thread) so shards dispatched on pool threads still
        # parent under the submitting job's trace.
        ctx = current()
        results: list = [None] * len(items)
        if len(bounds) == 1:
            outputs = [self._run_shard(session, 0, fn, items, ctx)]
            spans = [bounds[0]]
        else:
            futures = [
                self._pool.submit(
                    self._run_shard, session, index, fn, items[start:stop], ctx
                )
                for index, (start, stop) in enumerate(bounds)
            ]
            # Canonical merge: replies land by *shard index*, so arrival
            # order (and which node answered) cannot reorder anything.
            outputs = [future.result() for future in futures]
            spans = bounds
        for (start, stop), shard_results in zip(spans, outputs):
            results[start:stop] = shard_results
        return results

    def _run_shard(
        self,
        session: _DistSession,
        shard_index: int,
        fn,
        items: list,
        ctx: TraceContext | None = None,
    ) -> list:
        """Execute one shard: remote with failover, locally as last resort."""
        n = len(self._states)
        last_unavailable: WorkerUnavailable | None = None
        tried_any = False
        for offset in range(n):
            state = self._states[(shard_index + offset) % n]
            now = clock.monotonic()
            with self._lock:
                if not state.alive(now):
                    continue
            tried_any = True
            try:
                shard_results = self._run_on_worker(session, state, fn, items, ctx)
            except WorkerUnavailable as exc:
                last_unavailable = exc
                DIST_FAILOVERS.inc()
                with self._lock:
                    state.mark_dead(clock.monotonic())
                    self.stats["failovers"] += 1
                continue
            DIST_SHARDS_REMOTE.inc()
            with self._lock:
                state.mark_alive()
                self.stats["shards_remote"] += 1
            return shard_results
        if not self.local_fallback:
            detail = (
                f": {last_unavailable}" if last_unavailable is not None
                else " (all sidelined by backoff)" if not tried_any else ""
            )
            raise WorkerUnavailable(
                f"no live worker could run shard {shard_index}{detail}"
            )
        DIST_SHARDS_LOCAL.inc()
        with self._lock:
            self.stats["shards_local"] += 1
        t_local = clock.perf_counter()
        local_results = [fn(session._context, item) for item in items]
        TRACER.record("shard", t_local, clock.perf_counter(), ctx,
                      tags={"path": "local", "items": len(items)})
        return local_results

    def _run_on_worker(
        self,
        session: _DistSession,
        state: _WorkerState,
        fn,
        items: list,
        ctx: TraceContext | None = None,
    ) -> list:
        """One remote attempt, shipping the context on a cache miss."""
        client = state.client
        # The shard span is opened *before* the request so its context
        # can ride the envelope — the worker parents its own span under
        # this one, stitching both processes into one trace.
        span = TRACER.start("shard", parent=ctx) if ctx is not None else None
        wire_trace = span.context.to_wire() if span is not None else None
        try:
            reply = self._timed_shard(client, session._digest, fn, items, wire_trace)
            if reply["status"] == "unknown-context":
                with state.ship_lock:
                    with self._lock:
                        need_ship = session._digest not in state.shipped
                    if need_ship:
                        client.put_context(session._digest, session._payload)
                        DIST_CONTEXTS_SHIPPED.inc()
                        with self._lock:
                            state.shipped.add(session._digest)
                            self.stats["contexts_shipped"] += 1
                reply = self._timed_shard(
                    client, session._digest, fn, items, wire_trace
                )
        finally:
            if span is not None:
                span.tag("worker", client.url).tag("items", len(items))
                TRACER.finish(span)
        if reply["status"] == "unknown-context":
            raise WorkerUnavailable(
                f"worker {client.url} still misses context "
                f"{session._digest[:12]} after shipping it"
            )
        if reply["status"] == "error":
            # fn itself raised remotely: deterministic, so re-raise as-is
            # instead of failing over N times.
            error = reply.get("error")
            if isinstance(error, BaseException):
                raise error
            raise ShardError(f"worker {client.url} reported: {error!r}")
        results = reply.get("results")
        if not isinstance(results, list) or len(results) != len(items):
            raise ShardError(
                f"worker {client.url} returned {type(results).__name__} "
                f"for a {len(items)}-item shard"
            )
        return results

    @staticmethod
    def _timed_shard(
        client: WorkerClient, digest: str | None, fn, items: list, trace
    ) -> dict:
        """One shard round trip, observed into the per-worker RTT histogram."""
        started = clock.perf_counter()
        reply = client.run_shard(digest, fn, items, trace=trace)
        DIST_SHARD_RTT.labels(client.url).observe(clock.perf_counter() - started)
        return reply
