"""PKL001: callables crossing a process boundary must be module-level."""

from __future__ import annotations

from lintfns import rule_ids


class TestPickleBoundary:
    def test_lambda_to_process_pool_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/fanout.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def run():
                pool = ProcessPoolExecutor(2)
                return pool.submit(lambda: 1)
            """,
        )
        assert rule_ids(report) == ["PKL001"]
        assert "lambda" in report.findings[0].message

    def test_local_function_to_pool_map_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/fanout.py",
            """
            from multiprocessing import Pool

            def run(items):
                def work(item):
                    return item * 2
                pool = Pool(2)
                return pool.map(work, items)
            """,
        )
        assert rule_ids(report) == ["PKL001"]
        assert "work" in report.findings[0].message

    def test_partial_over_local_function_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/fanout.py",
            """
            from concurrent.futures import ProcessPoolExecutor
            from functools import partial

            def run():
                def work(a, b):
                    return a + b
                pool = ProcessPoolExecutor(2)
                return pool.submit(partial(work, 1))
            """,
        )
        assert rule_ids(report) == ["PKL001"]

    def test_multiprocessing_process_target_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/fanout.py",
            """
            import multiprocessing

            def run():
                proc = multiprocessing.Process(target=lambda: 1)
                proc.start()
            """,
        )
        assert rule_ids(report) == ["PKL001"]

    def test_module_level_function_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/fanout.py",
            """
            from concurrent.futures import ProcessPoolExecutor
            from functools import partial

            def work(item):
                return item * 2

            def run(items):
                pool = ProcessPoolExecutor(2)
                pool.submit(work, items[0])
                pool.submit(partial(work, 1))
                return pool.map(work, items)
            """,
        )
        assert report.clean

    def test_thread_pool_lambda_is_quiet(self, lint_snippet):
        # Threads share the heap; nothing pickles.
        report = lint_snippet(
            "repro/dist/fanout.py",
            """
            from concurrent.futures import ThreadPoolExecutor

            def run():
                pool = ThreadPoolExecutor(2)
                return pool.submit(lambda: 1)
            """,
        )
        assert report.clean
