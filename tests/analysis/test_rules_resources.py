"""RES001/RES002: handles release on all paths; renames fsync first."""

from __future__ import annotations

from lintfns import rule_ids


class TestUnclosedHandle:
    def test_bare_connect_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/store/db.py",
            """
            import sqlite3

            def query():
                conn = sqlite3.connect("state.db")
                return conn.execute("select 1").fetchone()
            """,
        )
        assert rule_ids(report) == ["RES001"]
        assert "close()" in report.findings[0].message

    def test_shared_memory_wants_close_and_unlink(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/shm.py",
            """
            from multiprocessing import shared_memory

            def alloc():
                seg = shared_memory.SharedMemory(create=True, size=64)
                seg.buf[0] = 1
            """,
        )
        assert rule_ids(report) == ["RES001"]
        assert "unlink()" in report.findings[0].message

    def test_with_block_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/store/db.py",
            """
            def read(path):
                with open(path) as fh:
                    return fh.read()
            """,
        )
        assert report.clean

    def test_try_finally_close_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/store/db.py",
            """
            import sqlite3

            def query():
                conn = sqlite3.connect("state.db")
                try:
                    return conn.execute("select 1").fetchone()
                finally:
                    conn.close()
            """,
        )
        assert report.clean

    def test_returned_handle_is_quiet(self, lint_snippet):
        # Ownership moves to the caller; closing here would be wrong.
        report = lint_snippet(
            "repro/store/db.py",
            """
            def acquire(path):
                fh = open(path)
                return fh
            """,
        )
        assert report.clean

    def test_handle_stored_in_registry_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/store/db.py",
            """
            import sqlite3

            def register(pool):
                conn = sqlite3.connect("state.db")
                pool["main"] = conn
            """,
        )
        assert report.clean


class TestRenameWithoutFsync:
    def test_write_then_rename_without_fsync_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/store/records.py",
            """
            import json
            import os

            def publish(tmp, path, doc):
                with open(tmp, "w") as fh:
                    json.dump(doc, fh)
                os.replace(tmp, path)
            """,
        )
        assert rule_ids(report) == ["RES002"]
        assert "fsync" in report.findings[0].message

    def test_fsync_before_rename_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/store/records.py",
            """
            import json
            import os

            def publish(tmp, path, doc):
                with open(tmp, "w") as fh:
                    json.dump(doc, fh)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            """,
        )
        assert report.clean

    def test_rename_without_a_write_is_quiet(self, lint_snippet):
        # Pure moves (rotation, cleanup) publish nothing new.
        report = lint_snippet(
            "repro/store/records.py",
            """
            import os

            def rotate(old, new):
                os.replace(old, new)
            """,
        )
        assert report.clean

    def test_rule_is_scoped_to_the_store_package(self, lint_snippet):
        # Same pattern elsewhere is not durability-critical.
        report = lint_snippet(
            "repro/report/html.py",
            """
            import os

            def publish(tmp, path, doc):
                with open(tmp, "w") as fh:
                    fh.write(doc)
                os.replace(tmp, path)
            """,
        )
        assert report.clean
