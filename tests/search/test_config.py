"""Tests for SearchConfig validation."""

import pytest

from repro.errors import SearchError
from repro.search.config import SearchConfig


class TestDefaults:
    def test_paper_settings(self):
        config = SearchConfig()
        assert config.beam_width == 40
        assert config.max_depth == 4
        assert config.top_k == 150
        assert config.n_split_points == 4
        assert config.split_strategy == "percentile"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beam_width": 0},
            {"max_depth": 0},
            {"top_k": 0},
            {"min_coverage": 1},
            {"max_coverage_fraction": 0.0},
            {"max_coverage_fraction": 1.5},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(SearchError):
            SearchConfig(**kwargs)

    def test_frozen(self):
        config = SearchConfig()
        with pytest.raises(AttributeError):
            config.beam_width = 10
