"""Linear-algebra helpers used by the Gaussian background model.

The model maintains per-block covariance matrices that are repeatedly
updated by rank-one Sherman–Morrison corrections (Theorem 2 of the paper);
floating-point drift can leave them slightly asymmetric or with tiny
negative eigenvalues, so we centralize symmetrization and PD repair here.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla


def symmetrize(a: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(A + A') / 2``."""
    return (a + a.T) / 2.0


def is_positive_definite(a: np.ndarray, *, tol: float = 0.0) -> bool:
    """Cheap PD check via Cholesky (with optional diagonal slack ``tol``)."""
    try:
        np.linalg.cholesky(a + tol * np.eye(a.shape[0]))
        return True
    except np.linalg.LinAlgError:
        return False


def nearest_positive_definite(a: np.ndarray, *, jitter: float = 1e-12) -> np.ndarray:
    """Project a symmetric matrix onto the PD cone.

    Clips negative eigenvalues at ``jitter`` times the largest eigenvalue.
    Used only as a numerical safety net after long chains of rank-one
    updates; in a healthy run the input is already PD and is returned with
    only symmetrization applied.
    """
    sym = symmetrize(np.asarray(a, dtype=float))
    if is_positive_definite(sym):
        return sym
    eigvals, eigvecs = np.linalg.eigh(sym)
    floor = max(jitter, jitter * float(eigvals.max(initial=1.0)))
    clipped = np.clip(eigvals, floor, None)
    return symmetrize((eigvecs * clipped) @ eigvecs.T)


def solve_psd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    Tries Cholesky first (fast, and a free PD sanity check); falls back to
    a least-squares solve if the matrix is numerically singular, which can
    happen when a subgroup's pooled covariance is rank-deficient.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    try:
        factor = sla.cho_factor(a, lower=True, check_finite=False)
        return sla.cho_solve(factor, b, check_finite=False)
    except (np.linalg.LinAlgError, sla.LinAlgError, ValueError):
        return np.linalg.lstsq(a, b, rcond=None)[0]


def log_det_psd(a: np.ndarray) -> float:
    """Log-determinant of a symmetric PD matrix via Cholesky.

    Falls back to eigenvalues (clipped at a tiny floor) for numerically
    semi-definite input so IC computations degrade gracefully instead of
    returning NaN.
    """
    a = np.asarray(a, dtype=float)
    try:
        chol = np.linalg.cholesky(a)
        return 2.0 * float(np.sum(np.log(np.diag(chol))))
    except np.linalg.LinAlgError:
        eigvals = np.linalg.eigvalsh(symmetrize(a))
        eigvals = np.clip(eigvals, 1e-300, None)
        return float(np.sum(np.log(eigvals)))
