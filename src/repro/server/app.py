"""``MiningServer``: the mining engine behind an asyncio HTTP front door.

The paper's loop is a dialogue — mine, show, assimilate, repeat — and a
dialogue needs a wire. This module serves a
:class:`~repro.engine.service.MiningService` over HTTP (stdlib asyncio
only):

====================  =================================================
``POST /jobs``        submit a ``{"spec": ...}`` or ``{"job": ...}``
                      document (priority/deadline honored)
``GET /jobs``         list every submission and its status
``GET /jobs/{id}``    one submission's status snapshot
``GET /jobs/{id}/result``  the result (``?wait=S`` long-polls)
``POST /jobs/{id}/cancel`` deterministic cancel-while-queued
``GET /events``       Server-Sent-Events stream of every mining event
``GET /health``       liveness + scheduler/cache/stream statistics
====================  =================================================

Every submission is wired with a per-job
:class:`~repro.events.MiningObserver` whose callbacks — fired from
engine worker threads — are bridged onto per-subscriber asyncio queues
by the :class:`~repro.server.hub.EventHub`, so patterns, SI scores, and
scheduler decisions stream live with sequence numbers; a dropped client
resumes via SSE ``Last-Event-ID``. The JSON forms come from
:mod:`repro.server.wire`, shared with
:class:`repro.client.RemoteWorkspace` so remote results decode
bit-identical to local ones.
"""

from __future__ import annotations

import asyncio
import secrets
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro.engine.service import JobStatus, MiningService
from repro.errors import EngineError, ReproError
from repro.events import MiningObserver
from repro.obs import clock
from repro.obs.instruments import HTTP_REQUESTS, JOBS_REJECTED, METRICS
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.obs.trace import TRACER
from repro.persist import job_from_dict
from repro.server import http, wire
from repro.server.hub import EventHub
from repro.spec import MiningSpec
from repro.store.tenancy import Tenant, TenantRegistry
from repro.version import __version__

__all__ = ["MiningServer", "ServerHandle"]

#: Hard ceiling on one ``?wait=`` long-poll (clients loop to wait longer).
MAX_RESULT_WAIT = 30.0


def _error_document(error: BaseException) -> dict:
    """The one error envelope every non-2xx response carries."""
    return {"schema": wire.WIRE_SCHEMA, "error": wire.error_to_wire(error)}


def _wait_quietly(
    service: MiningService,
    job_id: str,
    timeout: float,
    stop: threading.Event,
):
    """Block until the job settles (or the wait elapses); never raises.

    Runs on an executor thread. Exceptions must be contained *here*: a
    ``concurrent.futures.CancelledError`` from a job cancelled mid-wait
    would otherwise be rewrapped by asyncio into a BaseException-derived
    ``asyncio.CancelledError`` at the ``await``, sail past every
    ``except Exception`` guard, and kill the HTTP connection with no
    response. The caller re-reads the job status and renders the
    terminal state instead.

    The wait is split into short legs so a server shutdown (``stop``)
    releases parked threads within ~a second even while their job is
    still running — an uninterruptible 30 s ``service.result`` would
    otherwise keep the process alive after Ctrl-C until the pool's
    atexit join drained it.
    """
    give_up_at = clock.monotonic() + timeout
    while not stop.is_set():
        leg = min(1.0, give_up_at - clock.monotonic())
        if leg <= 0:
            return None
        try:
            return service.result(job_id, leg)
        except FuturesTimeoutError:
            continue  # leg elapsed; job still pending/running
        except BaseException:  # noqa: BLE001 - see docstring
            return None
    return None


def _job_error(service: MiningService, job_id: str) -> BaseException | None:
    """The stored exception of a failed/expired job (executor thread)."""
    try:
        service.result(job_id, 10.0)
    except BaseException as exc:  # noqa: BLE001 - captured, not raised
        return exc
    return None


class _JobStreamObserver(MiningObserver):
    """Per-job observer publishing tagged wire events onto the hub.

    The service assigns the job id *during* submit while events may
    already be firing from worker threads, so events are buffered until
    :meth:`bind` supplies the id, then flushed in order. All callbacks
    are thread-safe and non-blocking (hub publishing never waits on
    subscribers), as the engine's observer contract requires.
    """

    def __init__(self, hub: EventHub, *, candidates: bool = True) -> None:
        self._hub = hub
        self._candidates = candidates
        self._lock = threading.Lock()
        self._pending: list | None = []
        self._job_id: str | None = None

    def bind(self, job_id: str) -> None:
        """Set the job id and flush everything buffered before it.

        The flush publishes *under the observer lock*: a worker-thread
        event arriving concurrently must queue behind it, or it would
        overtake older buffered events and break this job's sequence
        order. Publishing is non-blocking (the hub never waits on
        subscribers), so holding the lock across it is cheap.
        """
        with self._lock:
            pending, self._pending = self._pending, None
            self._job_id = job_id
            for build in pending or ():
                self._hub.publish(build(job_id))

    def _emit(self, build) -> None:
        with self._lock:
            if self._pending is not None:
                self._pending.append(build)
                return
            self._hub.publish(build(self._job_id))

    def on_candidate(self, candidate) -> None:
        if self._candidates:
            self._emit(lambda job_id: wire.candidate_event(job_id, candidate))

    def on_iteration(self, iteration) -> None:
        self._emit(lambda job_id: wire.iteration_event(job_id, iteration))

    def on_job(self, result) -> None:
        self._emit(lambda job_id: wire.job_event(job_id, result))

    def on_job_failed(self, job, error) -> None:
        self._emit(lambda job_id: wire.job_failed_event(job_id, job, error))

    def on_schedule(self, event) -> None:
        # Scheduler events are self-tagged with their job id already.
        self._emit(lambda job_id: wire.schedule_event(event))


class ServerHandle:
    """Control of a server running on a background thread (tests, demos)."""

    def __init__(self, server: "MiningServer") -> None:
        self._server = server
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self.error: BaseException | None = None

    @property
    def url(self) -> str:
        return self._server.url

    def stop(self, timeout: float = 30.0) -> None:
        """Signal the server loop to shut down and join its thread."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class MiningServer:
    """Serve a :class:`~repro.engine.service.MiningService` over HTTP.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port (read the
        chosen one from :attr:`port` after :meth:`start`).
    service:
        An existing service to expose. When omitted one is created from
        ``backend``/``max_workers`` and shut down with the server. Only
        jobs submitted *through this server* stream events — a shared
        service's direct submissions have no per-job observer.
    backend / max_workers:
        Configuration of the lazily created service. The default
        ``"thread"`` backend streams candidate/iteration events live
        from worker threads; ``"process"`` replays them at completion
        (the engine cannot ship callbacks across processes).
    observer:
        Optional service-wide observer (e.g. a
        :class:`~repro.report.live.LiveReporter` for server-side logs);
        attached to the service and detached on :meth:`stop`.
    candidate_events:
        Also stream per-candidate events (hundreds per beam level);
        pattern/scheduler events are unaffected.
    history / queue_maxsize:
        Replay-buffer and per-subscriber queue bounds of the
        :class:`~repro.server.hub.EventHub`.
    heartbeat_seconds:
        Idle interval after which SSE connections get a comment frame
        (keeps proxies from reaping quiet streams).
    request_timeout:
        Seconds a connection may sit idle between requests (or mid-
        request) before the server closes it — the bound that keeps
        silent or half-open clients from pinning sockets forever. Does
        not apply to an established SSE stream.
    store:
        Durable job store for the owned service: a directory path or a
        :class:`repro.store.JobStore`. Terminal jobs survive restarts
        bit-identically and queued jobs are re-enqueued in order; the
        server's stream :attr:`generation` is persisted there too, so
        clients can tell a restart from a reconnect. Incompatible with
        an external ``service`` (pass the store to that service
        instead).
    auth:
        Bearer-token tenancy: a token-file path (see
        :meth:`repro.store.TenantRegistry.from_file`) or a
        :class:`~repro.store.TenantRegistry`. When set, every route but
        ``GET /health`` requires ``Authorization: Bearer <token>``
        (else 401); submissions are rate-limited per tenant (429 with
        ``Retry-After``) and scheduled under the tenant's fair share.
    record_ttl_seconds / max_terminal_records:
        Terminal-record expiry of the owned durable service (see
        :class:`~repro.engine.service.MiningService`).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
        service: MiningService | None = None,
        backend: str = "thread",
        max_workers: int = 2,
        observer: MiningObserver | None = None,
        candidate_events: bool = True,
        history: int = 4096,
        queue_maxsize: int = 512,
        heartbeat_seconds: float = 15.0,
        request_timeout: float = 120.0,
        store=None,
        auth=None,
        record_ttl_seconds: float | None = None,
        max_terminal_records: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self._owns_service = service is None
        if service is None:
            service = MiningService(
                max_workers=max_workers,
                backend=backend,
                observer=observer,
                store=store,
                record_ttl_seconds=record_ttl_seconds,
                max_terminal_records=max_terminal_records,
            )
            self._observer = None  # owned service: observer lives inside it
        else:
            if store is not None:
                raise EngineError(
                    "store= requires a server-owned service; construct your "
                    "MiningService with the store and pass that instead"
                )
            service.add_observer(observer)
            self._observer = observer
        self.service = service
        if auth is None or isinstance(auth, TenantRegistry):
            self.tenants = auth
        else:
            self.tenants = TenantRegistry.from_file(auth)
        # The stream generation: every SSE frame and submit response is
        # stamped with it, and /health exposes it. A stored server draws
        # a fresh monotone integer per boot (so clients *know* frame
        # seqs restarted); a storeless one uses a random nonce.
        if self.service.store is not None:
            self.generation = str(self.service.store.next_generation())
        else:
            self.generation = secrets.token_hex(8)
        self.hub = EventHub(history=history, queue_maxsize=queue_maxsize)
        self.candidate_events = candidate_events
        self.heartbeat_seconds = heartbeat_seconds
        self.request_timeout = request_timeout
        self._server: asyncio.AbstractServer | None = None
        self._started_at: float | None = None
        self._submitted = 0
        # Long-polling ``?wait=`` legs park a thread each for up to 30 s;
        # give them their own pool so they can never starve the loop's
        # default executor (which submits and fetches run there too).
        self._wait_executor = ThreadPoolExecutor(
            max_workers=64, thread_name_prefix="repro-result-wait"
        )
        # Set on shutdown: releases long-poll legs parked in the wait
        # executor within ~a second (see _wait_quietly).
        self._stopping = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listening socket and begin accepting connections."""
        if self._server is not None:
            raise EngineError("server is already running")
        if self._stopping.is_set():
            # stop() tears down one-shot state (hub, wait executor);
            # refuse a half-broken relaunch instead of limping.
            raise EngineError(
                "this server was stopped; construct a new MiningServer"
            )
        self.hub.bind(asyncio.get_running_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = clock.monotonic()

    async def serve_forever(self) -> None:
        """Serve until cancelled (call :meth:`start` first)."""
        if self._server is None:
            raise EngineError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the socket, end SSE streams, and wind the service down."""
        self._stopping.set()
        if self._server is None:
            self.hub.close()
        else:
            self._server.close()
            # Close the hub *before* awaiting wait_closed(): since
            # Python 3.12.1 wait_closed() also waits for the open
            # connection handlers, and the SSE handlers only finish once
            # the hub's shutdown sentinel wakes them.
            self.hub.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        if self._owns_service:
            await loop.run_in_executor(None, self.service.shutdown)
        else:
            self.service.remove_observer(self._observer)
        self._wait_executor.shutdown(wait=False)

    def run(self, *, announce=None) -> None:
        """Blocking entry point (the CLI's): serve until interrupted."""
        try:
            asyncio.run(self._run_forever(announce))
        except KeyboardInterrupt:
            pass
        finally:
            # The loop is gone (asyncio.run unwound on the interrupt),
            # so this is synchronous best-effort cleanup: flag the hub
            # closed, release parked long-poll threads (they re-check
            # _stopping every wait leg, ~1 s), cancel queued work, and
            # shut the wait executor — otherwise its non-daemon threads
            # keep the process alive after "stopped" is printed.
            self._stopping.set()
            self.hub.close()
            if self._owns_service:
                self.service.shutdown(wait=False)
            else:
                self.service.remove_observer(self._observer)
            self._wait_executor.shutdown(wait=False)

    async def _run_forever(self, announce) -> None:
        await self.start()
        if announce is not None:
            announce(self)
        await self.serve_forever()

    def run_in_thread(self, *, ready_timeout: float = 30.0) -> ServerHandle:
        """Start on a daemon thread; returns a :class:`ServerHandle`.

        The convenience behind the test-suite, example, and benchmark
        servers: bind (resolving ``port=0``), then return once requests
        can be served.
        """
        started = threading.Event()
        handle = ServerHandle(self)

        def target() -> None:
            try:
                asyncio.run(self._serve_until_stopped(started, handle))
            except BaseException as exc:  # pragma: no cover - surfaced below
                handle.error = exc
            finally:
                started.set()

        thread = threading.Thread(
            target=target, name="repro-server", daemon=True
        )
        handle._thread = thread
        thread.start()
        started.wait(ready_timeout)
        if handle.error is not None:
            raise EngineError(f"server failed to start: {handle.error}")
        if self._server is None:
            raise EngineError("server failed to start within ready_timeout")
        return handle

    async def _serve_until_stopped(self, started, handle: ServerHandle) -> None:
        await self.start()
        handle._loop = asyncio.get_running_loop()
        handle._stop = asyncio.Event()
        started.set()
        await handle._stop.wait()
        await self.stop()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Loop shutdown cancels parked connection handlers. Ending
            # normally instead of re-raising keeps 3.11's streams
            # callback from logging every open connection as an
            # unhandled cancelled task (gh-110894); the transport is
            # already closed by the finally below either way.
            pass

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    # Idle bound: a client that connects and sends
                    # nothing (or half a request, or parks on
                    # keep-alive) releases its socket and task after
                    # request_timeout instead of pinning them forever.
                    request = await asyncio.wait_for(
                        http.read_request(reader), self.request_timeout
                    )
                except asyncio.TimeoutError:
                    break
                except http.HttpError as exc:
                    writer.write(self._error_response(exc.status, str(exc), False))
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    tenant = self._authenticate(request)
                except http.HttpError as exc:
                    keep = request.keep_alive
                    writer.write(
                        self._error_response(
                            exc.status, str(exc), keep, headers=exc.headers
                        )
                    )
                    await writer.drain()
                    if keep:
                        continue
                    break
                if request.method == "GET" and request.path == "/metrics":
                    # Prometheus text, not JSON: answered here rather than
                    # through _dispatch's document pipeline.
                    HTTP_REQUESTS.labels("/metrics").inc()
                    keep = request.keep_alive
                    writer.write(
                        http.render_response(
                            200,
                            METRICS.render().encode("utf-8"),
                            content_type=PROMETHEUS_CONTENT_TYPE,
                            keep_alive=keep,
                        )
                    )
                    await writer.drain()
                    if keep:
                        continue
                    break
                if request.method == "GET" and request.path == "/events":
                    HTTP_REQUESTS.labels("/events").inc()
                    await self._handle_events(request, writer)
                    break  # SSE ends by closing the connection
                extra: tuple = ()
                try:
                    status, document = await self._dispatch(request, tenant)
                except http.HttpError as exc:
                    status, document = exc.status, _error_document(exc)
                    extra = exc.headers
                except ReproError as exc:
                    status, document = 400, _error_document(exc)
                except Exception as exc:  # noqa: BLE001 - last-resort guard
                    status, document = 500, _error_document(exc)
                keep = request.keep_alive and status < 500
                if "result" in document or "jobs" in document:
                    # Result/listing documents can run to megabytes of
                    # pattern arrays; encode off the loop so one big
                    # response cannot stall every other connection's
                    # events and heartbeats.
                    body = await asyncio.get_running_loop().run_in_executor(
                        None, http.json_body, document
                    )
                else:
                    body = http.json_body(document)
                if (
                    status == 200
                    and request.method == "GET"
                    and "result" in document
                ):
                    # GET /jobs/{id}/result: the one heavyweight, byte-
                    # stable response — worth a validator and a wire
                    # coding. The ETag hashes the *identity* body, so it
                    # survives restarts and is independent of whether
                    # this response ends up gzipped.
                    etag = http.etag_for(body)
                    extra += (("ETag", etag), ("Vary", "Accept-Encoding"))
                    if http.etag_matches(
                        request.headers.get("if-none-match"), etag
                    ):
                        status, body = 304, b""
                    elif (
                        http.wants_gzip(request.headers)
                        and len(body) >= http.GZIP_MIN_BYTES
                    ):
                        body = await asyncio.get_running_loop().run_in_executor(
                            None, http.gzip_body, body
                        )
                        extra += (("Content-Encoding", "gzip"),)
                writer.write(
                    http.render_response(
                        status, body, keep_alive=keep, extra_headers=extra
                    )
                )
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _error_response(
        self, status: int, message: str, keep: bool, *, headers: tuple = ()
    ) -> bytes:
        document = _error_document(http.HttpError(status, message))
        return http.render_response(
            status, http.json_body(document), keep_alive=keep,
            extra_headers=headers,
        )

    def _authenticate(self, request: http.Request) -> Tenant | None:
        """Resolve the request's tenant; raises 401 when auth is on.

        ``GET /health`` stays open — liveness probes don't carry
        credentials — but every job-facing route (and the event stream)
        requires a registered bearer token once ``auth=`` is set.
        """
        if self.tenants is None:
            return None
        if request.method == "GET" and request.path in ("/health", "/metrics"):
            # Liveness probes and metrics scrapers carry no credentials.
            return None
        token = http.bearer_token(request.headers)
        tenant = (
            None if token is None else self.tenants.authenticate(token)
        )
        if tenant is None:
            raise http.HttpError(
                401,
                "this server requires an Authorization: Bearer token "
                "registered with its tenant registry",
                headers=(("WWW-Authenticate", 'Bearer realm="sisd"'),),
            )
        return tenant

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _route_label(parts: list[str]) -> str:
        """The bounded route label of a request path (ids collapsed)."""
        if not parts:
            return "/"
        if parts[0] == "jobs":
            if len(parts) == 1:
                return "/jobs"
            if len(parts) == 3 and parts[2] in ("result", "cancel"):
                return f"/jobs/{{id}}/{parts[2]}"
            return "/jobs/{id}"
        if parts[0] in ("health", "admin"):
            return "/" + "/".join(parts)
        return "other"

    async def _dispatch(
        self, request: http.Request, tenant: Tenant | None = None
    ) -> tuple[int, dict]:
        parts = [part for part in request.path.split("/") if part]
        HTTP_REQUESTS.labels(self._route_label(parts)).inc()
        if parts == ["health"] and request.method == "GET":
            return 200, self._health()
        if parts == ["admin", "compact"] and request.method == "POST":
            return await self._compact()
        if parts == ["jobs"]:
            if request.method == "POST":
                return await self._submit(request, tenant)
            if request.method == "GET":
                return 200, self._list_jobs()
            raise http.HttpError(405, f"{request.method} not allowed on /jobs")
        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            if len(parts) == 2:
                if request.method == "GET":
                    return 200, self._job_state(job_id)
                if request.method == "DELETE":
                    return self._cancel(job_id)
                raise http.HttpError(
                    405, f"{request.method} not allowed on /jobs/{{id}}"
                )
            if parts[2] == "result" and len(parts) == 3 and request.method == "GET":
                return await self._result(job_id, request)
            if parts[2] == "cancel" and len(parts) == 3 and request.method == "POST":
                return self._cancel(job_id)
        raise http.HttpError(
            404,
            f"no route for {request.method} {request.path}; the API surface "
            f"is /health, /metrics, /jobs, /jobs/{{id}}, /jobs/{{id}}/result, "
            f"/jobs/{{id}}/cancel, /admin/compact, /events",
        )

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def _health(self) -> dict:
        statuses = self.service.jobs().values()
        counts: dict[str, int] = {}
        for status in statuses:
            counts[status.value] = counts.get(status.value, 0) + 1
        cache = self.service.cache_stats
        store_section = None
        if self.service.store is not None:
            store_section = dict(self.service.store.stats())
            belief_cache = self.service.belief_cache
            spill = None if belief_cache is None else belief_cache.spill
            if spill is not None:
                s = spill.stats
                lookups = s.hits + s.misses
                store_section["belief_spill"] = {
                    "hits": s.hits,
                    "misses": s.misses,
                    "stores": s.stores,
                    "errors": s.errors,
                    "hit_rate": (s.hits / lookups) if lookups else None,
                }
        return {
            "schema": wire.WIRE_SCHEMA,
            "status": "ok",
            "version": __version__,
            "generation": self.generation,
            "auth": self.tenants is not None,
            "durable": self.service.store is not None,
            "uptime_seconds": (
                0.0
                if self._started_at is None
                else clock.monotonic() - self._started_at
            ),
            "service": {
                "backend": self.service.backend,
                "max_workers": self.service.max_workers,
                "aging_seconds": self.service.aging_seconds,
            },
            "jobs": {"submitted": self._submitted, "by_status": counts},
            "result_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
            },
            "store": store_section,
            "events": self.hub.stats(),
            "observability": {
                "metrics": "/metrics",
                "spans_retained": len(TRACER.finished()),
            },
        }

    async def _compact(self) -> tuple[int, dict]:
        """``POST /admin/compact``: fold the store journal down now."""
        store = self.service.store
        if store is None:
            raise http.HttpError(
                409, "this server has no durable store to compact"
            )
        loop = asyncio.get_running_loop()
        before = dict(store.stats())
        await loop.run_in_executor(None, store.compact)
        return 200, {
            "schema": wire.WIRE_SCHEMA,
            "compacted": True,
            "journal_lag_before": before.get("journal_lag", 0),
            "store": dict(store.stats()),
        }

    def _parse_submission(self, data: dict) -> tuple:
        """A submit body → (job, executor kwargs for the search inside)."""
        if "spec" in data:
            spec = MiningSpec.from_dict(data["spec"])
        elif "job" in data:
            job = job_from_dict(data["job"])
            return job, {}
        elif "dataset" in data:  # a bare spec document is accepted too
            spec = MiningSpec.from_dict(data)
        else:
            raise http.HttpError(
                400,
                'submit body must be {"spec": {...}}, {"job": {...}}, or a '
                "bare MiningSpec document",
            )
        return spec.to_job(), {
            "workers": spec.executor.workers,
            "start_method": spec.executor.start_method,
            "shared_memory": spec.executor.shared_memory,
        }

    def _admit(self, tenant: Tenant | None) -> dict:
        """Per-tenant admission: rate limit + pending-quota checks.

        Returns extra ``submit`` kwargs carrying the tenant identity and
        fair share into the scheduler; raises 429 (with ``Retry-After``)
        when the tenant's token bucket is dry or its queue is full.
        """
        if tenant is None:
            return {}
        ok, retry_after = self.tenants.admit(tenant.name)
        if not ok:
            JOBS_REJECTED.labels(tenant.name).inc()
            raise http.HttpError(
                429,
                f"tenant {tenant.name!r} is over its submission rate limit",
                headers=(("Retry-After", f"{max(retry_after, 0.001):.3f}"),),
            )
        if tenant.max_pending is not None:
            pending = self.service.tenant_load(tenant.name)
            if pending >= tenant.max_pending:
                JOBS_REJECTED.labels(tenant.name).inc()
                raise http.HttpError(
                    429,
                    f"tenant {tenant.name!r} has {pending} jobs pending, "
                    f"at its max_pending quota of {tenant.max_pending}",
                    headers=(("Retry-After", "1"),),
                )
        return {"tenant": tenant.name, "tenant_share": tenant.share}

    async def _submit(
        self, request: http.Request, tenant: Tenant | None = None
    ) -> tuple[int, dict]:
        job, opts = self._parse_submission(request.json())
        opts.update(self._admit(tenant))
        observer = _JobStreamObserver(self.hub, candidates=self.candidate_events)
        loop = asyncio.get_running_loop()
        # Sampled before submission: every event of this job has a
        # higher sequence number, so a client subscribing with
        # ``since=<this>`` replays the job's stream from its first
        # event — no extra round trip to anchor, no missed-event window.
        since = self.hub.latest_seq
        # submit() can mine inline (serial backend) — keep it off the loop.
        job_id = await loop.run_in_executor(
            None, lambda: self.service.submit(job, observer=observer, **opts)
        )
        observer.bind(job_id)
        self._submitted += 1
        return 201, {
            "schema": wire.WIRE_SCHEMA,
            "job_id": job_id,
            "status": self.service.status(job_id).value,
            "name": job.name,
            "fingerprint": job.fingerprint(),
            "since": since,
            "gen": self.generation,
        }

    def _require_job(self, job_id: str):
        try:
            return self.service.job(job_id)
        except EngineError as exc:
            raise http.HttpError(404, str(exc)) from exc

    def _job_state(self, job_id: str) -> dict:
        job = self._require_job(job_id)
        return wire.job_state_to_wire(job_id, self.service.status(job_id), job)

    def _list_jobs(self) -> dict:
        entries = [
            wire.job_state_to_wire(job_id, status, self.service.job(job_id))
            for job_id, status in sorted(self.service.jobs().items())
        ]
        return {"schema": wire.WIRE_SCHEMA, "jobs": entries}

    async def _result(self, job_id: str, request: http.Request) -> tuple[int, dict]:
        self._require_job(job_id)
        try:
            wait = min(float(request.query.get("wait", 0.0)), MAX_RESULT_WAIT)
        except ValueError:
            raise http.HttpError(
                400, f"bad wait value {request.query.get('wait')!r}"
            ) from None
        loop = asyncio.get_running_loop()
        status = self.service.status(job_id)
        result = None
        if status in (JobStatus.PENDING, JobStatus.RUNNING) and wait > 0:
            # Timeout, cancellation, and failure all surface as a fresh
            # status read below; a success is kept (no second fetch).
            result = await loop.run_in_executor(
                self._wait_executor,
                _wait_quietly,
                self.service,
                job_id,
                wait,
                self._stopping,
            )
            status = self.service.status(job_id)
        document: dict = {
            "schema": wire.WIRE_SCHEMA,
            "job_id": job_id,
            "status": status.value,
        }
        if status in (JobStatus.PENDING, JobStatus.RUNNING):
            return 202, document
        if status == JobStatus.DONE:
            if result is None:
                result = await loop.run_in_executor(
                    None, _wait_quietly, self.service, job_id, 10.0, self._stopping
                )
            if result is None:  # pragma: no cover - done jobs resolve
                raise http.HttpError(
                    500, f"job {job_id} is done but its result was unavailable"
                )
            # The numpy→list conversion scales with the mined indices;
            # keep it off the loop (the body encode is offloaded too).
            document["result"] = await loop.run_in_executor(
                None, wire.job_result_to_wire, result
            )
            return 200, document
        if status == JobStatus.CANCELLED:
            document["error"] = {
                "type": "CancelledError",
                "message": f"job {job_id} was cancelled before it ran",
            }
            return 200, document
        # FAILED or EXPIRED: report the stored exception.
        error = await loop.run_in_executor(None, _job_error, self.service, job_id)
        if error is not None:
            document["error"] = wire.error_to_wire(error)
        return 200, document

    def _cancel(self, job_id: str) -> tuple[int, dict]:
        self._require_job(job_id)
        cancelled = self.service.cancel(job_id)
        return 200, {
            "schema": wire.WIRE_SCHEMA,
            "job_id": job_id,
            "cancelled": cancelled,
            "status": self.service.status(job_id).value,
        }

    # ------------------------------------------------------------------ #
    # SSE
    # ------------------------------------------------------------------ #
    async def _handle_events(self, request: http.Request, writer) -> None:
        since: int | None = None
        raw = request.headers.get("last-event-id") or request.query.get("since")
        if raw is not None:
            try:
                since = int(raw)
            except ValueError:
                writer.write(
                    self._error_response(400, f"bad Last-Event-ID {raw!r}", False)
                )
                await writer.drain()
                return
        # Optional server-side filter: ?job_id= streams one job's events
        # only. The filter lives inside the hub subscription, so foreign
        # events neither cross the wire nor occupy (or evict from) this
        # subscriber's bounded queue — and a quiet *filtered* stream
        # still heartbeats even while the server is busy with other
        # jobs, which is what keeps the client's dropped-terminal
        # healing path alive. Filtered-out sequence numbers simply never
        # appear on this connection.
        subscription = self.hub.subscribe(
            since=since, job_id=request.query.get("job_id")
        )
        writer.write(http.sse_preamble())
        get_task: asyncio.Task | None = None
        try:
            await writer.drain()
            while True:
                if get_task is None:
                    get_task = asyncio.ensure_future(subscription.get())
                done, _ = await asyncio.wait(
                    {get_task}, timeout=self.heartbeat_seconds
                )
                if not done:
                    # Idle: heartbeat, and notice a dead client by the
                    # write failing. The un-awaited get_task survives the
                    # wait() timeout, so no event is lost.
                    writer.write(http.sse_comment())
                    await writer.drain()
                    continue
                entry = get_task.result()
                get_task = None
                if entry is None:  # hub closed: server shutting down
                    writer.write(http.sse_comment("server shutdown"))
                    await writer.drain()
                    break
                seq, event = entry
                # Every frame carries the server's stream generation, so
                # a client resuming with Last-Event-ID against a
                # *restarted* server (fresh seq space) can detect the
                # mismatch and re-anchor instead of silently misaligning.
                writer.write(
                    http.sse_event(
                        seq,
                        event.get("type", "message"),
                        {**event, "gen": self.generation},
                    )
                )
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client disconnected; Last-Event-ID lets it resume
        finally:
            if get_task is not None:
                get_task.cancel()
            subscription.close()
