"""Integration tests: the §III-D water-quality experiments (Figs. 9-10)."""

import numpy as np
import pytest

from repro.experiments.water_exp import FIG10_PARAMETERS, run_fig9, run_fig10


@pytest.fixture(scope="module")
def fig10():
    return run_fig10(seed=0)


@pytest.fixture(scope="module")
def fig9():
    return run_fig9(seed=0)


class TestFig10:
    def test_paper_intention_recovered(self, fig10):
        """Paper: 'gammarus fossarum <= 0 AND tubifex >= 3'."""
        assert "amphipoda_gammarus_fossarum <= 0" in fig10.intention
        assert "oligochaeta_tubifex >= 3" in fig10.intention

    def test_size_close_to_paper(self, fig10):
        assert 70 <= fig10.size <= 140  # paper: 91 records

    def test_oxygen_demand_parameters_elevated(self, fig10):
        by_name = {r.name: r for r in fig10.surprisals_before}
        for name in FIG10_PARAMETERS:
            record = by_name[name]
            assert record.observed > record.expected, name

    def test_highlighted_params_among_most_surprising(self, fig10):
        top8 = {r.name for r in fig10.surprisals_before[:8]}
        overlap = top8.intersection(FIG10_PARAMETERS)
        assert len(overlap) >= 4

    def test_update_pins_means(self, fig10):
        after = {r.name: r for r in fig10.surprisals_after}
        for before in fig10.surprisals_before:
            assert after[before.name].expected == pytest.approx(
                before.observed, abs=1e-6
            )

    def test_format_renders(self, fig10):
        assert "Fig. 10" in fig10.format()


class TestFig9:
    def test_top_weights_on_bod_and_kmno4(self, fig9):
        """Paper: 'a sparse weight vector placing high weights on BOD and KMnO4'."""
        assert set(fig9.top_weight_names) == {"bod", "kmno4"}

    def test_variance_larger_than_expected(self, fig9):
        """The paper's headline: a surprising HIGH-variance direction."""
        assert fig9.observed_variance > 2.0 * fig9.expected_variance

    def test_direction_unit_norm(self, fig9):
        assert np.linalg.norm(fig9.direction) == pytest.approx(1.0)

    def test_cdf_data_wider_than_model(self, fig9):
        """Fig. 9b: the subgroup's projections spread wider than the model."""
        def span(cdf, grid):
            lo = grid[np.searchsorted(cdf, 0.1)]
            hi = grid[np.searchsorted(cdf, 0.9)]
            return hi - lo
        assert span(fig9.cdf_data, fig9.cdf_grid) > 1.2 * span(
            fig9.cdf_model, fig9.cdf_grid
        )

    def test_spread_si_positive(self, fig9):
        assert fig9.spread_si > 5.0

    def test_format_renders(self, fig9):
        text = fig9.format()
        assert "Fig. 9" in text
        assert "bod" in text
