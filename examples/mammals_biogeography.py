"""European mammals biogeography (§III-B, Figs. 4-6).

Mines location patterns over 124 species presence targets described by
67 climate attributes and renders the found climate regions as text maps
of Europe. The paper's three regions - cold-March north+Alps, dry-summer
Mediterranean, dry-autumn continental east - come out in order.

Run with::

    python examples/mammals_biogeography.py
"""

import numpy as np

from repro import MiningSpec, attribute_surprisals, build_miner, load_dataset
from repro.report.ascii import text_map


def main() -> None:
    dataset = load_dataset("mammals", seed=0)
    lat = np.asarray(dataset.metadata["lat"])
    lon = np.asarray(dataset.metadata["lon"])
    miner = build_miner(MiningSpec.build("mammals"))

    print(f"{dataset.n_rows} grid cells, {dataset.n_targets} species, "
          f"{dataset.n_descriptions} climate attributes")
    for index in range(1, 4):
        pattern = miner.find_location()
        mask = np.zeros(dataset.n_rows, dtype=bool)
        mask[pattern.indices] = True
        print()
        print(f"=== iteration {index}: {pattern.description} "
              f"(SI {pattern.si:.0f}, {pattern.size} cells) ===")
        print(text_map(lat, lon, mask, width=60, height=16))
        # Rank species surprisal BEFORE assimilating, like the paper's Fig. 5.
        records = attribute_surprisals(
            miner.model, pattern.indices, pattern.mean,
            names=dataset.target_names,
        )
        print("  most surprising species:")
        for record in records[:5]:
            direction = "present" if record.z > 0 else "absent"
            print(f"    {record.name:28s} {direction:8s} "
                  f"(observed {record.observed:.2f}, expected {record.expected:.2f})")
        miner.assimilate(pattern)


if __name__ == "__main__":
    main()
