"""Subjective Interestingness: SI = IC / DL (Eqs. 14 and 20)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.interest.dl import LOCATION, SPREAD, DLParams, description_length
from repro.interest.ic import location_ic, spread_ic
from repro.model.background import BackgroundModel


@dataclass(frozen=True)
class PatternScore:
    """A scored pattern: information content, description length, ratio.

    SI may be negative: the IC is a negative log *density*, which is
    negative wherever the density exceeds 1 (the paper notes this after
    Table I). Only the ranking of SI values carries meaning.
    """

    ic: float
    dl: float

    @property
    def si(self) -> float:
        return self.ic / self.dl


def score_location(
    model: BackgroundModel,
    indices,
    observed_mean: np.ndarray,
    n_conditions: int,
    *,
    params: DLParams = DLParams(),
) -> PatternScore:
    """Eq. 14: SI of a location pattern."""
    ic = location_ic(model, indices, observed_mean)
    dl = description_length(n_conditions, kind=LOCATION, params=params)
    return PatternScore(ic=ic, dl=dl)


def score_spread(
    model: BackgroundModel,
    indices,
    direction: np.ndarray,
    observed_variance: float,
    center: np.ndarray,
    n_conditions: int,
    *,
    params: DLParams = DLParams(),
) -> PatternScore:
    """Eq. 20: SI of a spread pattern (DL has the extra ``+1`` term)."""
    ic = spread_ic(model, indices, direction, observed_variance, center)
    dl = description_length(n_conditions, kind=SPREAD, params=params)
    return PatternScore(ic=ic, dl=dl)
