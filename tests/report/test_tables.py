"""Tests for the table formatter."""

import pytest

from repro.errors import ReproError
from repro.report.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [("a", 1.5), ("bb", 20.25)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [(1.23456,)], floatfmt=".3f")
        assert "1.235" in text

    def test_ints_not_float_formatted(self):
        text = format_table(["v"], [(42,)])
        assert "42" in text
        assert "42.00" not in text

    def test_numbers_right_aligned(self):
        text = format_table(["value"], [(1.0,), (100.0,)])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("  1.00")
        assert rows[1].endswith("100.00")

    def test_ragged_row_rejected(self):
        with pytest.raises(ReproError, match="cells"):
            format_table(["a", "b"], [(1,)])

    def test_stable_width_across_rows(self):
        text = format_table(["a", "b"], [("x", 1), ("longer", 2)])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1
