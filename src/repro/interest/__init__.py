"""Subjective interestingness: IC, DL, and their ratio SI (§II-C)."""

from repro.interest.dl import DLParams, description_length
from repro.interest.ic import location_ic, spread_ic
from repro.interest.si import PatternScore, score_location, score_spread
from repro.interest.attribution import AttributeSurprisal, attribute_surprisals

__all__ = [
    "DLParams",
    "description_length",
    "location_ic",
    "spread_ic",
    "PatternScore",
    "score_location",
    "score_spread",
    "AttributeSurprisal",
    "attribute_surprisals",
]
