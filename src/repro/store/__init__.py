"""repro.store — the durable, multi-tenant persistence tier.

Three concerns, one directory:

- :class:`JobStore` (over :class:`DurableLog`): scheduler records and
  finished results survive restarts, bit-identically.
- :class:`BeliefStore` / :class:`BeliefStoreHandle`: the belief-prefix
  cache spills to content-addressed files (mmap-read numpy payloads),
  so the sequential method's accumulated background state survives too
  — and crosses process boundaries as a short picklable handle.
- :class:`TenantRegistry` / :class:`Tenant`: bearer tokens, fair-share
  weights for the scheduler, and token-bucket rate limits.
"""

from repro.store.beliefs import BeliefStore, BeliefStoreHandle
from repro.store.records import RECORD_SCHEMA, JobStore
from repro.store.tenancy import Tenant, TenantRegistry, TokenBucket
from repro.store.wal import DurableLog

__all__ = [
    "BeliefStore",
    "BeliefStoreHandle",
    "DurableLog",
    "JobStore",
    "RECORD_SCHEMA",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
]
