"""Consistent-hash ring: determinism, balance, and minimal movement."""

import pytest

from repro.dist.ring import HashRing
from repro.errors import EngineError

KEYS = [f"fingerprint-{i:04d}" for i in range(1000)]


class TestMembership:
    def test_add_is_idempotent(self):
        ring = HashRing(["a", "b"])
        ring.add("a")
        assert len(ring) == 2
        assert ring.nodes == {"a", "b"}

    def test_remove_is_idempotent(self):
        ring = HashRing(["a", "b"])
        ring.remove("missing")
        ring.remove("b")
        ring.remove("b")
        assert ring.nodes == {"a"}

    def test_contains(self):
        ring = HashRing(["a"])
        assert "a" in ring
        assert "b" not in ring

    def test_empty_ring_raises(self):
        with pytest.raises(EngineError):
            HashRing().node_for("anything")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(EngineError):
            HashRing(vnodes=0)


class TestPlacement:
    def test_identical_across_instances(self):
        """Same membership => same placement, in any construction order."""
        forward = HashRing(["r0", "r1", "r2"])
        backward = HashRing(["r2", "r1", "r0"])
        for key in KEYS:
            assert forward.node_for(key) == backward.node_for(key)

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(key) == "only" for key in KEYS)

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(["r0", "r1", "r2"])
        counts = {"r0": 0, "r1": 0, "r2": 0}
        for key in KEYS:
            counts[ring.node_for(key)] += 1
        # 64 vnodes per node: each should hold a meaningful share.
        assert all(count > len(KEYS) * 0.15 for count in counts.values()), counts

    def test_preference_starts_at_owner_and_covers_all(self):
        ring = HashRing(["r0", "r1", "r2"])
        for key in KEYS[:50]:
            order = list(ring.preference(key))
            assert order[0] == ring.node_for(key)
            assert sorted(order) == ["r0", "r1", "r2"]

    def test_preference_deterministic(self):
        a = HashRing(["r0", "r1", "r2"])
        b = HashRing(["r0", "r1", "r2"])
        for key in KEYS[:50]:
            assert list(a.preference(key)) == list(b.preference(key))


class TestMinimalMovement:
    def test_removal_only_moves_the_dead_nodes_keys(self):
        """Keys not owned by the removed node keep their replica."""
        ring = HashRing(["r0", "r1", "r2"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove("r1")
        for key in KEYS:
            if before[key] != "r1":
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) in ("r0", "r2")

    def test_rejoin_restores_original_placement(self):
        ring = HashRing(["r0", "r1", "r2"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove("r1")
        ring.add("r1")
        assert {key: ring.node_for(key) for key in KEYS} == before

    def test_addition_moves_a_bounded_share(self):
        ring = HashRing(["r0", "r1", "r2"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add("r3")
        moved = sum(1 for key in KEYS if ring.node_for(key) != before[key])
        # Expected movement ~ 1/4 of keys; generous upper bound.
        assert 0 < moved < len(KEYS) * 0.45, moved
        for key in KEYS:
            if ring.node_for(key) != before[key]:
                assert ring.node_for(key) == "r3"
