"""The evolving background distribution (Eq. 4) and its updates.

:class:`BackgroundModel` represents the user's belief state as a product
of per-point multivariate normals whose parameters are shared within the
blocks of a :class:`~repro.model.blocks.BlockPartition`. Assimilating a
pattern (:meth:`assimilate`) performs the KL-minimal update of Theorem 1
(location) or Theorem 2 (spread); :meth:`refit` re-derives the model from
the prior for an arbitrary *set* of patterns by coordinate descent, the
procedure whose runtime the paper's Table II measures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ModelError
from repro.model.blocks import BlockPartition
from repro.model.gaussian import mvn_logpdf
from repro.model.patterns import (
    LocationConstraint,
    PatternConstraint,
    SpreadConstraint,
)
from repro.model.priors import Prior, empirical_prior
from repro.model.updates import (
    location_multiplier,
    solve_spread_multiplier,
    spread_block_update,
)


class BackgroundModel:
    """Belief state over an ``(n, d)`` target matrix.

    Parameters
    ----------
    n_rows:
        Number of data points.
    prior:
        Initial expectation: every point starts as ``N(prior.mean,
        prior.cov)`` (the MaxEnt distribution under the user's expected
        mean and covariance).
    weights:
        Optional per-row case weights (frequency semantics: a row with
        weight ``w`` behaves as ``w`` independent copies in every
        sufficient statistic). ``None`` keeps the exact unweighted code
        path, so unit weights stay bit-identical to no weights.
    """

    #: What the engine's shared-memory transport may extract when a
    #: frozen model ships to pool workers (:func:`repro.engine.shm.publish`):
    #: the row partition (scales with the data), the per-block parameter
    #: lists, and the case weights; the nested prior declares its own
    #: arrays. ``_weights`` may be ``None`` — the transport skips it.
    __shm_arrays__ = ("_partition", "_means", "_covs", "prior", "_weights")

    def __init__(
        self, n_rows: int, prior: Prior, weights: np.ndarray | None = None
    ) -> None:
        if n_rows <= 0:
            raise ModelError(f"n_rows must be positive, got {n_rows}")
        self.prior = prior
        self._n_rows = n_rows
        self._partition = BlockPartition(n_rows)
        self._means: list[np.ndarray] = [prior.mean.copy()]
        self._covs: list[np.ndarray] = [prior.cov.copy()]
        self._constraints: list[PatternConstraint] = []
        self._weights = self._check_weights(weights, n_rows)

    @staticmethod
    def _check_weights(weights, n_rows: int) -> np.ndarray | None:
        if weights is None:
            return None
        arr = np.asarray(weights, dtype=float)
        if arr.ndim != 1 or arr.shape[0] != n_rows:
            raise ModelError(
                f"weights must be a 1-D array of length {n_rows}, got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)) or np.any(arr <= 0.0):
            raise ModelError("weights must be positive finite floats")
        return arr.copy()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_targets(
        cls,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
        **prior_kwargs,
    ) -> "BackgroundModel":
        """Model with the empirical prior of ``targets`` (paper's setup).

        With ``weights``, the prior is the *weighted* empirical mean and
        covariance — consistent with the duplicated-rows interpretation.
        """
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets[:, None]
        return cls(
            targets.shape[0],
            empirical_prior(targets, weights=weights, **prior_kwargs),
            weights=weights,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def dim(self) -> int:
        return self.prior.dim

    @property
    def n_blocks(self) -> int:
        return self._partition.n_blocks

    @property
    def labels(self) -> np.ndarray:
        """Per-row block labels (read-only view)."""
        return self._partition.labels

    @property
    def constraints(self) -> tuple[PatternConstraint, ...]:
        """Patterns assimilated so far, in order."""
        return tuple(self._constraints)

    @property
    def weights(self) -> np.ndarray | None:
        """Case weights the model was built with (``None`` = unit)."""
        return self._weights

    def block_mean(self, block: int) -> np.ndarray:
        """Mean parameter of one block (copy)."""
        return self._means[block].copy()

    def block_cov(self, block: int) -> np.ndarray:
        """Covariance parameter of one block (copy)."""
        return self._covs[block].copy()

    def block_sizes(self) -> np.ndarray:
        """Number of rows in each block, indexed by block label."""
        return self._partition.sizes()

    def mean_of(self, i: int) -> np.ndarray:
        """Current mean parameter of data point ``i``."""
        return self._means[int(self.labels[i])].copy()

    def cov_of(self, i: int) -> np.ndarray:
        """Current covariance parameter of data point ``i``."""
        return self._covs[int(self.labels[i])].copy()

    def point_means(self) -> np.ndarray:
        """``(n, d)`` matrix of per-point mean parameters."""
        stacked = np.stack(self._means)
        return stacked[self.labels]

    def copy(self) -> "BackgroundModel":
        """Deep copy; used by searches that score hypothetical updates."""
        clone = BackgroundModel(self._n_rows, self.prior, weights=self._weights)
        clone._partition = BlockPartition(self._n_rows)
        clone._partition._labels[:] = self._partition.labels
        clone._partition._n_blocks = self._partition.n_blocks
        clone._means = [m.copy() for m in self._means]
        clone._covs = [c.copy() for c in self._covs]
        clone._constraints = list(self._constraints)
        return clone

    # ------------------------------------------------------------------ #
    # Subgroup-level expectations
    # ------------------------------------------------------------------ #
    def _as_mask(self, indices) -> np.ndarray:
        arr = np.asarray(indices)
        if arr.dtype == bool:
            if arr.shape != (self._n_rows,):
                raise ModelError(
                    f"mask must have shape ({self._n_rows},), got {arr.shape}"
                )
            mask = arr
        else:
            mask = np.zeros(self._n_rows, dtype=bool)
            mask[arr.astype(np.int64)] = True
        if not mask.any():
            raise ModelError("subgroup extension is empty")
        return mask

    def _block_weights(self, mask: np.ndarray) -> np.ndarray:
        """Weighted row count of each block inside ``mask`` (float array).

        Unweighted models return the exact integer block counts as
        floats, so every statistic built on them is bit-identical to the
        historical count-based arithmetic.
        """
        if self._weights is None:
            return self._partition.counts_in(mask).astype(float)
        return np.bincount(
            self._partition.labels[mask],
            weights=self._weights[mask],
            minlength=self._partition.n_blocks,
        )

    def subgroup_mean_distribution(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """Distribution of the subgroup mean statistic ``f_I(Y)``.

        Under the model, ``f_I(Y) ~ N(mu_I, Sigma_I)`` with
        ``mu_I = sum_{i in I} mu_i / |I|`` and — being a mean of
        independent Gaussians — ``Sigma_I = sum_{i in I} Sigma_i / |I|^2``
        (DESIGN.md §2, correction 2). With case weights, counts become
        weighted counts and ``|I|`` the total subgroup weight: a row of
        weight ``w`` contributes like ``w`` independent copies, so the
        covariance stays *linear* in ``w`` (frequency semantics).
        """
        mask = self._as_mask(indices)
        counts = self._block_weights(mask)
        size = float(counts.sum())
        mu = np.zeros(self.dim)
        cov = np.zeros((self.dim, self.dim))
        for block in np.flatnonzero(counts):
            c = float(counts[block])
            mu += c * self._means[block]
            cov += c * self._covs[block]
        return mu / size, cov / size**2

    def expected_subgroup_mean(self, indices) -> np.ndarray:
        """``E[f_I(Y)]`` under the current model."""
        return self.subgroup_mean_distribution(indices)[0]

    def pooled_cov(self, indices) -> np.ndarray:
        """Average per-point covariance over the subgroup (weight-aware)."""
        mask = self._as_mask(indices)
        counts = self._block_weights(mask)
        size = float(counts.sum())
        cov = np.zeros((self.dim, self.dim))
        for block in np.flatnonzero(counts):
            cov += float(counts[block]) * self._covs[block]
        return cov / size

    def spread_blocks(self, indices) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray]]:
        """Per-block data for spread computations over a subgroup.

        Returns ``(counts, means, covs)`` restricted to blocks that
        intersect the subgroup, with ``counts`` the (weighted) number of
        subgroup rows in each.
        """
        mask = self._as_mask(indices)
        counts = self._block_weights(mask)
        inside = np.flatnonzero(counts)
        return (
            counts[inside],
            [self._means[b] for b in inside],
            [self._covs[b] for b in inside],
        )

    def expected_spread(self, indices, direction: np.ndarray, center: np.ndarray) -> float:
        """``E[g_I^w(Y)]`` for the statistic centred at ``center``.

        For each point, ``E[((y - center)'w)^2] = w'Sigma w +
        (w'(mu - center))^2``; the statistic averages these.
        """
        counts, means, covs = self.spread_blocks(indices)
        direction = np.asarray(direction, dtype=float)
        center = np.asarray(center, dtype=float)
        total = 0.0
        for c, mu, cov in zip(counts, means, covs):
            s = float(direction @ cov @ direction)
            e = float(direction @ (mu - center))
            total += c * (s + e**2)
        return total / float(counts.sum())

    def logpdf(self, targets: np.ndarray) -> float:
        """Log density of the full target matrix under the model."""
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets[:, None]
        if targets.shape != (self._n_rows, self.dim):
            raise ModelError(
                f"targets must have shape ({self._n_rows}, {self.dim}), "
                f"got {targets.shape}"
            )
        total = 0.0
        labels = self.labels
        for block in range(self.n_blocks):
            rows = np.flatnonzero(labels == block)
            if rows.size == 0:
                continue
            mean, cov = self._means[block], self._covs[block]
            for i in rows:
                total += mvn_logpdf(targets[i], mean, cov)
        return total

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def _split_for(self, mask: np.ndarray) -> None:
        created = self._partition.split(mask)
        for old_label in sorted(created, key=created.get):
            new_label = created[old_label]
            if new_label != len(self._means):
                raise ModelError("partition and parameter store out of sync")
            self._means.append(self._means[old_label].copy())
            self._covs.append(self._covs[old_label].copy())

    def _apply_location(self, constraint: LocationConstraint) -> None:
        if constraint.mean.shape[0] != self.dim:
            raise ModelError(
                f"constraint dimension {constraint.mean.shape[0]} != model dim {self.dim}"
            )
        mask = constraint.mask(self._n_rows)
        self._split_for(mask)
        counts = self._block_weights(mask)
        inside = np.flatnonzero(counts)
        lam = location_multiplier(
            [self._covs[b] for b in inside],
            counts[inside],
            [self._means[b] for b in inside],
            constraint.mean,
        )
        for block in inside:
            self._means[block] = self._means[block] + self._covs[block] @ lam

    def _apply_spread(self, constraint: SpreadConstraint) -> None:
        if constraint.direction.shape[0] != self.dim:
            raise ModelError(
                f"constraint dimension {constraint.direction.shape[0]} != model dim {self.dim}"
            )
        mask = constraint.mask(self._n_rows)
        self._split_for(mask)
        counts = self._block_weights(mask)
        inside = np.flatnonzero(counts)
        w = constraint.direction
        s = np.array([float(w @ self._covs[b] @ w) for b in inside])
        e = np.array([float(w @ (constraint.center - self._means[b])) for b in inside])
        # The statistic normalizes by the (weighted) subgroup size; for
        # unit weights counts.sum() equals constraint.size exactly.
        lam = solve_spread_multiplier(
            s, e, counts[inside], float(counts.sum()),
            constraint.variance,
        )
        for block in inside:
            self._means[block], self._covs[block] = spread_block_update(
                self._means[block], self._covs[block], w, constraint.center, lam
            )

    def assimilate(self, constraint: PatternConstraint) -> "BackgroundModel":
        """Update the belief state with one pattern; returns ``self``.

        The update enforces the pattern's statistic in expectation
        *exactly*; previously assimilated constraints with overlapping
        extensions may drift and can be re-tightened with :meth:`refit`.
        """
        if isinstance(constraint, LocationConstraint):
            self._apply_location(constraint)
        elif isinstance(constraint, SpreadConstraint):
            self._apply_spread(constraint)
        else:
            raise ModelError(
                f"cannot assimilate {type(constraint).__name__}"
            )
        self._constraints.append(constraint)
        return self

    # ------------------------------------------------------------------ #
    # Residuals and refitting
    # ------------------------------------------------------------------ #
    def constraint_residual(self, constraint: PatternConstraint) -> float:
        """How far the model is from satisfying one constraint.

        Location: max absolute gap between expected and specified
        subgroup mean, relative to the prior scale. Spread: relative gap
        between expected and specified variance.
        """
        if isinstance(constraint, LocationConstraint):
            expected = self.expected_subgroup_mean(constraint.indices)
            scale = float(np.sqrt(np.diag(self.prior.cov)).max())
            return float(np.abs(expected - constraint.mean).max()) / max(scale, 1e-300)
        if isinstance(constraint, SpreadConstraint):
            expected = self.expected_spread(
                constraint.indices, constraint.direction, constraint.center
            )
            return abs(expected - constraint.variance) / max(constraint.variance, 1e-300)
        raise ModelError(f"unknown constraint type {type(constraint).__name__}")

    def max_residual(self) -> float:
        """Largest residual over all assimilated constraints (0 if none)."""
        if not self._constraints:
            return 0.0
        return max(self.constraint_residual(c) for c in self._constraints)

    def refit(
        self,
        constraints: list[PatternConstraint] | None = None,
        *,
        tol: float = 1e-9,
        max_rounds: int = 100,
    ) -> int:
        """Re-derive the model from the prior under a set of constraints.

        Coordinate descent: reset to the prior, then repeatedly sweep the
        constraint list applying each update in turn until every residual
        falls below ``tol``. The KL objective is convex with linear/
        quadratic expectation constraints, so this converges to the
        global optimum; with non-overlapping extensions one sweep
        suffices (the paper's common case).

        Returns the number of sweeps performed. Raises
        :class:`~repro.errors.ConvergenceError` if ``max_rounds`` sweeps
        leave some residual above ``tol``.
        """
        if constraints is None:
            constraints = list(self._constraints)
        # Reset to the prior.
        self._partition = BlockPartition(self._n_rows)
        self._means = [self.prior.mean.copy()]
        self._covs = [self.prior.cov.copy()]
        self._constraints = []
        if not constraints:
            return 0

        for sweep in range(1, max_rounds + 1):
            for constraint in constraints:
                if isinstance(constraint, LocationConstraint):
                    self._apply_location(constraint)
                elif isinstance(constraint, SpreadConstraint):
                    self._apply_spread(constraint)
                else:
                    raise ModelError(
                        f"cannot refit {type(constraint).__name__}"
                    )
            self._constraints = list(constraints)
            residual = self.max_residual()
            if residual < tol:
                return sweep
        raise ConvergenceError(
            f"refit did not converge in {max_rounds} sweeps",
            iterations=max_rounds,
            residual=residual,
        )


def fitted_model(targets: np.ndarray, **prior_kwargs) -> BackgroundModel:
    """Convenience: :meth:`BackgroundModel.from_targets` as a function."""
    return BackgroundModel.from_targets(targets, **prior_kwargs)
