"""Spans and explicit trace-context propagation across process borders.

One mining job crosses a lot of machinery — HTTP submit, scheduler
queue, executor shards, sometimes a remote worker daemon — and the
point of a trace is that all of it hangs off **one trace id**. The
pieces:

- :class:`TraceContext` — the two ids that travel: ``trace_id`` (one
  per logical operation) and ``span_id`` (the sender's span, which the
  receiver parents under). It is a frozen, picklable dataclass with a
  ``to_wire``/``from_wire`` dict form small enough to ride any
  envelope: the service attaches it to scheduled jobs, the dist
  executor puts it in shard request envelopes next to the context
  digest, and the shm transport ships it alongside the
  ``__shm_arrays__`` handles.
- :class:`Span` — one timed operation (name, ids, start/end read
  through the :mod:`repro.obs.clock` seam, string tags).
- :class:`Tracer` — creates spans and keeps the most recent finished
  ones in a bounded deque. Completed spans are *observability data*,
  not results: they never feed fingerprints, and a full deque silently
  drops the oldest span.

Propagation is **explicit**: whoever starts work passes the context on
(an argument, a wire field) and the far side calls
:meth:`Tracer.span` with ``parent=ctx``. For call sites that cannot
thread an argument through (the beam search doesn't know about jobs),
:func:`activate` pins a context to the current thread and
:func:`current` reads it back — the executor backends activate the
job's context around the work they run, which is what stitches
engine-internal phase spans onto the job's trace.

Ids are random (``secrets``); they exist to correlate, not to
reproduce, and they stay out of every fingerprint — the determinism
contract is asserted with tracing on.
"""

from __future__ import annotations

import secrets
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import ObsError
from repro.obs import clock

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "TRACER",
    "activate",
    "current",
]

#: Finished spans retained per tracer (oldest dropped beyond this).
SPAN_RETENTION = 4096


@dataclass(frozen=True)
class TraceContext:
    """The propagated pair: which trace, and which span to parent under."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict:
        """The envelope form (two short strings; JSON- and pickle-safe)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_wire(document: object) -> "TraceContext | None":
        """Decode an envelope field; malformed/absent -> ``None``.

        Lenient by design: tracing must never turn a valid job request
        into an error.
        """
        if not isinstance(document, dict):
            return None
        trace_id = document.get("trace_id")
        span_id = document.get("span_id")
        if isinstance(trace_id, str) and isinstance(span_id, str):
            return TraceContext(trace_id, span_id)
        return None


@dataclass
class Span:
    """One timed operation within a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    started: float
    ended: float | None = None
    tags: dict[str, str] = field(default_factory=dict)

    @property
    def context(self) -> TraceContext:
        """The context children of this span propagate."""
        return TraceContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        return 0.0 if self.ended is None else self.ended - self.started

    def tag(self, key: str, value: object) -> "Span":
        """Attach one string tag (values are stringified)."""
        self.tags[str(key)] = str(value)
        return self


class Tracer:
    """Creates spans and retains the most recent finished ones."""

    def __init__(self, retention: int = SPAN_RETENTION) -> None:
        if retention < 1:
            raise ObsError(f"span retention must be >= 1, got {retention}")
        self._finished: deque[Span] = deque(maxlen=retention)
        self._lock = threading.Lock()

    @staticmethod
    def _new_id() -> str:
        return secrets.token_hex(8)

    def start(
        self, name: str, parent: TraceContext | None = None
    ) -> Span:
        """Open a span; a ``None`` parent starts a fresh trace."""
        if parent is None:
            trace_id, parent_id = self._new_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(
            name=name,
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            started=clock.perf_counter(),
        )

    def finish(self, span: Span) -> Span:
        """Close a span and retain it (idempotent for a closed span)."""
        if span.ended is None:
            span.ended = clock.perf_counter()
            with self._lock:
                self._finished.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        parent: TraceContext | None = None,
        *,
        activate_ctx: bool = True,
    ) -> Iterator[Span]:
        """``with tracer.span("score", parent=ctx) as span: ...``

        While the block runs, the new span's context is the thread's
        :func:`current` (unless ``activate_ctx=False``), so nested
        instrumentation parents correctly without plumbing.
        """
        opened = self.start(name, parent=parent)
        try:
            if activate_ctx:
                with activate(opened.context):
                    yield opened
            else:
                yield opened
        finally:
            self.finish(opened)

    def record(
        self,
        name: str,
        started: float,
        ended: float,
        parent: TraceContext | None,
        tags: Mapping[str, object] | None = None,
    ) -> Span | None:
        """Retain an already-measured interval as a finished span.

        The hot paths measure phases with two clock reads regardless of
        tracing; this turns those same boundaries into a span after the
        fact — no context-manager overhead inside the loop. A ``None``
        parent is a no-op returning ``None``: phase spans only exist
        *within* a trace, never as orphan roots.
        """
        if parent is None:
            return None
        span = Span(
            name=name,
            trace_id=parent.trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id,
            started=started,
            ended=ended,
        )
        if tags:
            for key, value in tags.items():
                span.tag(key, value)
        with self._lock:
            self._finished.append(span)
        return span

    # ------------------------------ reads ----------------------------- #
    def finished(self, trace_id: str | None = None) -> list[Span]:
        """Retained finished spans, oldest first; optionally one trace."""
        with self._lock:
            spans = list(self._finished)
        if trace_id is None:
            return spans
        return [span for span in spans if span.trace_id == trace_id]

    def tree(self, trace_id: str) -> dict[str | None, list[Span]]:
        """Finished spans of one trace, grouped by ``parent_id``."""
        tree: dict[str | None, list[Span]] = {}
        for span in self.finished(trace_id):
            tree.setdefault(span.parent_id, []).append(span)
        return tree

    def clear(self) -> None:
        """Drop every retained span (tests)."""
        with self._lock:
            self._finished.clear()


#: Process-wide default tracer: every instrumented tier records here,
#: which is what makes an in-process multi-tier test see one tree.
TRACER = Tracer()

_ACTIVE = threading.local()


@contextmanager
def activate(ctx: TraceContext | None) -> Iterator[None]:
    """Pin ``ctx`` as this thread's current trace context."""
    previous = getattr(_ACTIVE, "ctx", None)
    _ACTIVE.ctx = ctx
    try:
        yield
    finally:
        _ACTIVE.ctx = previous


def current() -> TraceContext | None:
    """This thread's active trace context (``None`` outside any)."""
    return getattr(_ACTIVE, "ctx", None)
