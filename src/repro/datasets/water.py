"""Synthetic stand-in for the Slovenian river water-quality dataset.

The paper's case study (§III-D, Figs. 9-10) uses 1060 river samples with
16 physical/chemical target parameters and 14 ordinal bioindicator
description attributes (7 plants, 7 animals; densities coded 0 = absent,
1 = incidental, 3 = frequent, 5 = abundant). The original data is not
available offline; this generator reproduces the shape and plants the two
structures the experiments measure:

- Fig. 10: a top location pattern "amphipoda_gammarus_fossarum <= 0 AND
  oligochaeta_tubifex >= 3" covering ~91 records (~8.6%), inside which
  biological oxygen demand (bod), chloride (cl), conductivity, KMnO4 and
  K2Cr2O7 (chemical oxygen demand) are far above average.
- Fig. 9: inside that subgroup the *spread* along a near-sparse direction
  with high weights on bod and kmno4 is much LARGER than the background
  expects (polluted sites are more heterogeneous), the paper's example of
  a surprising high-variance direction.

Mechanism: a latent pollution score drives (a) the ordinal responses of
clean-water taxa (decreasing) and pollution-tolerant taxa (increasing),
(b) the mean levels of the oxygen-demand chemistry, and (c) a *shared*
heteroscedastic noise component loading on bod and kmno4 with ratio
~(0.50, 0.86), which creates the planted high-variance direction.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.utils.rng import as_rng

#: Target parameter names, matching the axis labels of the paper's Fig. 9c.
TARGETS = (
    "std_temp", "std_ph", "conduct", "o2", "o2sat", "co2", "hardness",
    "no2", "no3", "nh4", "po4", "cl", "sio2", "kmno4", "k2cr2o7", "bod",
)

#: Ordinal density levels used by the expert biologists.
DENSITY_LEVELS = (0.0, 1.0, 3.0, 5.0)

#: Bioindicator taxa: (name, response) where response is "clean" (density
#: falls with pollution), "tolerant" (density rises), or "neutral".
TAXA = (
    # Animals (7)
    ("amphipoda_gammarus_fossarum", "clean"),
    ("oligochaeta_tubifex", "tolerant"),
    ("plecoptera_leuctra", "clean"),
    ("ephemeroptera_baetis", "clean"),
    ("chironomidae_chironomus", "tolerant"),
    ("hirudinea_erpobdella", "tolerant"),
    ("trichoptera_hydropsyche", "neutral"),
    # Plants (7)
    ("cladophora_glomerata", "tolerant"),
    ("fontinalis_antipyretica", "clean"),
    ("batrachospermum_moniliforme", "clean"),
    ("lemna_minor", "tolerant"),
    ("potamogeton_crispus", "neutral"),
    ("oscillatoria_limosa", "tolerant"),
    ("diatoma_vulgare", "neutral"),
)

#: Loadings of the shared heteroscedastic factor: direction ~(0.50, 0.86)
#: on (bod, kmno4), the planted Fig. 9 spread direction.
SPREAD_LOADINGS = {"bod": 1.1, "kmno4": 1.9}


def _ordinal_from_score(
    score: np.ndarray,
    rng: np.random.Generator,
    thresholds: tuple[float, float, float] = (0.0, 0.8, 1.6),
) -> np.ndarray:
    """Map a real-valued propensity to the 0/1/3/5 density levels.

    Default thresholds on the noisy propensity give a plausible abundance
    ladder: clearly negative propensity means absent, strongly positive
    means abundant. Taxa whose incidental occurrence is uninformative
    (Tubifex turns up in trace numbers in clean rivers too) use a wider
    gap between the "incidental" and "frequent" thresholds.
    """
    noisy = score + 0.45 * rng.standard_normal(score.shape[0])
    levels = np.zeros(score.shape[0])
    levels[noisy >= thresholds[0]] = 1.0
    levels[noisy >= thresholds[1]] = 3.0
    levels[noisy >= thresholds[2]] = 5.0
    return levels


def make_water(
    seed: int | np.random.Generator = 0,
    *,
    n_rows: int = 1060,
) -> Dataset:
    """Generate the river water-quality stand-in.

    Returns a dataset with 14 ordinal bioindicator attributes (levels
    0/1/3/5) and 16 numeric chemistry targets. Metadata carries the
    latent ``pollution`` score for ground-truth tests.
    """
    rng = as_rng(seed)
    # Latent pollution, standard normal across sites. The planted top
    # subgroup (clean taxon absent AND tolerant taxon frequent+) catches
    # the upper tail, ~8-9% of sites.
    z = rng.standard_normal(n_rows)
    # Sharply thresholded response: only heavily polluted sites (the upper
    # ~10% tail of z) carry a chemistry signature. A gradual ramp here
    # would reward loosening the taxon thresholds (catching the middle of
    # the gradient), whereas the paper's top pattern sits at the strict
    # levels "gammarus absent AND tubifex frequent-or-abundant".
    pollution = 1.0 / (1.0 + np.exp(-3.2 * (z - 1.15)))  # in (0, 1)

    # Gammarus fossarum and Tubifex are the sharpest indicators (their
    # conjunction is the paper's top pattern); the other taxa respond to
    # pollution too, but noisily enough that no single-taxon condition
    # isolates the polluted sites as precisely as that pair.
    columns = []
    for name, response in TAXA:
        thresholds = (0.0, 0.8, 1.6)
        if name == "amphipoda_gammarus_fossarum":
            score = 1.35 - 1.3 * z + 0.7 * rng.standard_normal(n_rows)
        elif name == "oligochaeta_tubifex":
            # Incidental Tubifex occurs in half the rivers regardless of
            # pollution; only "frequent or abundant" (level >= 3) marks
            # the polluted tail. Hence the wide 0 -> 3 threshold gap.
            score = -0.2 + 1.9 * z + 0.65 * rng.standard_normal(n_rows)
            thresholds = (0.0, 1.9, 3.1)
        elif response == "clean":
            score = 1.1 - 0.8 * z + 0.75 * rng.standard_normal(n_rows)
        elif response == "tolerant":
            score = -0.6 + 0.8 * z + 0.75 * rng.standard_normal(n_rows)
        else:  # neutral: weak, mixed-sign relation
            score = 0.6 + 0.25 * z * rng.choice((-1.0, 1.0)) + 0.8 * rng.standard_normal(n_rows)
        columns.append(
            Column(name, AttributeKind.ORDINAL, _ordinal_from_score(score, rng, thresholds))
        )

    shared = rng.standard_normal(n_rows)  # heteroscedastic common factor
    eps = {name: rng.standard_normal(n_rows) for name in TARGETS}

    targets = {
        "std_temp": 10.5 + 2.8 * eps["std_temp"],
        "std_ph": 8.0 + 0.35 * eps["std_ph"] - 0.3 * pollution,
        "conduct": 3.2 + 3.4 * pollution + 0.8 * eps["conduct"],
        "o2": 10.5 - 5.2 * pollution + 0.9 * eps["o2"],
        "o2sat": 95.0 - 38.0 * pollution + 7.0 * eps["o2sat"],
        "co2": 2.0 + 3.0 * pollution + 0.8 * eps["co2"],
        "hardness": 14.0 + 2.0 * eps["hardness"] + 1.5 * pollution,
        "no2": 0.08 + 0.30 * pollution + 0.05 * eps["no2"],
        "no3": 6.0 + 5.0 * pollution + 1.6 * eps["no3"],
        "nh4": 0.3 + 2.2 * pollution + 0.25 * eps["nh4"],
        "po4": 0.25 + 1.1 * pollution + 0.18 * eps["po4"],
        "cl": 6.0 + 13.0 * pollution + 2.2 * eps["cl"],
        "sio2": 5.5 + 1.6 * eps["sio2"],
        "kmno4": 3.5 + 9.0 * pollution
        + (0.7 + SPREAD_LOADINGS["kmno4"] * pollution) * eps["kmno4"]
        + SPREAD_LOADINGS["kmno4"] * pollution * shared,
        "k2cr2o7": 9.0 + 14.0 * pollution + (1.5 + 2.0 * pollution) * eps["k2cr2o7"],
        "bod": 2.0 + 5.5 * pollution
        + (0.45 + SPREAD_LOADINGS["bod"] * pollution) * eps["bod"]
        + SPREAD_LOADINGS["bod"] * pollution * shared,
    }
    matrix = np.stack([targets[name] for name in TARGETS], axis=1)

    metadata = {
        "pollution": pollution,
        "latent": z,
        "spread_loadings": dict(SPREAD_LOADINGS),
    }
    return Dataset("water", columns, matrix, list(TARGETS), metadata)
