"""BeliefStore: on-disk belief-prefix entries, bit-identical round trips.

Entries come from a *real* miner run (not hand-built fixtures), so the
encode/decode pair is exercised against everything the search actually
puts in a :class:`~repro.engine.cache.CachedStep` — float scores, int
index arrays, nested constraints, RNG state.
"""

import pickle

import numpy as np
import pytest

from repro.datasets import make_synthetic
from repro.engine.cache import BeliefCache
from repro.engine.executor import SerialExecutor
from repro.errors import EngineError
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.store import BeliefStore, BeliefStoreHandle

CONFIG = SearchConfig(beam_width=8, max_depth=2, top_k=10)


@pytest.fixture(scope="module")
def warm_cache():
    """An in-memory cache warmed by a 2-iteration spread mine."""
    cache = BeliefCache()
    miner = SubgroupDiscovery(
        make_synthetic(0),
        config=CONFIG,
        seed=0,
        executor=SerialExecutor(),
        belief_cache=cache,
    )
    miner.run(2, kind="spread")
    return cache


def _entries(cache):
    # The cache's in-memory LRU maps chain-hash key -> CachedStep.
    return dict(cache._entries._data)


def _assert_steps_identical(a, b):
    assert a.iteration.index == b.iteration.index
    assert a.iteration.location.description == b.iteration.location.description
    assert np.array_equal(a.iteration.location.indices, b.iteration.location.indices)
    assert a.iteration.location.indices.dtype == b.iteration.location.indices.dtype
    assert a.iteration.location.score.ic == b.iteration.location.score.ic
    assert a.iteration.location.score.dl == b.iteration.location.score.dl
    assert (a.iteration.spread is None) == (b.iteration.spread is None)
    if a.iteration.spread is not None:
        assert np.array_equal(
            a.iteration.spread.direction, b.iteration.spread.direction
        )
        assert a.iteration.spread.variance == b.iteration.spread.variance
    assert len(a.constraints) == len(b.constraints)
    for ca, cb in zip(a.constraints, b.constraints):
        assert type(ca) is type(cb)
        assert np.array_equal(ca.indices, cb.indices)
    assert a.rng_state == b.rng_state


class TestRoundTrip:
    def test_every_entry_is_bit_identical_from_disk(self, warm_cache, tmp_path):
        store = BeliefStore(tmp_path)
        entries = _entries(warm_cache)
        assert entries  # the mine must have cached something
        for key, step in entries.items():
            store.put(key, step)
        for key, step in entries.items():
            _assert_steps_identical(store.get(key), step)
        assert store.stats.stores == len(entries)
        assert store.stats.hits == len(entries)

    def test_arrays_come_back_as_memmaps(self, warm_cache, tmp_path):
        store = BeliefStore(tmp_path)
        key, step = next(iter(_entries(warm_cache).items()))
        store.put(key, step)
        loaded = store.get(key)
        # Decoded arrays are views over an np.memmap (no eager copy):
        # the file pages in lazily. Walk the base chain to find it.
        array = loaded.iteration.location.indices
        assert not array.flags.owndata
        base = array.base
        while base is not None and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)

    def test_put_is_idempotent(self, warm_cache, tmp_path):
        store = BeliefStore(tmp_path)
        key, step = next(iter(_entries(warm_cache).items()))
        store.put(key, step)
        store.put(key, step)  # same content-addressed file: skipped
        assert store.stats.stores == 1
        assert len(store) == 1

    def test_missing_key_is_a_counted_miss(self, tmp_path):
        store = BeliefStore(tmp_path)
        assert store.get("0" * 32) is None
        assert store.stats.misses == 1
        assert store.stats.errors == 0

    def test_corrupt_file_is_a_miss_not_a_crash(self, warm_cache, tmp_path):
        store = BeliefStore(tmp_path)
        key, step = next(iter(_entries(warm_cache).items()))
        store.put(key, step)
        path = store._path(key)
        path.write_bytes(b"garbage that is not a belief file")
        assert store.get(key) is None
        assert store.stats.errors == 1

    def test_rejects_traversal_keys(self, tmp_path):
        store = BeliefStore(tmp_path)
        with pytest.raises(EngineError):
            store.get("../../etc/passwd")


class TestHandle:
    def test_handle_pickles_and_resolves_to_spilled_cache(
        self, warm_cache, tmp_path
    ):
        store = BeliefStore(tmp_path)
        entries = _entries(warm_cache)
        for key, step in entries.items():
            store.put(key, step)
        handle = store.handle()
        clone = pickle.loads(pickle.dumps(handle))
        assert isinstance(clone, BeliefStoreHandle)
        cache = clone.resolve()
        key = next(iter(entries))
        assert cache.get(key) is not None

    def test_resolve_is_memoized_per_root(self, tmp_path):
        store = BeliefStore(tmp_path)
        assert store.handle().resolve() is store.handle().resolve()


class TestSpillThroughCache:
    def test_cold_cache_with_spill_serves_warm_entries(self, warm_cache, tmp_path):
        store = BeliefStore(tmp_path)
        for key, step in _entries(warm_cache).items():
            store.put(key, step)
        cold = BeliefCache(spill=BeliefStore(tmp_path))
        key = next(iter(_entries(warm_cache)))
        assert cold.get(key) is not None  # promoted from disk
        assert cold.get(key) is not None  # now an in-memory hit
