"""``RemoteWorkspace``: the Workspace API over the wire.

Local code drives the engine through :class:`repro.api.Workspace`; this
module gives the same verbs — ``mine`` / ``stream`` / ``submit`` /
``status`` / ``result`` / ``cancel`` — against a
:class:`repro.server.MiningServer` on the network, so moving a workload
from in-process to a shared mining server is a one-line change::

    from repro.client import RemoteWorkspace

    with RemoteWorkspace("http://mining-host:8765") as ws:
        for iteration in ws.stream(spec):      # live, over SSE
            print(iteration.location)
        result = ws.mine(spec)                 # submit + block

Everything rides the canonical JSON schemas of
:mod:`repro.server.wire`, whose float encoding round-trips exactly —
the engine's determinism contract therefore extends across the network:
``RemoteWorkspace.mine(spec)`` returns patterns and SI scores
bit-identical to ``Workspace().mine(spec)``. Streaming parses the
server's Server-Sent-Events feed; a dropped connection reconnects with
``Last-Event-ID``, and the sequence numbers make redelivery and gaps
detectable. Stdlib only (``http.client``), no extra dependencies.
"""

from __future__ import annotations

import gzip
import json
import socket
import time
from collections import OrderedDict
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from http.client import HTTPConnection
from typing import Iterator
from urllib.parse import urlsplit

from repro.engine.jobs import JobResult, MiningJob
from repro.engine.service import JobStatus
from repro.errors import (
    DataError,
    DeadlineExpired,
    EngineError,
    LanguageError,
    ModelError,
    ReproError,
    SearchError,
)
from repro.events import MiningObserver
from repro.persist import job_to_dict
from repro.search.results import MiningIteration
from repro.server import wire
from repro.spec import MiningSpec

__all__ = [
    "RemoteWorkspace",
    "RemoteError",
    "RemoteJobFailed",
    "ServerRestarted",
]

#: Per-job ``(etag, document)`` revalidation entries kept client-side.
_RESULT_CACHE_SIZE = 32


class RemoteError(EngineError):
    """The server answered with an error document."""

    def __init__(self, message: str, *, status: int = 0, remote_type: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.remote_type = remote_type


class RemoteJobFailed(RemoteError):
    """A remote job raised; carries the server-side exception's name."""


class ServerRestarted(RemoteError):
    """The event stream's generation changed: the server restarted.

    Every SSE frame carries the server's stream generation (a per-boot
    marker). When it changes mid-feed, the server the client is now
    talking to has a *fresh* sequence space and replay history, so a
    ``Last-Event-ID`` resume would silently misalign. :meth:`~
    RemoteWorkspace.events` raises this instead; :meth:`~
    RemoteWorkspace.stream` catches it and re-anchors against the new
    generation (a durable server recovers the job from its store).
    """

    def __init__(
        self,
        message: str,
        *,
        old_generation: str | None = None,
        new_generation: str | None = None,
    ) -> None:
        super().__init__(message)
        self.old_generation = old_generation
        self.new_generation = new_generation


#: Remote exception names mapped back onto local types, so error
#: handling code works unchanged against a RemoteWorkspace.
_ERROR_TYPES: dict[str, type] = {
    "DeadlineExpired": DeadlineExpired,
    "EngineError": EngineError,
    "SearchError": SearchError,
    "DataError": DataError,
    "LanguageError": LanguageError,
    "ModelError": ModelError,
    "ReproError": ReproError,
}

#: One long-poll leg of ``result()``; the client loops for longer waits.
_WAIT_CHUNK = 25.0


def _raise_remote(error: dict, *, status: int = 0, job: bool = False) -> None:
    """Re-raise a wire error document as the closest local exception."""
    remote_type = str(error.get("type", "Error"))
    message = str(error.get("message", "remote error"))
    if remote_type == "CancelledError":
        raise CancelledError(message)
    exc_type = _ERROR_TYPES.get(remote_type)
    if exc_type is not None and not job:
        raise exc_type(message)
    if exc_type is DeadlineExpired:
        raise DeadlineExpired(message)
    raise RemoteJobFailed(
        f"{remote_type}: {message}", status=status, remote_type=remote_type
    )


class _SSEStream:
    """One open ``/events`` connection, parsed frame by frame."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        since: int | None,
        timeout: float,
        job_id: str | None = None,
        token: str | None = None,
    ):
        self._conn = HTTPConnection(host, port, timeout=timeout)
        headers = {"Accept": "text/event-stream"}
        if token is not None:
            headers["Authorization"] = f"Bearer {token}"
        if since is not None:
            headers["Last-Event-ID"] = str(since)
        path = "/events" if job_id is None else f"/events?job_id={job_id}"
        self._conn.request("GET", path, headers=headers)
        self._response = self._conn.getresponse()
        if self._response.status != 200:
            body = self._response.read()
            self.close()
            raise RemoteError(
                f"event stream refused: HTTP {self._response.status} "
                f"{body[:200]!r}",
                status=self._response.status,
            )

    def frames(self) -> Iterator["tuple[int, dict] | None"]:
        """Yield ``(seq, event_document)`` pairs until the stream ends.

        Comment frames (the server's idle heartbeats) surface as bare
        ``None`` entries so callers can run liveness checks on a quiet
        stream instead of blocking until the next real event.
        """
        seq = 0
        data_lines: list[str] = []
        for raw in self._response:
            line = raw.decode("utf-8").rstrip("\r\n")
            if line == "":
                if data_lines:
                    document = json.loads("\n".join(data_lines))
                    data_lines = []
                    yield seq, document
                continue
            if line.startswith(":"):
                yield None  # heartbeat / comment
                continue
            field, _, value = line.partition(":")
            value = value.lstrip(" ")
            if field == "id":
                try:
                    seq = int(value)
                except ValueError:
                    pass
            elif field == "data":
                data_lines.append(value)
            # "event:" duplicates the document's "type"; ignored here.

    def close(self) -> None:
        try:
            self._conn.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass


class RemoteWorkspace:
    """The Workspace verbs, spoken over HTTP to a mining server.

    Parameters
    ----------
    url:
        Server base URL, e.g. ``"http://127.0.0.1:8765"`` (a bare
        ``host:port`` is accepted).
    timeout:
        Socket timeout per request, seconds. Long waits (``result`` with
        no deadline, ``stream``) are composed out of bounded legs, so
        they are not limited by it.
    token:
        Bearer credential sent as ``Authorization: Bearer <token>`` on
        every request (including the SSE feed). Required when the
        server was started with a tenant registry (``auth=``); a
        missing or unknown token surfaces as a 401 :class:`RemoteError`.

    Specs may be :class:`~repro.spec.MiningSpec` instances, their JSON
    dict form, or raw :class:`~repro.engine.jobs.MiningJob` objects —
    the same flexibility :class:`repro.api.Workspace` offers, validated
    locally before anything is sent.

    Responses negotiate the wire: result documents are fetched with
    ``Accept-Encoding: gzip`` (decompressed transparently) and
    revalidated with ``If-None-Match``, so re-reading a finished job's
    megabyte result costs a 304 and zero body bytes.
    """

    def __init__(
        self,
        url: str = "http://127.0.0.1:8765",
        *,
        timeout: float = 60.0,
        token: str | None = None,
    ):
        if "//" not in url:
            url = "http://" + url
        split = urlsplit(url)
        if split.scheme not in ("", "http"):
            raise EngineError(
                f"RemoteWorkspace speaks plain http, got {split.scheme!r}"
            )
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 8765
        self.timeout = timeout
        self.token = token
        #: job_id -> (etag, result document); bounded LRU.
        self._result_cache: OrderedDict[str, tuple[str, dict]] = OrderedDict()
        #: Wire-level savings counters (observable in tests and tooling).
        self.wire_stats = {"revalidated": 0, "gzip_responses": 0}

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    def _exchange(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        extra_headers: dict | None = None,
    ) -> tuple[int, dict, dict]:
        """One round trip: returns (status, document, response headers).

        Transparently decompresses gzip response bodies. A 304 returns
        an empty document — only requests that sent ``If-None-Match``
        (which means the caller holds the cached body) can see one.
        """
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {
                "Accept": "application/json",
                "Accept-Encoding": "gzip",
            }
            if self.token is not None:
                headers["Authorization"] = f"Bearer {self.token}"
            if extra_headers:
                headers.update(extra_headers)
            if body is not None:
                payload = json.dumps(body, allow_nan=False).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            status = response.status
            response_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise RemoteError(
                f"cannot reach mining server at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()
        if response_headers.get("content-encoding", "").lower() == "gzip":
            try:
                raw = gzip.decompress(raw)
            except OSError as exc:
                raise RemoteError(
                    f"bad gzip response body (HTTP {status}): {exc}",
                    status=status,
                ) from exc
            self.wire_stats["gzip_responses"] += 1
        try:
            document = json.loads(raw) if raw else {}
        except ValueError as exc:
            raise RemoteError(
                f"non-JSON response (HTTP {status}): {raw[:200]!r}", status=status
            ) from exc
        if status >= 400:
            error = document.get("error", {})
            raise RemoteError(
                f"{error.get('type', 'HttpError')}: "
                f"{error.get('message', f'HTTP {status}')}",
                status=status,
                remote_type=str(error.get("type", "")),
            )
        return status, document, response_headers

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        status, document, _ = self._exchange(method, path, body)
        return status, document

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    @staticmethod
    def _submission_body(spec) -> dict:
        """Validate locally, then wrap in the canonical submit envelope."""
        if isinstance(spec, MiningJob):
            return {"job": job_to_dict(spec)}
        if isinstance(spec, dict):
            spec = MiningSpec.from_dict(spec)
        if not isinstance(spec, MiningSpec):
            raise EngineError(
                f"expected MiningSpec, spec dict, or MiningJob, "
                f"got {type(spec).__name__}"
            )
        return {"spec": spec.to_dict()}

    def submit(self, spec: MiningSpec | dict | MiningJob) -> str:
        """Queue a spec on the server; returns the remote job id."""
        _, document = self._request("POST", "/jobs", self._submission_body(spec))
        return document["job_id"]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def status(self, job_id: str) -> JobStatus:
        """Lifecycle state of a submitted spec."""
        _, document = self._request("GET", f"/jobs/{job_id}")
        return JobStatus(document["status"])

    def jobs(self) -> dict[str, JobStatus]:
        """Snapshot of every server-side job's status, by id."""
        _, document = self._request("GET", "/jobs")
        return {
            entry["job_id"]: JobStatus(entry["status"])
            for entry in document["jobs"]
        }

    def health(self) -> dict:
        """The server's health/statistics document."""
        _, document = self._request("GET", "/health")
        return document

    def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until the job finishes; returns its decoded result.

        Mirrors :meth:`repro.engine.service.MiningService.result`:
        re-raises the failure for failed jobs
        (:class:`RemoteJobFailed`), ``CancelledError`` after a cancel,
        :class:`~repro.errors.DeadlineExpired` after expiry, and
        ``concurrent.futures.TimeoutError`` when ``timeout`` elapses
        first.
        """
        give_up_at = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = _WAIT_CHUNK
            if give_up_at is not None:
                wait = min(wait, max(give_up_at - time.monotonic(), 0.0))
            cached = self._result_cache.get(job_id)
            try:
                status, document, response_headers = self._exchange(
                    "GET",
                    f"/jobs/{job_id}/result?wait={wait:g}",
                    extra_headers=(
                        {"If-None-Match": cached[0]} if cached is not None else None
                    ),
                )
            except RemoteError as exc:
                # 503 is a routed deployment saying "the replica holding
                # this job is down, retry shortly" (the router's
                # Retry-After). The job itself is durable on the replica,
                # so within the caller's deadline, waiting it out is the
                # transparent thing to do.
                if exc.status != 503:
                    raise
                if give_up_at is not None and time.monotonic() >= give_up_at:
                    raise
                time.sleep(1.0)
                continue
            if status == 304 and cached is not None:
                # Revalidated: the server's result is byte-identical to
                # the cached document (the ETag is content-hashed, so
                # this holds across server restarts too).
                self.wire_stats["revalidated"] += 1
                document = cached[1]
            else:
                etag = response_headers.get("etag")
                if etag and document.get("status") == "done":
                    self._result_cache[job_id] = (etag, document)
                    self._result_cache.move_to_end(job_id)
                    while len(self._result_cache) > _RESULT_CACHE_SIZE:
                        self._result_cache.popitem(last=False)
            job_status = document.get("status")
            if job_status == "done":
                return wire.job_result_from_wire(document["result"])
            if job_status in ("failed", "cancelled", "expired"):
                _raise_remote(
                    document.get("error", {}), status=status, job=True
                )
            if give_up_at is not None and time.monotonic() >= give_up_at:
                raise FuturesTimeoutError(
                    f"job {job_id} still {job_status} after {timeout:g}s"
                )

    def cancel(self, job_id: str) -> bool:
        """Cancel a not-yet-started job; True on success."""
        _, document = self._request("POST", f"/jobs/{job_id}/cancel")
        return bool(document["cancelled"])

    # ------------------------------------------------------------------ #
    # Workspace-shaped execution
    # ------------------------------------------------------------------ #
    def mine(self, spec: MiningSpec | dict | MiningJob) -> JobResult:
        """Submit and block: the remote twin of ``Workspace.mine``."""
        return self.result(self.submit(spec))

    def events(
        self,
        *,
        since: int | None = None,
        reconnect: bool = True,
        heartbeats: bool = False,
        job_id: str | None = None,
        generation: str | None = None,
    ) -> Iterator[wire.RemoteEvent]:
        """The server's live event feed as decoded :class:`RemoteEvent`s.

        Resumes with ``Last-Event-ID`` after a dropped connection while
        ``reconnect`` is true (already-seen sequence numbers are
        filtered out); ends when the server shuts the stream down and
        reconnection is off, or the server is gone — a reconnect the
        server refuses ends the feed rather than raising. With
        ``heartbeats`` on, the server's idle comment frames surface as
        ``type="heartbeat"`` events (empty payload), so consumers can
        run periodic liveness checks on a quiet stream. ``job_id``
        filters *server-side*: only that job's events cross the wire
        (sequence numbers then legitimately skip — they are global).

        Every frame carries the server's stream generation. The feed
        pins itself to the first generation it sees (or to
        ``generation``, e.g. from a submit response) and raises
        :class:`ServerRestarted` the moment a frame disagrees —
        sequence numbers from a restarted server live in a fresh space,
        so resuming across the boundary would misalign silently. The
        check runs *before* the already-seen filter: after a restart,
        even old-looking sequence numbers are new events.
        """
        last_seen = since if since is not None else None
        first_connection = True
        while True:
            try:
                stream = _SSEStream(
                    self.host,
                    self.port,
                    since=last_seen,
                    timeout=self.timeout,
                    job_id=job_id,
                    token=self.token,
                )
            except (ConnectionError, socket.timeout, OSError) as exc:
                if first_connection:
                    raise RemoteError(
                        f"cannot reach mining server at "
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc
                return  # the server went away after a drop: end the feed
            first_connection = False
            dropped = False
            try:
                for entry in stream.frames():
                    if entry is None:  # heartbeat comment
                        if heartbeats:
                            yield wire.RemoteEvent(
                                type="heartbeat",
                                job_id=None,
                                data=None,
                                seq=last_seen or 0,
                            )
                        continue
                    seq, document = entry
                    gen = document.get("gen")
                    if gen is not None:
                        if generation is None:
                            generation = str(gen)
                        elif str(gen) != generation:
                            raise ServerRestarted(
                                f"event stream generation changed from "
                                f"{generation!r} to {gen!r}: the server "
                                f"restarted and its sequence numbers "
                                f"reset; re-anchor the subscription",
                                old_generation=generation,
                                new_generation=str(gen),
                            )
                    if last_seen is not None and seq <= last_seen:
                        continue  # redelivery after resume
                    last_seen = seq
                    yield wire.event_from_wire(document, seq=seq)
            except (ConnectionError, socket.timeout, OSError):
                dropped = True
            finally:
                stream.close()
            if not (reconnect and dropped):
                return
            # ``last_seen`` resumes the stream where it broke.

    def stream(
        self,
        spec: MiningSpec | dict | MiningJob,
        *,
        observer: MiningObserver | None = None,
    ) -> Iterator[MiningIteration]:
        """Submit and yield each iteration live: the remote ``stream``.

        Anchors the feed at the server's current sequence number before
        submitting (events in the submit window are replayed from the
        retained history — no window to miss events), subscribes with a
        server-side filter for this job only, yields its iteration
        events as they arrive, and finishes on its terminal event.
        Because results are canonical on the wire, the yielded
        iterations are bit-identical
        to a local ``Workspace.stream`` of the same spec. If the
        slow-consumer policy dropped an iteration mid-stream, the gap is
        healed from the terminal result document, so the caller always
        sees every iteration exactly once, in order. An optional
        ``observer`` additionally receives every decoded event of this
        job (candidates and scheduling decisions included).

        Survives a server restart mid-stream: when the feed raises
        :class:`ServerRestarted`, the job's state is re-read from the
        (restarted, durable) server — a recovered terminal job heals
        the remaining iterations from its stored result; a re-enqueued
        job is re-subscribed in the fresh sequence space, with the
        per-iteration index dedupe skipping what was already yielded.
        """
        body = self._submission_body(spec)
        _, document = self._request("POST", "/jobs", body)
        job_id = document["job_id"]
        # The submit response carries the stream position sampled just
        # before the job was accepted, so subscribing with it replays
        # every event of this job from the server's retained history —
        # no missed-event window, no extra anchoring round trip. (An
        # older server without the field: fall back to one health read;
        # its anchor is later than the submit, but the terminal-result
        # healing still completes the stream.)
        since = document.get("since")
        if since is None:
            since = int(self.health()["events"]["published"])
        anchor = int(since)
        generation = document.get("gen")
        generation = None if generation is None else str(generation)
        yielded = 0
        while True:
            feed = self.events(
                since=anchor,
                reconnect=True,
                heartbeats=True,
                job_id=job_id,
                generation=generation,
            )
            restarted: ServerRestarted | None = None
            try:
                for event in feed:
                    # The slow-consumer policy may still drop events of
                    # *this* job, and a dropped terminal event would hang
                    # this loop forever — so on idle heartbeats (at most one
                    # heartbeat interval after the drop) ask the server for
                    # the job's state and heal from the result document.
                    if event.type == "heartbeat":
                        terminal = self._terminal_result(job_id)
                        if terminal is not None:
                            for iteration in terminal.iterations[yielded:]:
                                _observe_healed(observer, iteration)
                                yield iteration
                            _observe_terminal(observer, terminal)
                            return
                        continue
                    if event.job_id != job_id:
                        continue  # defensive: an unfiltered/older server
                    if observer is not None:
                        _deliver(observer, event)
                    if event.type == "iteration":
                        if event.data.index == yielded + 1:
                            yielded += 1
                            yield event.data
                    elif event.type == "job":
                        # The job event itself already reached the observer
                        # via _deliver (on_job); healed iterations that never
                        # arrived as events still get their on_iteration.
                        for iteration in event.data.iterations[yielded:]:
                            _observe_healed(observer, iteration)
                            yield iteration
                        return
                    elif event.type == "job_failed":
                        _raise_remote(event.data["error"], job=True)
                    elif event.type == "schedule":
                        if event.data.kind == "cancelled":
                            raise CancelledError(
                                f"job {job_id} was cancelled ({event.data.detail})"
                            )
                        if event.data.kind == "expired":
                            raise DeadlineExpired(
                                f"job {job_id} expired ({event.data.detail})"
                            )
                raise RemoteError(
                    f"event stream ended before job {job_id} finished"
                )
            except ServerRestarted as exc:
                restarted = exc
            finally:
                feed.close()
            # Re-anchor against the restarted server. A durable server
            # recovered the job from its store: terminal → heal the
            # tail from the stored result (bit-identical); re-enqueued →
            # subscribe afresh from the new history's origin (seq 0) and
            # let the index dedupe skip the iterations already yielded
            # (the belief cache replays them server-side for free).
            generation = restarted.new_generation
            terminal = self._terminal_result(job_id)
            if terminal is not None:
                for iteration in terminal.iterations[yielded:]:
                    _observe_healed(observer, iteration)
                    yield iteration
                _observe_terminal(observer, terminal)
                return
            anchor = 0

    def _terminal_result(self, job_id: str) -> JobResult | None:
        """The job's result if it already ended; ``None`` while it runs.

        Raises exactly what :meth:`result` would for the non-``done``
        terminal states (failed / cancelled / expired), so the healing
        paths of :meth:`stream` surface the same exceptions as the
        event-driven path.
        """
        try:
            status = self.status(job_id)
        except RemoteError as exc:
            if exc.status == 503:
                # A routed deployment's replica is bouncing; report "still
                # running" so the stream's healing loop just checks again
                # on its next heartbeat instead of dying mid-restart.
                return None
            raise
        if status in (JobStatus.PENDING, JobStatus.RUNNING):
            return None
        return self.result(job_id, timeout=30.0)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Connections are per-call; nothing persistent to release."""

    def __enter__(self) -> "RemoteWorkspace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _observe_healed(observer: MiningObserver | None, iteration) -> None:
    """on_iteration for an iteration recovered from the result document."""
    if observer is None:
        return
    try:
        observer.on_iteration(iteration)
    except Exception:
        pass  # observers must not break the stream (engine contract)


def _observe_terminal(observer: MiningObserver | None, result) -> None:
    """on_job for a completion learned by polling, not from an event."""
    if observer is None:
        return
    try:
        observer.on_job(result)
    except Exception:
        pass  # observers must not break the stream (engine contract)


def _deliver(observer: MiningObserver, event: wire.RemoteEvent) -> None:
    """Forward one decoded event onto a local observer (best-effort)."""
    try:
        if event.type == "iteration":
            observer.on_iteration(event.data)
        elif event.type == "candidate":
            # The wire form is the render-ready summary dict (see
            # repro.server.wire.candidate_to_wire), not a ScoredSubgroup.
            observer.on_candidate(event.data)
        elif event.type == "job":
            observer.on_job(event.data)
        elif event.type == "schedule":
            observer.on_schedule(event.data)
        elif event.type == "job_failed":
            observer.on_job_failed(
                event.data["job"],
                RemoteJobFailed(
                    f"{event.data['error'].get('type')}: "
                    f"{event.data['error'].get('message')}"
                ),
            )
    except Exception:
        pass  # observers must not break the stream (engine contract)
