"""Executor backends: the *how* of parallel mining (engine layer).

The search algorithms never talk to ``concurrent.futures`` directly;
they describe their fan-out as ``executor.session(context)`` followed by
``session.map(fn, items)`` and merge the ordered results themselves.
Two backends implement that contract:

- :class:`SerialExecutor` runs everything inline, in order — the
  reference semantics every other backend must reproduce bit-for-bit.
- :class:`ProcessExecutor` runs a ``concurrent.futures`` process pool.
  In the default (copying) transport the context — an IC scorer, a
  spread objective — is shipped to each worker once per session via the
  pool initializer. With ``shared_memory=True`` the executor keeps one
  *persistent* warm pool across sessions and ships contexts through
  :mod:`repro.engine.shm`: large arrays live in
  ``multiprocessing.shared_memory`` and workers reattach them zero-copy,
  so a repeated ``session()`` (one per beam level / mining iteration)
  costs a handle, not a re-pickle and a pool respawn.

Determinism contract: ``session.map`` preserves item order, items are
sharded by the *caller* independently of the worker count, and ``fn``
must be a pure function of ``(context, item)``. Under those rules a
parallel run returns exactly the serial result regardless of scheduling
or transport.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import uuid
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.engine import shm
from repro.errors import EngineError

#: Pool implementations selectable via :func:`resolve_pool` (and hence
#: ``MiningService(backend=...)``).
BACKENDS = ("process", "thread", "serial")

#: Context installed in each pool worker by :func:`_init_worker`
#: (copying transport only).
_WORKER_CONTEXT: Any = None

#: Per-worker cache of shared-memory session contexts, keyed by session
#: id. A worker outliving many sessions (the whole point of the
#: persistent pool) keeps only the sessions it is actively serving:
#: stale entries are dropped the moment a new session's first task
#: arrives, so dead sessions' zero-copy views never pin their (already
#: unlinked) segments in memory.
_SESSION_CONTEXTS: "OrderedDict[str, Any]" = OrderedDict()

#: Cache-miss sentinel (``None`` is a legitimate context).
_MISS = object()


def _init_worker(payload: bytes) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = pickle.loads(payload)


def _call_in_context(fn: Callable[[Any, Any], Any], item: Any) -> Any:
    return fn(_WORKER_CONTEXT, item)


def _shared_call(payload: tuple) -> Any:
    """Worker entry point of the shared-memory transport.

    The per-task payload is tiny: a session id, a
    :class:`~repro.engine.shm.SharedBytesRef` to the pickled (stripped)
    context, the function, and the item. A warm worker that already
    holds the session's context skips the read entirely; a cold one
    reads the pickle out of shared memory once — its arrays reattach as
    zero-copy views while unpickling.
    """
    session_id, context_ref, fn, item = payload
    context = _SESSION_CONTEXTS.get(session_id, _MISS)
    if context is _MISS:
        # A new session supersedes the old ones: drop their contexts
        # (freeing the array views) and close the now-view-less segment
        # mappings so a warm worker's resident memory tracks the active
        # session, not its whole history.
        _SESSION_CONTEXTS.clear()
        shm.prune_attachments()
        context = pickle.loads(context_ref.load())
        _SESSION_CONTEXTS[session_id] = context
    return fn(context, item)


def _shutdown_pool(pool) -> None:
    """Finalizer target: stop a pool without waiting on pending work."""
    pool.shutdown(wait=False, cancel_futures=True)


@runtime_checkable
class ExecutorSession(Protocol):
    """One fan-out scope sharing a single context (e.g. one beam run)."""

    def map(self, fn: Callable[[Any, Any], Any], items: Iterable[Any]) -> list:
        """``[fn(context, item) for item in items]``, order-preserving."""
        ...

    def __enter__(self) -> "ExecutorSession": ...

    def __exit__(self, *exc_info) -> None: ...


@runtime_checkable
class Executor(Protocol):
    """The injection point the search algorithms and job runner share."""

    parallelism: int

    def session(self, context: Any = None) -> ExecutorSession:
        """Open a fan-out scope whose tasks all see ``context``."""
        ...

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Context-free ordered map, for independent coarse tasks (jobs)."""
        ...

    def close(self) -> None:
        """Release held resources (idempotent; no-op for serial)."""
        ...


class _SerialSession:
    #: Callers may batch payloads differently when arrays are shared;
    #: the serial session always takes the copying (reference) path.
    uses_shared_arrays = False

    def __init__(self, context: Any) -> None:
        self._context = context

    def map(self, fn, items) -> list:
        return [fn(self._context, item) for item in items]

    def close(self) -> None:
        """Nothing to release; present for session-interface symmetry."""

    def __enter__(self) -> "_SerialSession":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


class SerialExecutor:
    """In-process, in-order execution: the reference backend."""

    parallelism = 1

    def session(self, context: Any = None) -> _SerialSession:
        """Open an inline session; ``map`` calls ``fn(context, item)``."""
        return _SerialSession(context)

    def map(self, fn, items) -> list:
        """``[fn(item) for item in items]``."""
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release; present for executor-interface symmetry."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class _ProcessSession:
    """Copying-transport session: owns a fresh pool initialized with the
    pickled context, and shuts it down deterministically.

    The pool is released on ``__exit__``, on an explicit :meth:`close`,
    when any ``map`` raises (a failed fan-out must not leave worker
    processes running), and — as a last resort — by a GC finalizer, so a
    session that was never used as a context manager cannot leak its
    pool.
    """

    uses_shared_arrays = False

    def __init__(self, pool: ProcessPoolExecutor) -> None:
        self._pool = pool
        self._finalizer = weakref.finalize(self, _shutdown_pool, pool)

    def map(self, fn, items) -> list:
        if not self._finalizer.alive:
            raise EngineError("executor session is closed")
        try:
            return list(self._pool.map(partial(_call_in_context, fn), list(items)))
        except BaseException:
            # A raising worker must not leave the pool running behind a
            # caller that (reasonably) stops using the session.
            self.close()
            raise

    def close(self) -> None:
        """Shut the session's pool down; idempotent."""
        if self._finalizer.detach() is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "_ProcessSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _SharedMemorySession:
    """Shared-memory-transport session over a persistent warm pool.

    The context is published once into shared memory
    (:func:`repro.engine.shm.publish`): its large arrays become segments
    workers map zero-copy, and the remaining skeleton is pickled into a
    segment of its own. Each task then carries only ``(session id,
    context handle, fn, item)``; warm workers that already cached this
    session's context pay nothing at all.

    Closing the session unlinks every segment it created (including the
    ones callers registered through :meth:`share`) but leaves the pool
    running for the executor's next session — that reuse is the point.
    A GC finalizer guarantees the segments are unlinked even when the
    session is abandoned mid-failure.
    """

    uses_shared_arrays = True

    def __init__(self, owner: "ProcessExecutor", context: Any) -> None:
        self._owner = owner
        self._pool = owner._ensure_pool()
        self._store = shm.ArrayStore()
        self._finalizer = weakref.finalize(self, shm.ArrayStore.close, self._store)
        self._session_id = uuid.uuid4().hex
        stripped = shm.publish(context, self._store)
        payload = pickle.dumps(stripped, protocol=pickle.HIGHEST_PROTOCOL)
        #: Bytes actually pickled per session after array extraction —
        #: the number the shared-memory transport exists to shrink.
        self.context_payload_bytes = len(payload)
        self._context_ref = self._store.share_bytes(payload)

    def map(self, fn, items) -> list:
        if not self._finalizer.alive:
            raise EngineError("executor session is closed")
        payloads = [
            (self._session_id, self._context_ref, fn, item) for item in items
        ]
        try:
            return list(self._pool.map(_shared_call, payloads))
        except BrokenProcessPool:
            # A dead worker poisons the whole pool; drop it so the next
            # session gets a fresh one, and release our segments now.
            self._owner._discard_pool(self._pool)
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # Caller-side array sharing (per-level payloads)
    # ------------------------------------------------------------------ #
    def share(self, array) -> shm.SharedArrayRef:
        """Put one array (e.g. a level's mask stack) in shared memory.

        The ref pickles into a read-only zero-copy view inside workers;
        it is unlinked at session close, or earlier via :meth:`release`.
        """
        return self._store.share_array(array)

    def release(self, ref: shm.SharedArrayRef) -> None:
        """Unlink one shared array before the session ends."""
        self._store.release(ref)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Unlink this session's segments (the pool stays warm)."""
        if self._finalizer.detach() is not None:
            self._store.close()

    def __enter__(self) -> "_SharedMemorySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProcessExecutor:
    """Fan-out over a ``concurrent.futures`` process pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count.
    start_method:
        ``multiprocessing`` start method (``fork``/``spawn``/
        ``forkserver``); ``None`` uses the platform default.
    shared_memory:
        ``True`` switches the context transport to
        :mod:`repro.engine.shm` and keeps one persistent warm pool
        across sessions: repeated ``session()`` calls reuse the same
        worker processes and ship only lightweight handles, instead of
        respawning a pool and re-pickling the whole context each time.
        Results are bit-identical either way (the determinism contract);
        the toggle only changes how fast the bytes move.

    Functions passed to :meth:`map`/``session().map`` must be importable
    module-level callables and all payloads must pickle — the standard
    ``concurrent.futures`` rules. The executor itself is a context
    manager; :meth:`close` (or GC) releases the persistent pool.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        start_method: str | None = None,
        shared_memory: bool = False,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        self.parallelism = max_workers
        self.shared_memory = bool(shared_memory)
        self._mp_context = (
            multiprocessing.get_context(start_method) if start_method else None
        )
        self._persistent: ProcessPoolExecutor | None = None
        self._pool_finalizer: weakref.finalize | None = None

    # ------------------------------------------------------------------ #
    # Pool plumbing
    # ------------------------------------------------------------------ #
    def _fresh_pool(self, context: Any) -> ProcessPoolExecutor:
        """A per-session pool with the context shipped via initializer."""
        return ProcessPoolExecutor(
            max_workers=self.parallelism,
            mp_context=self._mp_context,
            initializer=_init_worker,
            initargs=(pickle.dumps(context),),
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent pool, (re)created on first use or after a break."""
        if self._persistent is None:
            pool = ProcessPoolExecutor(
                max_workers=self.parallelism, mp_context=self._mp_context
            )
            self._persistent = pool
            self._pool_finalizer = weakref.finalize(self, _shutdown_pool, pool)
        return self._persistent

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop a broken persistent pool so the next session respawns."""
        if self._persistent is pool:
            self._persistent = None
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------ #
    # Executor interface
    # ------------------------------------------------------------------ #
    def session(self, context: Any = None):
        """Open a fan-out scope whose workers all hold ``context``.

        Copying transport: a fresh pool per session, closed with the
        session. Shared-memory transport: the persistent warm pool, with
        the context published through :mod:`repro.engine.shm`; closing
        the session unlinks its segments and keeps the pool.
        """
        if self.shared_memory:
            return _SharedMemorySession(self, context)
        return _ProcessSession(self._fresh_pool(context))

    def map(self, fn, items) -> list:
        """Ordered context-free map (reuses the warm pool when shared)."""
        if self.shared_memory:
            pool = self._ensure_pool()
            try:
                return list(pool.map(fn, list(items)))
            except BrokenProcessPool:
                self._discard_pool(pool)
                raise
        with ProcessPoolExecutor(
            max_workers=self.parallelism, mp_context=self._mp_context
        ) as pool:
            return list(pool.map(fn, list(items)))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the persistent pool (no-op without one); idempotent."""
        pool, self._persistent = self._persistent, None
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessExecutor(max_workers={self.parallelism}, "
            f"shared_memory={self.shared_memory})"
        )


def normalize_workers(workers: int | None) -> int:
    """Validate a worker count; ``None`` and ``0`` normalize to 1 (serial).

    The single code path every entry point (CLI ``--workers``, the job
    runner, the service pool) funnels worker counts through, so the edge
    cases behave identically everywhere: ``None``/``0``/``1`` mean
    serial and a negative count is an explicit :class:`EngineError`
    rather than silently serial.
    """
    if workers is None:
        return 1
    count = int(workers)
    if count < 0:
        raise EngineError(f"worker count must be >= 0, got {count}")
    return count or 1


def resolve_executor(
    workers: int | None,
    *,
    start_method: str | None = None,
    shared_memory: bool = False,
    dist_workers: Iterable[str] | None = None,
) -> Executor:
    """Map a ``--workers`` count to a backend.

    ``None``, ``0`` and ``1`` mean serial; anything larger gets a
    process pool of that size (with the shared-memory transport when
    asked); negative counts raise. ``shared_memory`` is meaningless for
    serial execution and is silently ignored there — there is no second
    process to share with.

    ``dist_workers`` — worker-daemon URLs (``sisd worker``) — overrides
    the local backends entirely with a
    :class:`repro.dist.DistExecutor` sharding across those nodes
    (``workers``/``shared_memory`` are then ignored: parallelism is the
    node count). The determinism contract still holds: the distributed
    executor merges shard replies in canonical order, so its results
    are bit-identical to serial.
    """
    if dist_workers is not None:
        urls = [url for url in dist_workers if url]
        if urls:
            from repro.dist.executor import DistExecutor

            return DistExecutor(urls)
    count = normalize_workers(workers)
    if count <= 1:
        return SerialExecutor()
    return ProcessExecutor(
        count, start_method=start_method, shared_memory=shared_memory
    )


def resolve_pool(
    backend: str, max_workers: int | None, *, start_method: str | None = None
):
    """Map a service backend name + worker count to a futures pool.

    Returns a ``concurrent.futures`` pool for ``"process"``/``"thread"``
    and ``None`` for ``"serial"`` (execute inline at submit time).
    ``start_method`` selects the ``multiprocessing`` context of the
    process backend (``None``: platform default; ignored by the others —
    threads have no start method). Shares :func:`normalize_workers`'s
    edge-case handling with :func:`resolve_executor`, so the CLI and the
    service resolve worker counts through one code path.
    """
    if backend not in BACKENDS:
        raise EngineError(f"backend must be one of {BACKENDS}, got {backend!r}")
    count = normalize_workers(max_workers)
    if backend == "process":
        return ProcessPoolExecutor(
            max_workers=count,
            mp_context=(
                multiprocessing.get_context(start_method) if start_method else None
            ),
        )
    if backend == "thread":
        return ThreadPoolExecutor(max_workers=count)
    return None
