"""Conjunctive subgroup descriptions (intentions) with a canonical form.

A :class:`Description` is an immutable conjunction of conditions. Its
*canonical form* merges redundant bounds (keep the tightest ``<=`` and
``>=`` per attribute), deduplicates conditions, and sorts them, so that
syntactically different but logically identical intentions compare equal.
Beam search relies on this to avoid re-scoring the same subgroup under
many spellings, and the description length (DL) of the SI measure counts
canonical conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.datasets.schema import Dataset
from repro.errors import LanguageError
from repro.lang.conditions import GE, LE, Condition, EqualsCondition, NumericCondition


@dataclass(frozen=True)
class Description:
    """An immutable conjunction of :class:`Condition` objects.

    The empty description is the always-true intention covering the full
    data; it renders as ``<all>``.
    """

    conditions: tuple[Condition, ...] = ()

    def __post_init__(self) -> None:
        conditions = tuple(self.conditions)
        for condition in conditions:
            if not isinstance(condition, Condition):
                raise LanguageError(
                    f"expected Condition, got {type(condition).__name__}"
                )
        object.__setattr__(self, "conditions", conditions)

    # ------------------------------------------------------------------ #
    # Basic container behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.conditions)

    def __iter__(self) -> Iterator[Condition]:
        return iter(self.conditions)

    def __str__(self) -> str:
        if not self.conditions:
            return "<all>"
        return " AND ".join(str(c) for c in self.conditions)

    @property
    def attributes(self) -> set[str]:
        """Names of all attributes the description conditions on."""
        return {c.attribute for c in self.conditions}

    def with_condition(self, condition: Condition) -> "Description":
        """A new description with one more conjunct (not canonicalized)."""
        return Description(self.conditions + (condition,))

    # ------------------------------------------------------------------ #
    # Canonical form
    # ------------------------------------------------------------------ #
    def canonical(self) -> "Description":
        """Sorted, deduplicated, bound-merged equivalent description.

        - several ``attr <= t`` conjuncts collapse to the smallest ``t``;
        - several ``attr >= t`` conjuncts collapse to the largest ``t``;
        - duplicate equality conditions collapse to one.

        Contradictions (empty numeric interval, two different equality
        values on one attribute) are *kept* — the description simply has
        an empty extension; :meth:`is_contradictory` detects them.
        """
        upper: dict[str, NumericCondition] = {}
        lower: dict[str, NumericCondition] = {}
        equals: dict[tuple[str, str], EqualsCondition] = {}
        for condition in self.conditions:
            if isinstance(condition, NumericCondition):
                book = upper if condition.op == LE else lower
                best = book.get(condition.attribute)
                if best is None:
                    book[condition.attribute] = condition
                elif condition.op == LE and condition.threshold < best.threshold:
                    book[condition.attribute] = condition
                elif condition.op == GE and condition.threshold > best.threshold:
                    book[condition.attribute] = condition
            elif isinstance(condition, EqualsCondition):
                equals.setdefault((condition.attribute, str(condition.value)), condition)
            else:  # pragma: no cover - future condition types
                raise LanguageError(
                    f"cannot canonicalize condition type {type(condition).__name__}"
                )
        merged: list[Condition] = list(upper.values()) + list(lower.values())
        merged.extend(equals.values())
        merged.sort(key=lambda c: c.sort_key())
        return Description(tuple(merged))

    def is_contradictory(self) -> bool:
        """True if the canonical form provably has an empty extension."""
        canon = self.canonical()
        lower: dict[str, float] = {}
        upper: dict[str, float] = {}
        seen_equals: dict[str, str] = {}
        for condition in canon.conditions:
            if isinstance(condition, NumericCondition):
                if condition.op == LE:
                    upper[condition.attribute] = condition.threshold
                else:
                    lower[condition.attribute] = condition.threshold
            elif isinstance(condition, EqualsCondition):
                value = str(condition.value)
                if seen_equals.setdefault(condition.attribute, value) != value:
                    return True
        return any(
            attribute in upper and lower[attribute] > upper[attribute]
            for attribute in lower
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def matches(self, dataset: Dataset) -> np.ndarray:
        """Boolean extension mask over the dataset's rows."""
        mask = np.ones(dataset.n_rows, dtype=bool)
        for condition in self.conditions:
            mask &= condition.mask(dataset)
            if not mask.any():
                break
        return mask

    def extension(self, dataset: Dataset) -> np.ndarray:
        """Sorted row indices of the subgroup extension."""
        return np.flatnonzero(self.matches(dataset))

    def coverage(self, dataset: Dataset) -> float:
        """Fraction of rows the description covers."""
        return float(self.matches(dataset).mean())


def conjunction(conditions: Iterable[Condition]) -> Description:
    """Convenience constructor: canonical description from any iterable."""
    return Description(tuple(conditions)).canonical()
