"""Fig. 10: the top water location pattern.

Paper: 'Amphipoda Gammarus fossarum <= 0 AND Oligochaeta Tubifex >= 3',
91 records, elevated BOD / Cl / conductivity / KMnO4 / K2Cr2O7.
"""

from repro.experiments.water_exp import FIG10_PARAMETERS, run_fig10


def bench_fig10_water_location(benchmark, save_result):
    result = benchmark.pedantic(run_fig10, args=(0,), rounds=3, iterations=1)
    save_result("fig10_water_location", result.format())
    assert "amphipoda_gammarus_fossarum <= 0" in result.intention
    assert "oligochaeta_tubifex >= 3" in result.intention
    by_name = {r.name: r for r in result.surprisals_before}
    for name in FIG10_PARAMETERS:
        assert by_name[name].observed > by_name[name].expected
