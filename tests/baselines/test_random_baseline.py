"""Tests for the random-subgroup SI baseline."""

import numpy as np
import pytest

from repro.baselines.random_baseline import random_subgroup_si
from repro.errors import SearchError
from repro.model.background import BackgroundModel


@pytest.fixture()
def setup(rng):
    targets = rng.standard_normal((200, 2))
    return targets, BackgroundModel.from_targets(targets)


class TestRandomSubgroupSI:
    def test_returns_mean_and_draws(self, setup):
        targets, model = setup
        mean, draws = random_subgroup_si(model, targets, 40, n_draws=25, seed=0)
        assert draws.shape == (25,)
        assert mean == pytest.approx(draws.mean())

    def test_baseline_is_low(self, setup):
        """Random subgroups carry almost no information."""
        targets, model = setup
        mean, _ = random_subgroup_si(model, targets, 40, n_draws=50, seed=0)
        assert mean < 3.0

    def test_reproducible(self, setup):
        targets, model = setup
        a, _ = random_subgroup_si(model, targets, 30, n_draws=10, seed=3)
        b, _ = random_subgroup_si(model, targets, 30, n_draws=10, seed=3)
        assert a == b

    def test_size_validation(self, setup):
        targets, model = setup
        with pytest.raises(SearchError):
            random_subgroup_si(model, targets, 1)
        with pytest.raises(SearchError):
            random_subgroup_si(model, targets, 1000)

    def test_draw_validation(self, setup):
        targets, model = setup
        with pytest.raises(SearchError):
            random_subgroup_si(model, targets, 40, n_draws=0)

    def test_planted_pattern_beats_baseline(self, rng):
        targets = rng.standard_normal((200, 2))
        targets[:40] += 2.0
        model = BackgroundModel.from_targets(targets)
        baseline, _ = random_subgroup_si(model, targets, 40, n_draws=30, seed=0)
        from repro.interest.si import score_location
        from repro.stats.statistics import subgroup_mean

        planted = score_location(
            model, np.arange(40), subgroup_mean(targets, np.arange(40)), 1
        )
        assert planted.si > baseline + 10.0
