"""Deterministic random-number-generator helpers.

Every stochastic component of the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int``, or an existing
:class:`numpy.random.Generator`. :func:`as_rng` normalizes all three into a
``Generator`` so downstream code never touches the legacy ``RandomState``
API and experiments are reproducible from a single integer.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing an existing generator returns it unchanged, so helper functions
    can thread one RNG through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def rng_state(rng: np.random.Generator):
    """The generator's bit-generator state, reduced to JSON-safe types.

    PCG64 (the default) states are plain ints, but callers may seed with
    any ``numpy.random.Generator`` and e.g. MT19937 keeps its key as an
    ndarray; numpy's state setters accept the list form back, so the
    reduction below round-trips through :func:`generator_from_state`.
    """

    def _json_safe(obj):
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, np.generic):
            return obj.item()
        if isinstance(obj, dict):
            return {key: _json_safe(value) for key, value in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [_json_safe(value) for value in obj]
        return obj

    return _json_safe(rng.bit_generator.state)


def generator_from_state(state: dict) -> np.random.Generator:
    """Rebuild the exact generator a saved state dict describes.

    The state names its bit generator (``PCG64`` by default, whatever
    the caller seeded with otherwise), so restoring picks the right type
    no matter how the consuming generator was originally seeded. Raises
    ``ValueError`` for unknown bit-generator names or corrupt states —
    callers wrap it in their domain error.
    """
    name = state.get("bit_generator") if isinstance(state, dict) else None
    bit_generator_cls = getattr(np.random, name, None) if name else None
    if not (
        isinstance(bit_generator_cls, type)
        and issubclass(bit_generator_cls, np.random.BitGenerator)
    ):
        raise ValueError(f"rng state names unknown bit generator {name!r}")
    try:
        bit_generator = bit_generator_cls()
        bit_generator.state = state
    except (TypeError, ValueError) as exc:
        raise ValueError(f"rng state is corrupt: {exc}") from exc
    return np.random.Generator(bit_generator)


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Split a seed into ``count`` independent generators.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees the
    child streams are statistically independent — the right tool for
    multi-start optimizers and noise-sweep experiments where each arm must
    be reproducible on its own.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's bit stream.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
