"""Table II: background-distribution update runtimes (§III-E).

Reproduced shape: init cost roughly constant across datasets; location
refits grow superlinearly in the pattern count and are dominated by the
target dimension (Mammals, d_y = 124, is the slow column and is
truncated like the paper's); spread refits stay cheap (rank-one).

Absolute numbers are far below the paper's Matlab timings — we refit
with closed-form block updates — but the orderings the paper reports
hold, which is what the assertions check.
"""

from repro.experiments.runtime_exp import run_table2


def bench_table2_runtime(benchmark, save_result):
    result = benchmark.pedantic(
        run_table2,
        args=(0,),
        kwargs={"n_iterations": 12, "mammals_max_iter": 8},
        rounds=1,
        iterations=1,
    )
    save_result("table2_runtime", result.format())
    for label, series in result.location_seconds.items():
        assert series[-1] > series[0], label
    k = 7  # compare all datasets at iteration 8
    ma = result.location_seconds["Ma"][k]
    assert ma > max(result.location_seconds[l][k] for l in ("GSE", "WQ", "Cr"))
