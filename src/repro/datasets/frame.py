"""Dataframe-native ingestion and export for :class:`Dataset`.

This is the front door for the pandas-pipeline user (the wikimedia-style
survey workflow): :func:`from_dataframe` turns a dataframe into a typed
:class:`~repro.datasets.schema.Dataset` — inferring one selector kind per
column the way pysubgroup's ``create_selectors`` does — and
:func:`to_dataframe` goes back.

pandas is deliberately *not* a hard dependency. :func:`from_dataframe`
is duck-typed: anything with ``.columns`` and column ``__getitem__``
(a pandas/polars-style frame) works, and so does a plain mapping of
column name → 1-D array-like, so ingestion and the whole weighted mining
stack run on machines without pandas. Only :func:`to_dataframe`, which
must *construct* a dataframe, needs pandas installed — via the optional
``sisd[dataframe]`` extra.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.datasets.schema import AttributeKind, Column, Dataset, validate_weights
from repro.errors import DataError

__all__ = ["from_dataframe", "to_dataframe"]


def _require_pandas():
    try:
        import pandas
    except ImportError:
        raise DataError(
            "this operation builds a pandas DataFrame but pandas is not "
            'installed; install the optional extra with: pip install "sisd[dataframe]"'
        ) from None
    return pandas


def _frame_columns(frame: Any) -> list[str]:
    """Column names of a dataframe-like or a mapping, in order."""
    if isinstance(frame, Mapping):
        return [str(c) for c in frame.keys()]
    columns = getattr(frame, "columns", None)
    if columns is None:
        raise DataError(
            f"expected a dataframe-like object (with .columns) or a mapping "
            f"of column arrays, got {type(frame).__name__}"
        )
    return [str(c) for c in columns]


def _column_values(frame: Any, name: str) -> np.ndarray:
    values = np.asarray(frame[name])
    if values.ndim != 1:
        raise DataError(f"column {name!r} must be 1-D, got shape {values.shape}")
    return values


def _is_missing(values: np.ndarray) -> np.ndarray:
    """Row mask of missing entries (NaN for floats, None/NaN for objects)."""
    if values.dtype.kind == "f":
        return np.isnan(values)
    if values.dtype.kind == "O":
        return np.array(
            [v is None or (isinstance(v, float) and np.isnan(v)) for v in values],
            dtype=bool,
        )
    return np.zeros(values.shape[0], dtype=bool)


def _infer_kind(values: np.ndarray) -> tuple[AttributeKind, np.ndarray]:
    """One selector kind per column, pysubgroup-style.

    bool → binary; anything non-numeric → categorical (equality
    selectors); numeric taking only the values {0, 1} → binary; any
    other numeric → numeric (inequality selectors over split points).
    Returns the kind together with values coerced to the schema's
    storage dtype (float for orderable/binary, str-able objects for
    categorical).
    """
    if values.dtype.kind == "b":
        return AttributeKind.BINARY, values.astype(float)
    if values.dtype.kind in ("i", "u", "f"):
        numeric = values.astype(float)
    else:
        try:
            numeric = values.astype(float)
        except (TypeError, ValueError):
            return AttributeKind.CATEGORICAL, values.astype(str)
    distinct = np.unique(numeric)
    if distinct.shape[0] <= 2 and np.isin(distinct, (0.0, 1.0)).all():
        return AttributeKind.BINARY, numeric
    return AttributeKind.NUMERIC, numeric


def from_dataframe(
    frame: Any,
    target: str | Sequence[str],
    *,
    weights: str | np.ndarray | None = None,
    name: str = "dataframe",
    kinds: Mapping[str, str | AttributeKind] | None = None,
    ignore: Iterable[str] = (),
    dropna: bool = False,
) -> Dataset:
    """Build a typed :class:`Dataset` from a dataframe (or column mapping).

    Parameters
    ----------
    frame:
        A pandas-style dataframe (``.columns`` + column ``__getitem__``)
        or a plain mapping of column name → 1-D array-like.
    target:
        Target column name, or a list of names for multivariate targets.
        Every other column becomes a description attribute.
    weights:
        Case weights: the *name* of a column in ``frame`` (consumed — it
        does not also become a description attribute) or an explicit
        array of per-row weights. ``None`` mines unweighted.
    name:
        Dataset name for reports and fingerprints.
    kinds:
        Optional per-column overrides of the inferred selector kind,
        e.g. ``{"grade": "ordinal"}``; values are
        :class:`AttributeKind` members or their string values.
    ignore:
        Columns to exclude entirely.
    dropna:
        When true, rows with a missing value in any used column are
        dropped (weights included). When false (default), missing values
        raise :class:`DataError` naming the offending column.
    """
    columns = _frame_columns(frame)
    target_names = [target] if isinstance(target, str) else [str(t) for t in target]
    if not target_names:
        raise DataError("target must name at least one column")
    ignored = {str(c) for c in ignore}
    weight_column = weights if isinstance(weights, str) else None

    missing = [t for t in target_names if t not in columns]
    if weight_column is not None and weight_column not in columns:
        missing.append(weight_column)
    if missing:
        raise DataError(f"columns not in frame: {missing} (have {columns})")

    consumed = set(target_names) | ignored | ({weight_column} if weight_column else set())
    description_names = [c for c in columns if c not in consumed]
    if not description_names:
        raise DataError("no description columns left after targets/weights/ignore")

    raw: dict[str, np.ndarray] = {
        c: _column_values(frame, c) for c in description_names + target_names
    }
    n_rows = next(iter(raw.values())).shape[0]

    if weight_column is not None:
        weight_values: np.ndarray | None = _column_values(frame, weight_column).astype(float)
    elif weights is not None:
        weight_values = np.asarray(weights, dtype=float)
        if weight_values.ndim != 1 or weight_values.shape[0] != n_rows:
            raise DataError(
                f"weights must be 1-D of length {n_rows}, got shape {weight_values.shape}"
            )
    else:
        weight_values = None

    keep = np.ones(n_rows, dtype=bool)
    for column_name, values in raw.items():
        bad = _is_missing(values)
        if bad.any():
            if not dropna:
                raise DataError(
                    f"column {column_name!r} has {int(bad.sum())} missing values; "
                    f"pass dropna=True to drop those rows"
                )
            keep &= ~bad
    if weight_values is not None:
        bad = np.isnan(weight_values)
        if bad.any():
            if not dropna:
                raise DataError(
                    f"weights have {int(bad.sum())} missing values; "
                    f"pass dropna=True to drop those rows"
                )
            keep &= ~bad
    if not keep.all():
        raw = {c: v[keep] for c, v in raw.items()}
        if weight_values is not None:
            weight_values = weight_values[keep]
    if next(iter(raw.values())).shape[0] == 0:
        raise DataError("no rows left after dropping missing values")

    dataset_columns: list[Column] = []
    for column_name in description_names:
        kind, values = _infer_kind(raw[column_name])
        if kinds is not None and column_name in kinds:
            override = kinds[column_name]
            kind = override if isinstance(override, AttributeKind) else AttributeKind(override)
            if kind is AttributeKind.CATEGORICAL:
                values = raw[column_name].astype(str)
            else:
                values = raw[column_name].astype(float)
        dataset_columns.append(Column(column_name, kind, values))

    try:
        targets_matrix = np.stack(
            [raw[t].astype(float) for t in target_names], axis=1
        )
    except (TypeError, ValueError):
        raise DataError(f"target columns {target_names} must be numeric") from None

    return Dataset(
        name,
        dataset_columns,
        targets_matrix,
        target_names,
        weights=validate_weights(weight_values, targets_matrix.shape[0]),
    )


def to_dataframe(dataset: Dataset, *, weights_column: str | None = None):
    """The dataset's descriptions + targets as a pandas DataFrame.

    ``weights_column`` names an extra column to emit the case weights
    into (omitted when the dataset carries none). Requires pandas (the
    ``sisd[dataframe]`` extra).
    """
    pandas = _require_pandas()
    data: dict[str, np.ndarray] = {}
    for column in dataset.columns():
        data[column.name] = column.values
    for j, target_name in enumerate(dataset.target_names):
        data[target_name] = dataset.targets[:, j]
    if weights_column is not None and dataset.weights is not None:
        if weights_column in data:
            raise DataError(
                f"weights column {weights_column!r} collides with an existing column"
            )
        data[weights_column] = dataset.weights
    return pandas.DataFrame(data)
