"""Mining-as-a-service: a scheduled worker pool with result caching.

:class:`MiningService` turns the batch runner into a long-lived server
object: clients submit :class:`~repro.engine.jobs.MiningJob` specs and
poll (or block on) results while a bounded pool of workers drains the
queue. Unlike a plain ``concurrent.futures`` pool, the service owns its
queue and schedules it deterministically:

- **Priority, deadline, arrival.** Queued jobs dispatch by descending
  :attr:`~repro.engine.jobs.MiningJob.priority`, then earliest
  deadline, then submission order — never by pool-internal FIFO luck.
- **Deadlines are terminal.** A job whose
  :attr:`~repro.engine.jobs.MiningJob.deadline` elapses before a worker
  picks it up moves to the ``EXPIRED`` state and its ``result()``
  raises :class:`~repro.errors.DeadlineExpired` — the service never
  starts work whose answer can no longer be useful.
- **Cancel-while-queued is deterministic.** :meth:`MiningService.cancel`
  of a job that has not been dispatched always succeeds.
- **Identical work runs once.** Completed specs are deduplicated
  through an LRU result cache keyed by the job fingerprint, and a
  submission whose fingerprint is already queued or running *coalesces*
  onto the in-flight job instead of mining twice.
- **Starvation is bounded.** An aging guard boosts the effective
  priority of long-queued jobs (one level per ``aging_seconds``
  waited), so a low-priority job eventually dispatches even under
  sustained high-priority load; each boost is an ``"aged"`` event.
- **Decisions are observable.** Every scheduling decision is emitted as
  a :class:`~repro.events.SchedulerEvent` through the service's
  observers (``on_schedule``), and each submission may attach its own
  per-job observer that hears that job's events only (the substrate of
  the :mod:`repro.server` streaming endpoints).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from enum import Enum
from typing import Sequence

from repro.engine.cache import BeliefCache, LRUCache, resolve_belief_cache

# BACKENDS moved to the executor module with the pool-resolution dedup;
# re-imported here so `from repro.engine.service import BACKENDS` (its
# pre-move home) keeps working.
from repro.engine.executor import BACKENDS, resolve_executor, resolve_pool

__all__ = ["BACKENDS", "JobStatus", "MiningService"]
from repro.engine.jobs import (
    FileYieldFlag,
    JobResult,
    MiningJob,
    run_job,
    run_job_with_workers,
)
from repro.errors import DeadlineExpired, EngineError, JobPreempted
from repro.events import MiningObserver, SchedulerEvent, broadcast
from repro.obs import clock
from repro.obs.instruments import (
    BELIEF_SPILL_HIT_RATIO,
    BELIEF_SPILL_HITS,
    BELIEF_SPILL_MISSES,
    JOBS_FINISHED,
    JOBS_PREEMPTED,
    JOBS_SUBMITTED,
    METRICS,
    QUEUE_AGED,
    QUEUE_DEPTH,
    QUEUE_WAIT,
    RESULT_CACHE_HIT_RATIO,
    RESULT_CACHE_HITS,
    RESULT_CACHE_MISSES,
    STORE_JOURNAL_LAG,
    STORE_RECORDS,
)
from repro.obs.trace import TRACER, activate

#: Tenant label for untenanted submissions (Prometheus labels cannot be
#: empty without ambiguity; "-" is unambiguous and greppable).
_NO_TENANT = "-"


class _SwallowingObserver(MiningObserver):
    """Delivers events to an inner observer, discarding its exceptions.

    The serial backend fires events live inside ``run_job``; without
    this wrapper a raising observer would abort (and fail) a mining run
    that actually succeeded, while the pooled backends — whose replayed
    events are guarded in ``_announce`` — would report the same job
    DONE. One swallow policy, every backend.
    """

    def __init__(self, inner: MiningObserver) -> None:
        self._inner = inner

    def on_candidate(self, candidate) -> None:
        try:
            self._inner.on_candidate(candidate)
        except Exception:
            pass

    def on_iteration(self, iteration) -> None:
        try:
            self._inner.on_iteration(iteration)
        except Exception:
            pass

    def on_job(self, result) -> None:
        try:
            self._inner.on_job(result)
        except Exception:
            pass

    def on_job_failed(self, job, error) -> None:
        try:
            self._inner.on_job_failed(job, error)
        except Exception:
            pass

    def on_schedule(self, event) -> None:
        try:
            self._inner.on_schedule(event)
        except Exception:
            pass


def _deliver_result(observer, result, *, replay_iterations: bool) -> None:
    """One job's terminal delivery to one (already-swallowing) observer."""
    if replay_iterations:
        for iteration in result.iterations:
            observer.on_iteration(iteration)
    observer.on_job(result)


class JobStatus(str, Enum):
    """Lifecycle of a submitted job.

    ``PENDING`` jobs wait in the scheduler's queue, ``RUNNING`` jobs
    occupy a worker slot, and the remaining four states are terminal:
    ``DONE`` (result available), ``FAILED`` (``result()`` re-raises the
    worker error), ``CANCELLED`` (cancelled before dispatch), and
    ``EXPIRED`` (the deadline elapsed before a worker was free;
    ``result()`` raises :class:`~repro.errors.DeadlineExpired`).
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"


#: Record states that still change (everything else is terminal).
_LIVE_STATES = ("queued", "running")

_STATE_TO_STATUS = {
    "queued": JobStatus.PENDING,
    "running": JobStatus.RUNNING,
    "done": JobStatus.DONE,
    "failed": JobStatus.FAILED,
    "cancelled": JobStatus.CANCELLED,
    "expired": JobStatus.EXPIRED,
}


def _finish(record: "_Record", state: str) -> None:
    """Move a record to a terminal state (stamp + finished counter)."""
    record.state = state
    record.finished_wall = clock.wall_time()
    JOBS_FINISHED.labels(state).inc()


class _Record:
    """Scheduler bookkeeping of one submission.

    ``priority`` starts as the job's own and may be *boosted* when a
    higher-priority duplicate coalesces onto a still-queued record (the
    queue serves the most urgent interested client); ``boost`` is the
    starvation guard's additive aging credit on top of that. ``proxy_of``
    links a coalesced duplicate to the record doing the actual work;
    ``proxies`` is the reverse edge. ``heap_key`` detects stale heap
    entries after a boost (lazy deletion). ``observer`` is the
    submission's own (already exception-swallowing) per-job observer, or
    ``None``; ``live`` records whether that observer was wired into the
    mining run itself (so completion must not replay iterations to it).
    """

    __slots__ = (
        "job_id",
        "job",
        "fp",
        "seq",
        "priority",
        "boost",
        "enqueued_at",
        "deadline_at",
        "urgency_at",
        "future",
        "state",
        "opts",
        "proxies",
        "proxy_of",
        "heap_key",
        "observer",
        "live",
        "tenant",
        "tenant_share",
        "pass_value",
        "yield_flag",
        "submitted_wall",
        "finished_wall",
        "trace",
        "trace_enqueued",
    )

    def __init__(
        self,
        job_id: str,
        job: MiningJob,
        fp: str,
        seq: int,
        opts: tuple,
        observer: "MiningObserver | None" = None,
        tenant: "str | None" = None,
        tenant_share: float = 1.0,
    ):
        self.job_id = job_id
        self.job = job
        self.fp = fp
        self.seq = seq
        self.priority = job.priority
        self.boost = 0
        self.enqueued_at = clock.monotonic()
        self.deadline_at = (
            None if job.deadline is None else clock.monotonic() + job.deadline
        )
        # Scheduling urgency: the record's own deadline, tightened by the
        # earliest deadline of any coalesced duplicate. Ordering only —
        # expiry always uses the record's own deadline_at (a duplicate's
        # impatience must not expire a primary that promised no deadline).
        self.urgency_at = self.deadline_at
        self.future: Future = Future()
        self.state = "queued"
        self.opts = opts
        self.proxies: list["_Record"] = []
        self.proxy_of: "_Record" | None = None
        self.heap_key: tuple | None = None
        self.observer = observer
        self.live = False
        #: Tenancy: the submitting tenant's name (None for untenanted
        #: work) and its fair-share weight; pass_value is the stride-
        #: scheduling pass at enqueue time (0.0 when untenanted, which
        #: keeps the classic sort order bit-for-bit).
        self.tenant = tenant
        self.tenant_share = tenant_share
        self.pass_value = 0.0
        #: Cooperative-preemption flag handed to a thread-backend worker.
        self.yield_flag = None
        #: Wall-clock stamps for the durable store and terminal TTL.
        self.submitted_wall = clock.wall_time()
        self.finished_wall: float | None = None
        #: Trace context of the submission's root span (None untraced)
        #: and the perf-counter stamp the "schedule" span starts from.
        self.trace = None
        self.trace_enqueued = clock.perf_counter()

    def sort_key(self) -> tuple:
        """Dispatch order: priority ↓, tenant fair share, deadline ↑, arrival ↑.

        ``priority`` here is the *effective* priority: the (possibly
        coalescing-boosted) base plus the aging guard's ``boost``.
        ``pass_value`` is the stride-scheduling dimension — within one
        priority level, tenants dispatch in proportion to their shares;
        untenanted records carry 0.0, so a tenant-free queue orders
        exactly as it did before the tenancy dimension existed.
        """
        deadline_rank = (
            (1, 0.0) if self.urgency_at is None else (0, self.urgency_at)
        )
        return (
            -(self.priority + self.boost),
            self.pass_value,
            deadline_rank,
            self.seq,
        )


class MiningService:
    """Scheduled concurrent execution of mining jobs with result caching.

    .. note::
        As a *public entry point* prefer
        :meth:`repro.api.Workspace.submit`, which feeds declarative
        :class:`repro.spec.MiningSpec` documents through this service.
        ``MiningService`` remains the service substrate.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrently running jobs (default 2). Jobs
        beyond it queue and dispatch in deterministic scheduling order
        (priority, then deadline, then arrival — see
        :class:`~repro.engine.jobs.MiningJob`).
    backend:
        ``"process"`` (default) isolates each job in a worker process —
        right for CPU-bound mining; ``"thread"`` keeps everything
        in-process (fast startup, handy for tests and small jobs);
        ``"serial"`` executes synchronously at submit time (each submit
        completes before the next arrives, so scheduling order is
        trivially submission order there).
    cache_size:
        Capacity of the fingerprint-keyed result cache.
    start_method:
        ``multiprocessing`` start method of the ``"process"`` pool's
        workers (``fork``/``spawn``/``forkserver``; ``None`` = platform
        default). Ignored by the thread and serial backends. This
        configures the *service's own* job pool; the ``start_method``
        argument of :meth:`submit` independently configures the pools a
        job spawns internally.
    observer:
        Optional :class:`~repro.events.MiningObserver`. With the
        ``"serial"`` backend candidate/iteration events fire live during
        mining; the process/thread pools cannot ship callbacks across
        workers, so for those backends (and for cache hits) the service
        *replays* ``on_iteration`` for each mined iteration when a job's
        result arrives, then fires ``on_job``. A job that raises fires
        ``on_job_failed`` instead, so every submission that runs ends in
        exactly one terminal event; cancelled and expired jobs surface
        through ``on_schedule``, which also carries every other
        scheduling decision (queued/dispatched/cache_hit/coalesced).
        Scheduling events may fire from worker callback threads.
    belief_cache:
        Belief-state prefix cache shared by the jobs this service runs
        in-process (serial and thread backends; a worker *process*
        cannot share it). ``True`` (default) uses the process-wide
        :data:`~repro.engine.cache.BELIEF_CACHE`, so iterative jobs that
        share a prefix of assimilated patterns — e.g. the same spec at
        growing ``n_iterations`` — only mine the new iterations;
        ``None``/``False`` disables; a
        :class:`~repro.engine.cache.BeliefCache` instance scopes reuse
        to whoever shares that instance.
    aging_seconds:
        Starvation guard: a queued primary gains one effective priority
        level per ``aging_seconds`` spent waiting (emitted as an
        ``"aged"`` :class:`~repro.events.SchedulerEvent`), so sustained
        high-priority load cannot park a low-priority job forever.
        Aging affects dispatch *order* only — never what runs, never
        deadlines. ``None`` disables the guard; the default is 60
        seconds.
    store:
        Optional durable tier: a :class:`repro.store.JobStore` (or a
        path, opened as one). Every record transition is written
        through, and a service constructed over a populated store
        *recovers*: terminal records resolve instantly (done results
        re-enter the result cache bit-identically — zero recompute),
        queued/running records re-enqueue in their original submission
        order. With ``belief_cache=True`` the belief cache additionally
        spills to ``<store>/beliefs/``, so warm belief prefixes survive
        restarts and reach process-backend workers via a picklable
        handle.
    record_ttl_seconds / max_terminal_records:
        Terminal-record retention. A terminal record older than the TTL
        (wall-clock seconds since it finished), or beyond the count cap
        (oldest-finished evicted first), is dropped from the record
        table — and from the store — with an ``"evicted"`` scheduler
        event. ``None`` (default) keeps everything, the pre-store
        behaviour. Live (queued/running) records are never evicted.

    The service is a context manager; leaving the block shuts the pool
    down and waits for running jobs.
    """

    def __init__(
        self,
        *,
        max_workers: int = 2,
        backend: str = "process",
        cache_size: int = 64,
        observer: MiningObserver | None = None,
        start_method: str | None = None,
        belief_cache: BeliefCache | bool | None = True,
        aging_seconds: float | None = 60.0,
        store=None,
        record_ttl_seconds: float | None = None,
        max_terminal_records: int | None = None,
    ) -> None:
        if max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        if aging_seconds is not None and not (aging_seconds > 0):
            raise EngineError(
                f"aging_seconds must be > 0 or None, got {aging_seconds!r}"
            )
        if record_ttl_seconds is not None and not (record_ttl_seconds > 0):
            raise EngineError(
                f"record_ttl_seconds must be > 0 or None, got {record_ttl_seconds!r}"
            )
        if max_terminal_records is not None and max_terminal_records < 1:
            raise EngineError(
                f"max_terminal_records must be >= 1 or None, "
                f"got {max_terminal_records!r}"
            )
        self.aging_seconds = aging_seconds
        self.backend = backend
        self.max_workers = max_workers
        self.start_method = start_method
        self.record_ttl_seconds = record_ttl_seconds
        self.max_terminal_records = max_terminal_records
        self._store = None
        if store is not None:
            # Lazy import: repro.store imports repro.persist, which pulls
            # in repro.engine.jobs — importing it at module top would
            # cycle through this package's __init__.
            from repro.store import JobStore

            self._store = store if isinstance(store, JobStore) else JobStore(store)
        self._pool = resolve_pool(backend, max_workers, start_method=start_method)
        self._observers: list[MiningObserver] = (
            [observer] if observer is not None else []
        )
        self._recompose_observers()
        self._cache = LRUCache(cache_size)
        if self._store is not None and belief_cache is True:
            # A durable service defaults to a store-scoped belief cache
            # spilling next to its records (not the process-wide one):
            # warm prefixes then survive restarts with the rest of the
            # store, and cross the process-pool boundary as a handle.
            from repro.store import BeliefStore

            self._belief_cache = BeliefCache(
                spill=BeliefStore(self._store.belief_dir)
            )
        else:
            self._belief_cache = resolve_belief_cache(belief_cache)
        # Reentrant: a pool future that completes before its done-callback
        # is attached runs the callback synchronously in the dispatching
        # thread, which already holds the lock.
        self._lock = threading.RLock()
        self._records: dict[str, _Record] = {}
        self._queue: list[tuple[tuple, _Record]] = []
        self._inflight: dict[str, _Record] = {}
        self._running = 0
        self._n_queued = 0
        self._ids = itertools.count(1)
        self._seq = itertools.count()
        #: Stride scheduling: per-tenant pass values plus the virtual
        #: time (pass of the last tenanted dispatch). A newly active
        #: tenant's pass is floored at the virtual time, so an idle
        #: tenant cannot bank credit and then monopolize the queue.
        self._tenant_pass: dict[str, float] = {}
        self._vtime = 0.0
        # Pull-style gauges (queue depth, cache ratios, journal lag)
        # refresh at scrape time; the collector is removed on shutdown so
        # a later service in the same process takes over the gauges.
        METRICS.register_collector(self._collect_metrics)
        if self._store is not None:
            self._recover_from_store()

    def _collect_metrics(self) -> None:
        """Refresh this service's pull-style gauges (runs per scrape)."""
        QUEUE_DEPTH.set(self._n_queued)
        stats = self._cache.stats
        RESULT_CACHE_HITS.set(stats.hits)
        RESULT_CACHE_MISSES.set(stats.misses)
        RESULT_CACHE_HIT_RATIO.set(stats.hit_rate)
        if self._store is not None:
            store_stats = self._store.stats()
            STORE_RECORDS.set(store_stats["records"])
            STORE_JOURNAL_LAG.set(store_stats["journal_lag"])
        spill = (
            self._belief_cache.spill if self._belief_cache is not None else None
        )
        if spill is not None and hasattr(spill, "stats"):
            spill_stats = spill.stats
            total = spill_stats.hits + spill_stats.misses
            BELIEF_SPILL_HITS.set(spill_stats.hits)
            BELIEF_SPILL_MISSES.set(spill_stats.misses)
            BELIEF_SPILL_HIT_RATIO.set(
                spill_stats.hits / total if total else 0.0
            )

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        job: MiningJob,
        *,
        workers: int | None = None,
        start_method: str | None = None,
        shared_memory: bool = False,
        dist_workers: Sequence[str] | None = None,
        observer: MiningObserver | None = None,
        tenant: str | None = None,
        tenant_share: float = 1.0,
    ) -> str:
        """Queue a job; returns its id. Cached specs resolve instantly.

        ``workers``/``start_method``/``shared_memory`` parallelize the
        search *inside* the job (the spec's executor section);
        ``dist_workers`` (worker-daemon URLs) instead fans the job's
        shards out to remote workers through a
        :class:`~repro.dist.DistExecutor` — the submission's trace then
        spans the remote shards end to end. The determinism contract
        makes all of them — and hence these parameters — irrelevant to
        the result, so the cache stays keyed by the job fingerprint
        alone. A submission whose fingerprint is already
        queued or running coalesces onto that in-flight job (one mining
        run, every waiter gets the result); scheduling terms come from
        the job's ``priority``/``deadline`` fields.

        ``observer`` is a *per-job* observer: unlike the service-wide
        observers (which hear every job), it receives only this
        submission's events — its scheduling decisions, its iterations,
        and exactly one terminal ``on_job``/``on_job_failed``. The
        serial and thread backends deliver candidate/iteration events
        live from the mining thread (implementations must be
        thread-safe); the process backend and cache hits replay
        ``on_iteration`` at completion, like the service-wide stream.
        Exceptions it raises are swallowed, never failing the job. This
        is the per-job substrate the :mod:`repro.server` SSE endpoint
        tags its streams with.

        ``tenant``/``tenant_share`` attribute the submission to a named
        tenant with a fair-share weight (see
        :class:`repro.store.TenantRegistry`): within one priority level
        the scheduler dispatches tenants' queued jobs in proportion to
        their shares (stride scheduling) instead of strict arrival
        order. Untenanted submissions are scheduled exactly as before.
        """
        if not isinstance(job, MiningJob):
            raise EngineError(f"expected MiningJob, got {type(job).__name__}")
        if tenant is not None and not (tenant_share > 0):
            raise EngineError(
                f"tenant_share must be > 0, got {tenant_share!r}"
            )
        job_id = f"job-{next(self._ids):04d}"
        fp = job.fingerprint()
        post: list = []
        serial_record: _Record | None = None
        wrapped = _SwallowingObserver(observer) if observer is not None else None
        # Root span of this submission's trace: everything downstream —
        # the schedule wait, the engine's phase spans, dist shards —
        # parents under it. Purely observational; ids never reach the
        # job's inputs or fingerprint.
        root = TRACER.start("submit")
        root.tag("job", job.name).tag("tenant", tenant or _NO_TENANT)
        JOBS_SUBMITTED.labels(tenant or _NO_TENANT).inc()
        with self._lock:
            record = _Record(
                job_id,
                job,
                fp,
                next(self._seq),
                (workers, start_method, shared_memory, dist_workers),
                observer=wrapped,
                tenant=tenant,
                tenant_share=tenant_share,
            )
            record.trace = root.context
            self._records[job_id] = record
            self._emit_later(post, "queued", record)
            cached = self._cache.get(fp)
            if cached is not None:
                _finish(record, "done")
                record.future.set_result(cached)
                self._emit_later(post, "cache_hit", record)
                post.append(
                    lambda r=cached: self._announce(r, replay_iterations=True)
                )
                if wrapped is not None:
                    post.append(
                        lambda r=cached, o=wrapped: _deliver_result(
                            o, r, replay_iterations=True
                        )
                    )
            elif self._pool is None:
                if (
                    record.deadline_at is not None
                    and clock.monotonic() >= record.deadline_at
                ):
                    self._expire_locked(record, post)
                else:
                    record.state = "running"
                    self._emit_later(post, "dispatched", record)
                    serial_record = record
            else:
                primary = self._inflight.get(fp)
                if primary is not None and primary.state in _LIVE_STATES:
                    record.proxy_of = primary
                    primary.proxies.append(record)
                    self._emit_later(
                        post, "coalesced", record, detail=f"onto {primary.job_id}"
                    )
                    # Serve the most urgent interested client: a queued
                    # primary inherits a duplicate's higher priority and
                    # earlier deadline *for ordering* (re-pushed; lazy
                    # deletion skips the stale heap entry). Expiry keeps
                    # using each record's own deadline.
                    if primary.state == "queued":
                        boosted = False
                        if record.priority > primary.priority:
                            primary.priority = record.priority
                            boosted = True
                        if record.deadline_at is not None and (
                            primary.urgency_at is None
                            or record.deadline_at < primary.urgency_at
                        ):
                            primary.urgency_at = record.deadline_at
                            boosted = True
                        if boosted:
                            self._push_locked(primary)
                else:
                    self._inflight[fp] = record
                    self._refresh_pass_locked(record)
                    self._push_locked(record)
                    self._n_queued += 1
                    self._dispatch_locked(post)
            self._persist_later(post, record)
            self._prune_terminal_locked(post)
        self._run_post(post)
        if serial_record is not None:
            self._run_serial(serial_record)
        root.tag("job_id", job_id)
        TRACER.finish(root)
        return job_id

    def _run_serial(self, record: _Record) -> None:
        """Execute one job inline (the ``"serial"`` backend's dispatch)."""
        workers, start_method, shared_memory, dist_workers = record.opts
        executor = resolve_executor(
            workers,
            start_method=start_method,
            shared_memory=shared_memory,
            dist_workers=dist_workers,
        )
        record.live = record.observer is not None
        try:
            # Serial backend: candidate/iteration events fire live, on
            # the service-wide observers and the submission's own
            # (swallowed on failure — see _SwallowingObserver).
            with activate(record.trace):
                result = run_job(
                    record.job,
                    executor=executor,
                    observer=broadcast(self._live_observer, record.observer),
                    belief_cache=self._belief_cache,
                )
        except Exception as exc:  # surface via result(), like a pool would
            with self._lock:
                _finish(record, "failed")
                record.future.set_exception(exc)
            self._persist_now(record)
            if self._live_observer is not None:
                self._live_observer.on_job_failed(record.job, exc)
            if record.observer is not None:
                record.observer.on_job_failed(record.job, exc)
        else:
            with self._lock:
                _finish(record, "done")
                self._cache.put(record.fp, result)
                record.future.set_result(result)
            self._persist_now(record)
            self._announce(result, replay_iterations=False)
            if record.observer is not None:
                _deliver_result(record.observer, result, replay_iterations=False)
        finally:
            # A shared-memory executor holds a persistent pool; do
            # not leave it to garbage collection.
            executor.close()

    def status(self, job_id: str) -> JobStatus:
        """Current lifecycle state of one job.

        Querying a queued job whose deadline has passed moves it to
        ``EXPIRED`` on the spot (expiry is otherwise observed when a
        worker slot frees up and the scheduler considers the job).
        """
        post: list = []
        with self._lock:
            record = self._record_of(job_id)
            self._expire_if_due_locked(record, post)
            if record.state == "queued" and record.proxy_of is not None:
                # A coalesced duplicate is as far along as its primary.
                status = (
                    JobStatus.RUNNING
                    if record.proxy_of.state == "running"
                    else JobStatus.PENDING
                )
            else:
                status = _STATE_TO_STATUS[record.state]
        self._run_post(post)
        return status

    def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until the job finishes and return its result.

        Re-raises the job's exception on failure,
        :class:`concurrent.futures.CancelledError` after a cancel, and
        :class:`~repro.errors.DeadlineExpired` after a deadline expiry.
        A waiter blocked on a queued deadlined job wakes at the deadline
        to raise — it is never held until a worker slot frees just to
        learn its job expired.
        """
        give_up_at = None if timeout is None else clock.monotonic() + timeout
        while True:
            self.status(job_id)  # lazily expires an overdue queued job
            with self._lock:
                record = self._record_of(job_id)
                future = record.future
                expire_at = None
                if record.state == "queued":
                    watched = (
                        record.proxy_of if record.proxy_of is not None else record
                    )
                    if watched.state == "queued":
                        # Pending expiry of whichever record gates us:
                        # our own while primary-less, the primary's
                        # otherwise (a proxy on started work never
                        # expires; _expire_if_due_locked mirrors this).
                        expire_at = record.deadline_at
            now = clock.monotonic()
            waits = []
            if give_up_at is not None:
                waits.append(give_up_at - now)
            if expire_at is not None:
                waits.append(expire_at - now + 0.001)
            try:
                return future.result(timeout=min(waits) if waits else None)
            except FuturesTimeoutError:
                if give_up_at is not None and clock.monotonic() >= give_up_at:
                    raise
                # Deadline wake-up: loop — status() above expires the
                # record, after which the future resolves immediately.

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started yet; True on success.

        Deterministic: a queued (or coalesced) job always cancels; a
        running or terminal job never does. Cancelling a primary with
        coalesced waiters promotes the oldest waiter into the queue —
        the other clients' work is not discarded with it.
        """
        post: list = []
        with self._lock:
            record = self._record_of(job_id)
            if record.state != "queued":
                return False
            record.future.cancel()
            _finish(record, "cancelled")
            if record.proxy_of is not None:
                if record in record.proxy_of.proxies:
                    record.proxy_of.proxies.remove(record)
            else:
                self._n_queued -= 1
                self._promote_locked(record, post)
                self._dispatch_locked(post)
            self._emit_later(post, "cancelled", record)
            self._persist_later(post, record)
        self._run_post(post)
        return True

    def preempt(self, job_id: str) -> bool:
        """Ask a running job to yield its worker slot; True if requested.

        Preemption is *cooperative*: the worker checks a flag between
        mining iterations (see :func:`repro.engine.jobs.run_job`), so
        the request lands at the next iteration boundary — completed
        iterations are already in the belief cache and replay for free
        when the job is re-dispatched. The preempted job goes back to
        the queue (``"preempted"`` event) with its future unresolved;
        waiters simply wait longer. The thread backend signals through
        a ``threading.Event``; the process backend through a
        :class:`~repro.engine.jobs.FileYieldFlag`, which crosses the
        pool boundary as a marker-file path. (On the process backend,
        give the service a spill-backed belief cache — ``store=`` — or
        the re-run repeats the preempted iterations from scratch.)
        Returns False for jobs that are not running.
        """
        post: list = []
        requested = False
        with self._lock:
            record = self._record_of(job_id)
            if record.state == "running" and record.yield_flag is not None:
                record.yield_flag.set()
                requested = True
                self._emit_later(post, "preempt_requested", record)
        self._run_post(post)
        return requested

    def tenant_load(self, tenant: str) -> int:
        """Live (queued or running) submissions currently held by a tenant."""
        with self._lock:
            return sum(
                1
                for record in self._records.values()
                if record.tenant == tenant and record.state in _LIVE_STATES
            )

    def job(self, job_id: str) -> MiningJob:
        """The spec submitted under ``job_id``."""
        with self._lock:
            return self._record_of(job_id).job

    def jobs(self) -> dict[str, JobStatus]:
        """Snapshot of every submitted job's status, by id."""
        with self._lock:
            ids = list(self._records)
        return {job_id: self.status(job_id) for job_id in ids}

    def wait_all(self, timeout: float | None = None) -> dict[str, JobStatus]:
        """Wait for all non-cancelled jobs, then return their statuses.

        ``timeout`` bounds the *total* wait; if it expires while jobs
        are still running, :class:`TimeoutError` is raised. Job
        failures, cancellations and expiries do not raise here — the
        returned statuses tell that story.
        """
        deadline = None if timeout is None else clock.monotonic() + timeout
        with self._lock:
            futures = [record.future for record in self._records.values()]
        for future in futures:
            remaining = (
                None if deadline is None else max(0.0, deadline - clock.monotonic())
            )
            try:
                future.result(timeout=remaining)
            except CancelledError:
                pass
            except FuturesTimeoutError:  # pre-3.11 this is not TimeoutError
                raise
            except Exception:
                pass
        return self.jobs()

    def _recompose_observers(self) -> None:
        composed = broadcast(*self._observers)
        self._observer = composed
        self._live_observer = (
            _SwallowingObserver(composed) if composed is not None else None
        )

    def add_observer(self, observer: MiningObserver | None) -> None:
        """Compose another observer onto the service's event stream.

        Delivery reads the observer set at event time, so the new
        observer also hears pooled jobs already in flight when their
        results arrive; ``None`` is a no-op. Lets a
        :class:`repro.api.Workspace` attach its observer to an
        externally constructed service; detach with
        :meth:`remove_observer`.
        """
        if observer is None:
            return
        self._observers.append(observer)
        self._recompose_observers()

    def remove_observer(self, observer: MiningObserver | None) -> None:
        """Detach a previously attached observer (unknown ones: no-op).

        A :class:`repro.api.Workspace` sharing this service calls this
        on close, so successive workspaces do not accumulate each
        other's observers.
        """
        if observer in self._observers:
            self._observers.remove(observer)
            self._recompose_observers()

    @property
    def cache_stats(self):
        """Hit/miss counters of the result cache."""
        return self._cache.stats

    @property
    def belief_cache(self) -> BeliefCache | None:
        """The belief-state prefix cache in-process jobs share (or None)."""
        return self._belief_cache

    @property
    def store(self):
        """The durable :class:`repro.store.JobStore`, or None."""
        return self._store

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and wind the scheduler down.

        ``wait=True`` (default) drains gracefully: queued jobs are still
        dispatched and everything runs to completion before the pool
        stops — the behaviour of a plain pool shutdown. ``wait=False``
        cancels everything still queued and stops without waiting for
        running jobs. A durable store is compacted and closed either way
        (a crash that skips this is what the WAL is for).
        """
        METRICS.remove_collector(self._collect_metrics)
        if self._pool is None:
            if self._store is not None:
                self._store.close()
            return
        if wait:
            while True:
                with self._lock:
                    live = [
                        record.future
                        for record in self._records.values()
                        if record.state in _LIVE_STATES
                    ]
                if not live:
                    break
                for future in live:
                    try:
                        future.result()
                    except (CancelledError, Exception):
                        pass
        else:
            post: list = []
            with self._lock:
                for record in list(self._records.values()):
                    if record.state != "queued":
                        continue
                    record.future.cancel()
                    _finish(record, "cancelled")
                    if record.proxy_of is None:
                        self._n_queued -= 1
                        if self._inflight.get(record.fp) is record:
                            del self._inflight[record.fp]
                    self._emit_later(
                        post, "cancelled", record, detail="service shutdown"
                    )
                    self._persist_later(post, record)
                self._queue.clear()
            self._run_post(post)
        self._pool.shutdown(wait=wait)
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Scheduler internals (methods suffixed _locked need self._lock held)
    # ------------------------------------------------------------------ #
    def _record_of(self, job_id: str) -> _Record:
        with self._lock:
            try:
                return self._records[job_id]
            except KeyError:
                raise EngineError(f"unknown job id {job_id!r}") from None

    def _push_locked(self, record: _Record) -> None:
        record.heap_key = record.sort_key()
        heapq.heappush(self._queue, (record.heap_key, record))

    def _age_queue_locked(self, post: list) -> None:
        """Starvation guard: boost the priority of long-queued primaries.

        A queued primary earns one effective-priority level per
        :attr:`aging_seconds` spent waiting (boosted records are
        re-pushed; lazy deletion skips their stale heap entries), so a
        steady stream of high-priority arrivals cannot postpone a
        low-priority job forever. Runs at every dispatch opportunity —
        each submission and each completed task re-examines the queue.
        """
        if self.aging_seconds is None or not self._queue:
            return
        now = clock.monotonic()
        # Walk the heap, not self._records: the record table keeps every
        # submission ever made (it backs status()), while the heap holds
        # only queued primaries plus a few stale boosted entries — the
        # scan must stay O(queue), not O(history), on a long-lived server.
        seen: set[int] = set()
        for _, record in list(self._queue):
            if record.state != "queued" or record.proxy_of is not None:
                continue
            if id(record) in seen:
                continue  # stale duplicate entry of an already-aged record
            seen.add(id(record))
            waited = now - record.enqueued_at
            boost = int(waited / self.aging_seconds)
            if boost > record.boost:
                record.boost = boost
                QUEUE_AGED.inc()
                self._push_locked(record)
                self._emit_later(
                    post, "aged", record,
                    detail=f"+{boost} priority after {waited:.3f}s queued",
                )

    def _dispatch_locked(self, post: list) -> None:
        """Fill free worker slots in deterministic scheduling order."""
        if self._pool is None:
            return
        self._age_queue_locked(post)
        while self._running < self.max_workers and self._queue:
            key, record = heapq.heappop(self._queue)
            if record.state != "queued" or record.heap_key != key:
                continue  # cancelled/boosted: stale heap entry
            if (
                record.tenant is not None
                and record.pass_value
                != self._tenant_pass.get(record.tenant, record.pass_value)
            ):
                # The tenant's pass advanced since this record was pushed
                # (an earlier job of the same tenant dispatched): re-rank
                # at the current pass so other tenants get their turn.
                self._refresh_pass_locked(record)
                self._push_locked(record)
                continue
            if (
                record.deadline_at is not None
                and clock.monotonic() >= record.deadline_at
            ):
                self._n_queued -= 1
                self._expire_locked(record, post)
                continue
            # The shared run starts *now*: duplicates whose "must start
            # by" deadline already passed expire instead of riding along
            # (checked while the primary still counts as queued).
            for proxy in list(record.proxies):
                self._expire_if_due_locked(proxy, post)
            record.state = "running"
            self._n_queued -= 1
            self._running += 1
            dispatched_at = clock.perf_counter()
            QUEUE_WAIT.observe(
                max(0.0, dispatched_at - record.trace_enqueued)
            )
            TRACER.record(
                "schedule", record.trace_enqueued, dispatched_at, record.trace
            )
            if record.tenant is not None:
                # Stride accounting: the dispatch advances the tenant's
                # pass by the inverse of its share (big shares advance
                # slowly, so they dispatch more often) and drags the
                # virtual time forward for future arrivals.
                self._vtime = max(self._vtime, record.pass_value)
                self._tenant_pass[record.tenant] = (
                    record.pass_value + 1.0 / record.tenant_share
                )
            workers, start_method, shared_memory, dist_workers = record.opts
            live_observer = None
            if self.backend == "thread":
                # In-process workers can call back into this process, so
                # the per-job observers of every waiter known at dispatch
                # hear candidates/iterations live from the worker thread;
                # completion then skips their replay (waiter.live).
                live_waiters = [
                    waiter
                    for waiter in [record] + record.proxies
                    if waiter.state in _LIVE_STATES and waiter.observer is not None
                ]
                for waiter in live_waiters:
                    waiter.live = True
                live_observer = broadcast(
                    *(waiter.observer for waiter in live_waiters)
                )
            try:
                if self.backend == "thread":
                    # In-process workers share the belief cache; worker
                    # *processes* cannot (no pickling across the boundary).
                    # The yield flag enables cooperative preemption at
                    # iteration boundaries.
                    record.yield_flag = threading.Event()
                    pool_future = self._pool.submit(
                        run_job_with_workers,
                        record.job,
                        workers,
                        start_method,
                        shared_memory,
                        self._belief_cache,
                        live_observer,
                        record.yield_flag,
                        trace=record.trace,
                        dist_workers=dist_workers,
                    )
                else:
                    # A spill-backed belief cache *can* reach worker
                    # processes: ship its picklable handle, which each
                    # worker resolves into a process-local cache over
                    # the shared on-disk spill. Preemption crosses the
                    # boundary the same way — a FileYieldFlag pickles by
                    # value and signals through the filesystem.
                    handle = (
                        self._belief_cache.handle()
                        if self._belief_cache is not None
                        else None
                    )
                    record.yield_flag = FileYieldFlag()
                    pool_future = self._pool.submit(
                        run_job_with_workers,
                        record.job,
                        workers,
                        start_method,
                        shared_memory,
                        belief_handle=handle,
                        yield_event=record.yield_flag,
                        trace=record.trace,
                        dist_workers=dist_workers,
                    )
            except Exception as exc:
                # e.g. submit raced a shutdown: the pool refused the
                # task. Undo the slot bookkeeping and fail the record
                # (and its waiters) instead of stranding an unresolvable
                # future and leaking a worker slot.
                self._running -= 1
                if self._inflight.get(record.fp) is record:
                    del self._inflight[record.fp]
                waiters = [record] + [
                    p for p in record.proxies if p.state == "queued"
                ]
                record.proxies = []
                for waiter in waiters:
                    _finish(waiter, "failed")
                    waiter.future.set_exception(exc)
                    self._persist_later(post, waiter)
                    if self._live_observer is not None:
                        post.append(
                            lambda w=waiter, e=exc: self._live_observer.on_job_failed(
                                w.job, e
                            )
                        )
                    if waiter.observer is not None:
                        post.append(
                            lambda w=waiter, e=exc: w.observer.on_job_failed(
                                w.job, e
                            )
                        )
                continue
            self._emit_later(post, "dispatched", record)
            self._persist_later(post, record)
            pool_future.add_done_callback(
                lambda future, record=record: self._on_task_done(record, future)
            )

    @staticmethod
    def _dispose_yield_flag(record: "_Record") -> None:
        """Detach the record's preemption flag, unlinking a file-backed one."""
        flag, record.yield_flag = record.yield_flag, None
        if isinstance(flag, FileYieldFlag):
            flag.dispose()

    def _on_task_done(self, record: _Record, pool_future: Future) -> None:
        """Completion callback of a dispatched pool task."""
        post: list = []
        with self._lock:
            self._running -= 1
            if (
                not pool_future.cancelled()
                and isinstance(pool_future.exception(), JobPreempted)
                and record.state == "running"
            ):
                # Cooperative preemption: the worker yielded its slot at
                # an iteration boundary. Not terminal — the record (and
                # its coalesced waiters, and its unresolved future) goes
                # back in the queue. Completed iterations are already in
                # the belief cache, so the re-run replays them for free.
                record.state = "queued"
                record.boost = 0
                record.enqueued_at = clock.monotonic()
                record.trace_enqueued = clock.perf_counter()
                JOBS_PREEMPTED.labels(record.tenant or _NO_TENANT).inc()
                self._dispose_yield_flag(record)
                self._refresh_pass_locked(record)
                self._push_locked(record)
                self._n_queued += 1
                self._emit_later(post, "preempted", record)
                self._persist_later(post, record)
                self._dispatch_locked(post)
                self._run_post(post)
                return
            self._dispose_yield_flag(record)
            if self._inflight.get(record.fp) is record:
                del self._inflight[record.fp]
            waiters = [record] + [p for p in record.proxies if p.state == "queued"]
            record.proxies = []
            if pool_future.cancelled():  # pragma: no cover - defensive
                for waiter in waiters:
                    _finish(waiter, "cancelled")
                    waiter.future.cancel()
                    self._persist_later(post, waiter)
            else:
                exc = pool_future.exception()
                if exc is None:
                    result = pool_future.result()
                    self._cache.put(record.fp, result)
                    for waiter in waiters:
                        _finish(waiter, "done")
                        waiter.future.set_result(result)
                        self._persist_later(post, waiter)
                        if waiter.observer is not None:
                            # Waiters wired live at dispatch already heard
                            # their iterations; late coalescers and the
                            # process backend get the replay.
                            post.append(
                                lambda w=waiter, r=result: _deliver_result(
                                    w.observer, r, replay_iterations=not w.live
                                )
                            )
                    post.extend(
                        (lambda r=result: self._announce(r, replay_iterations=True),)
                        * len(waiters)
                    )
                else:
                    for waiter in waiters:
                        _finish(waiter, "failed")
                        waiter.future.set_exception(exc)
                        self._persist_later(post, waiter)
                        if self._live_observer is not None:
                            post.append(
                                lambda w=waiter, e=exc: self._live_observer.on_job_failed(
                                    w.job, e
                                )
                            )
                        if waiter.observer is not None:
                            post.append(
                                lambda w=waiter, e=exc: w.observer.on_job_failed(
                                    w.job, e
                                )
                            )
            self._prune_terminal_locked(post)
            self._dispatch_locked(post)
        self._run_post(post)

    def _expire_if_due_locked(self, record: _Record, post: list) -> None:
        if record.state != "queued":
            return
        if record.proxy_of is not None and record.proxy_of.state != "queued":
            # The shared mining run has started (or finished); the
            # duplicate's "must start by" budget is satisfied by it.
            return
        if record.deadline_at is None or clock.monotonic() < record.deadline_at:
            return
        if record.proxy_of is None:
            self._n_queued -= 1
        self._expire_locked(record, post)

    def _expire_locked(self, record: _Record, post: list) -> None:
        """Move an overdue queued record to the terminal EXPIRED state.

        Works for primaries (detaching and promoting their waiters) and
        for coalesced duplicates (detaching from their primary, which
        keeps running for its other clients).
        """
        overdue = clock.monotonic() - (record.deadline_at or clock.monotonic())
        _finish(record, "expired")
        record.future.set_exception(
            DeadlineExpired(
                f"job {record.job_id} ({record.job.name}) missed its "
                f"{record.job.deadline:g}s deadline by {max(overdue, 0.0):.3f}s "
                f"before a worker was free"
            )
        )
        if record.proxy_of is not None:
            if record in record.proxy_of.proxies:
                record.proxy_of.proxies.remove(record)
            record.proxy_of = None
        else:
            self._promote_locked(record, post)
        self._emit_later(post, "expired", record, detail=f"{max(overdue, 0.0):.3f}s overdue")
        self._persist_later(post, record)

    def _promote_locked(self, record: _Record, post: list) -> None:
        """Re-queue the oldest live waiter of a dead primary.

        A coalesced duplicate was promised its primary's result; when
        the primary is cancelled or expires before running, the promise
        moves to the oldest surviving duplicate (which brings its own
        priority/deadline terms) instead of dying with it.
        """
        if self._inflight.get(record.fp) is record:
            del self._inflight[record.fp]
        survivors = [p for p in record.proxies if p.state == "queued"]
        record.proxies = []
        if not survivors:
            return
        new_primary = survivors[0]
        new_primary.proxy_of = None
        new_primary.proxies = survivors[1:]
        for proxy in new_primary.proxies:
            proxy.proxy_of = new_primary
        self._inflight[record.fp] = new_primary
        self._refresh_pass_locked(new_primary)
        self._push_locked(new_primary)
        self._n_queued += 1
        self._emit_later(post, "promoted", new_primary, detail=f"after {record.job_id}")

    # ------------------------------------------------------------------ #
    # Tenancy + durable store internals
    # ------------------------------------------------------------------ #
    def _refresh_pass_locked(self, record: _Record) -> None:
        """(Re)stamp a queued record with its tenant's current pass."""
        if record.tenant is None:
            record.pass_value = 0.0
            return
        record.pass_value = max(
            self._tenant_pass.get(record.tenant, 0.0), self._vtime
        )

    def _persist_later(self, post: list, record: _Record) -> None:
        """Queue a store write for after the lock drops (no-op storeless).

        Runs off-lock because encoding a done record's result document
        walks every mined pattern — too much work to hold the scheduler
        for. Writes land in submission order within one transition batch
        (``post`` preserves append order), and the store upserts, so a
        racing later transition can only make the doc *fresher*.
        """
        if self._store is None:
            return
        post.append(lambda: self._persist_now(record))

    def _persist_now(self, record: _Record) -> None:
        if self._store is None:
            return
        try:
            self._store.put(self._record_doc(record))
        except Exception:
            # Persistence must never break scheduling (a concurrent
            # shutdown may have closed the store; the disk may be full).
            # The WAL guarantees the *next* open is self-consistent
            # regardless of where writes stopped.
            pass

    def _record_doc(self, record: _Record) -> dict:
        """The record's durable document, in the existing wire vocabulary.

        Jobs serialize via :func:`repro.persist.job_to_dict`, results via
        :func:`repro.persist.job_result_to_dict` (the exact-round-trip
        codec the HTTP layer uses — which is what makes a restored
        result bit-identical to the one computed before the restart),
        and errors in the ``{"type", "message"}`` shape of
        :func:`repro.server.wire.error_to_wire`.
        """
        from repro import persist  # lazy: persist imports engine.jobs

        state = record.state
        doc = {
            "schema": 1,
            "job_id": record.job_id,
            "fingerprint": record.fp,
            "state": state,
            "seq": record.seq,
            "tenant": record.tenant,
            "tenant_share": record.tenant_share,
            "submitted_at": record.submitted_wall,
            "updated_at": clock.wall_time(),
            "job": persist.job_to_dict(record.job),
            "result": None,
            "error": None,
        }
        if state == "done":
            try:
                doc["result"] = persist.job_result_to_dict(
                    record.future.result(timeout=0)
                )
            except Exception:  # pragma: no cover - racing transition
                doc["state"] = "queued"
        elif state in ("failed", "expired"):
            try:
                exc = record.future.exception(timeout=0)
            except Exception:  # pragma: no cover - racing transition
                exc = None
            if exc is not None:
                doc["error"] = {
                    "type": type(exc).__name__,
                    "message": str(exc),
                }
        return doc

    def _prune_terminal_locked(self, post: list) -> None:
        """TTL/LRU retention of terminal records (live ones never evict)."""
        ttl = self.record_ttl_seconds
        cap = self.max_terminal_records
        if ttl is None and cap is None:
            return
        now = clock.wall_time()
        terminal = [
            record
            for record in self._records.values()
            if record.state not in _LIVE_STATES
            and record.finished_wall is not None
        ]
        evict_ids: set[str] = set()
        if ttl is not None:
            evict_ids.update(
                record.job_id
                for record in terminal
                if now - record.finished_wall >= ttl
            )
        if cap is not None:
            survivors = sorted(
                (r for r in terminal if r.job_id not in evict_ids),
                key=lambda r: (r.finished_wall, r.seq),
            )
            if len(survivors) > cap:
                evict_ids.update(
                    record.job_id for record in survivors[: len(survivors) - cap]
                )
        for record in terminal:
            if record.job_id not in evict_ids:
                continue
            self._emit_later(post, "evicted", record)
            del self._records[record.job_id]
            if self._store is not None:
                post.append(
                    lambda job_id=record.job_id: self._store_delete(job_id)
                )

    def _store_delete(self, job_id: str) -> None:
        try:
            self._store.delete(job_id)
        except Exception:  # pragma: no cover - store closed mid-evict
            pass

    def _recover_from_store(self) -> None:
        """Rebuild the record table from the durable store at startup.

        Terminal records resolve immediately — done results re-enter the
        result cache exactly as stored (zero recompute; the persist
        codec round-trips floats bit-for-bit). Queued and running
        records never finished, so they re-enqueue as queued in their
        original submission order (the store sorts by stored ``seq``,
        and fresh seqs are assigned in that order), re-coalescing
        duplicates along the way; each re-enqueue is a ``"recovered"``
        scheduler event. Recovered failures re-raise with the stored
        type name and message (as :class:`DeadlineExpired` when that is
        what they were, generic :class:`EngineError` otherwise — the
        original class cannot be reconstructed from a name alone).
        """
        from repro import persist  # lazy: persist imports engine.jobs

        docs = self._store.records()
        if not docs:
            return
        post: list = []
        max_id = 0
        with self._lock:
            for doc in docs:
                try:
                    job = persist.job_from_dict(doc["job"])
                except Exception:
                    continue  # foreign/corrupt record: skip, don't die
                job_id = str(doc.get("job_id"))
                try:
                    max_id = max(max_id, int(job_id.rsplit("-", 1)[-1]))
                except ValueError:
                    pass
                record = _Record(
                    job_id,
                    job,
                    str(doc.get("fingerprint") or job.fingerprint()),
                    next(self._seq),
                    (None, None, False, None),
                    tenant=doc.get("tenant"),
                    tenant_share=float(doc.get("tenant_share") or 1.0),
                )
                record.submitted_wall = float(
                    doc.get("submitted_at") or record.submitted_wall
                )
                state = doc.get("state")
                finished = float(doc.get("updated_at") or clock.wall_time())
                if state == "done" and doc.get("result") is not None:
                    try:
                        result = persist.job_result_from_dict(doc["result"])
                    except Exception:
                        continue  # corrupt result: drop the record
                    record.state = "done"
                    record.finished_wall = finished
                    record.future.set_result(result)
                    self._cache.put(record.fp, result)
                elif state in ("failed", "expired"):
                    error = doc.get("error") or {}
                    message = error.get(
                        "message", "job failed before a service restart"
                    )
                    if state == "expired" or error.get("type") == "DeadlineExpired":
                        exc: Exception = DeadlineExpired(message)
                    else:
                        exc = EngineError(
                            f"{error.get('type', 'Error')}: {message}"
                        )
                    record.state = state
                    record.finished_wall = finished
                    record.future.set_exception(exc)
                elif state == "cancelled":
                    record.state = "cancelled"
                    record.finished_wall = finished
                    record.future.cancel()
                else:
                    # queued or running: the work never finished — it
                    # re-enters the queue (running jobs restart cheaply:
                    # their completed iterations replay from the spilled
                    # belief cache).
                    record.state = "queued"
                    primary = self._inflight.get(record.fp)
                    if primary is not None and primary.state in _LIVE_STATES:
                        record.proxy_of = primary
                        primary.proxies.append(record)
                    else:
                        self._inflight[record.fp] = record
                        self._refresh_pass_locked(record)
                        self._push_locked(record)
                        self._n_queued += 1
                    self._emit_later(post, "recovered", record)
                    self._persist_later(post, record)
                self._records[job_id] = record
            self._ids = itertools.count(max_id + 1)
            self._dispatch_locked(post)
        self._run_post(post)

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #
    def _emit_later(self, post: list, kind: str, record: _Record, detail: str = "") -> None:
        """Queue one scheduling event for emission after the lock drops.

        ``pending`` is sampled now (while the decision is fresh); the
        emission itself runs via :meth:`_run_post` so observers never
        execute under the scheduler lock on the normal path. Delivery
        reaches the service-wide observers and the affected record's
        per-job observer, if any.
        """
        if self._live_observer is None and record.observer is None:
            return
        event = SchedulerEvent(
            kind=kind,
            job_id=record.job_id,
            job=record.job,
            pending=self._n_queued,
            detail=detail,
        )

        def deliver(record_observer=record.observer) -> None:
            if self._live_observer is not None:
                self._live_observer.on_schedule(event)
            if record_observer is not None:
                record_observer.on_schedule(event)

        post.append(deliver)

    def _run_post(self, post: list) -> None:
        for action in post:
            action()
        post.clear()

    def _announce(self, result: JobResult, *, replay_iterations: bool) -> None:
        """Deliver a finished job to the observer (replaying if asked).

        Pool workers cannot call back into this process mid-job, so the
        pooled backends (and cache hits) replay ``on_iteration`` events
        here, post hoc; the serial backend already fired them live and
        only needs ``on_job``. A raising observer must not corrupt job
        bookkeeping — the result is already stored and the future
        resolved — so delivery failures are swallowed here, uniformly
        across backends (the same contract ``concurrent.futures`` gives
        done-callbacks).
        """
        if self._live_observer is None:
            return
        # Route through the swallowing wrapper so one raising event does
        # not starve the later ones — the same per-event policy the
        # serial backend's live delivery gets.
        if replay_iterations:
            for iteration in result.iterations:
                self._live_observer.on_iteration(iteration)
        self._live_observer.on_job(result)
