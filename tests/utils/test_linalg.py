"""Tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.utils.linalg import (
    is_positive_definite,
    log_det_psd,
    nearest_positive_definite,
    solve_psd,
    symmetrize,
)


def random_spd(rng, d):
    a = rng.standard_normal((d, d))
    return a @ a.T + d * np.eye(d)


class TestSymmetrize:
    def test_result_is_symmetric(self, rng):
        a = rng.standard_normal((4, 4))
        s = symmetrize(a)
        np.testing.assert_allclose(s, s.T)

    def test_symmetric_unchanged(self, rng):
        a = random_spd(rng, 3)
        np.testing.assert_allclose(symmetrize(a), a)


class TestIsPositiveDefinite:
    def test_spd(self, rng):
        assert is_positive_definite(random_spd(rng, 5))

    def test_indefinite(self):
        assert not is_positive_definite(np.diag([1.0, -1.0]))

    def test_tol_rescues_semidefinite(self):
        assert is_positive_definite(np.diag([1.0, 0.0]), tol=1e-9)


class TestNearestPositiveDefinite:
    def test_pd_passthrough(self, rng):
        a = random_spd(rng, 4)
        np.testing.assert_allclose(nearest_positive_definite(a), a)

    def test_repairs_negative_eigenvalue(self):
        a = np.diag([1.0, -0.5])
        repaired = nearest_positive_definite(a)
        assert is_positive_definite(repaired)

    def test_result_symmetric(self, rng):
        a = rng.standard_normal((5, 5))
        repaired = nearest_positive_definite(a)
        np.testing.assert_allclose(repaired, repaired.T)


class TestSolvePsd:
    def test_matches_direct_solve(self, rng):
        a = random_spd(rng, 6)
        b = rng.standard_normal(6)
        np.testing.assert_allclose(solve_psd(a, b), np.linalg.solve(a, b), rtol=1e-8)

    def test_matrix_rhs(self, rng):
        a = random_spd(rng, 4)
        b = rng.standard_normal((4, 2))
        np.testing.assert_allclose(solve_psd(a, b), np.linalg.solve(a, b), rtol=1e-8)

    def test_singular_falls_back_to_lstsq(self):
        a = np.diag([1.0, 0.0])
        b = np.array([2.0, 0.0])
        out = solve_psd(a, b)
        np.testing.assert_allclose(a @ out, b, atol=1e-10)


class TestLogDetPsd:
    def test_matches_slogdet(self, rng):
        a = random_spd(rng, 5)
        _, expected = np.linalg.slogdet(a)
        assert log_det_psd(a) == pytest.approx(expected, rel=1e-10)

    def test_identity_is_zero(self):
        assert log_det_psd(np.eye(7)) == pytest.approx(0.0, abs=1e-12)
