"""Observability-test fixtures: a live worker daemon for trace tests.

The trace-coherence tests need a real remote worker (the wire path is
what carries the trace context), so one in-thread daemon on a real
socket is shared per module — the same idiom as ``tests/dist``.
"""

import pytest

from repro.dist.worker import WorkerDaemon


@pytest.fixture(scope="module")
def worker_url():
    """One live worker daemon; yields its base URL."""
    daemon = WorkerDaemon(parallelism=2)
    handle = daemon.run_in_thread()
    yield daemon.url
    handle.stop()
