"""SI-guided search vs classical quality measures on the planted data.

The structural difference the paper argues for: SI is *subjective* — it
collapses once a pattern is assimilated, so iterating finds all three
planted subgroups. Objective measures (mean-shift z, dispersion-
corrected) re-find their favourite subgroup forever; only the SI miner
covers the planted structure.
"""

import numpy as np

from repro.baselines.beam import QualityBeamSearch
from repro.baselines.quality import DispersionCorrectedQuality, MeanShiftQuality
from repro.datasets.synthetic import make_synthetic
from repro.experiments.common import jaccard, mask_from_indices
from repro.lang.refinement import RefinementOperator
from repro.report.tables import format_table
from repro.search.miner import SubgroupDiscovery


def compare_measures(seed: int = 0):
    dataset = make_synthetic(seed)
    cluster = np.asarray(dataset.metadata["cluster"])
    operator = RefinementOperator(dataset)

    def clusters_found(masks):
        found = set()
        for mask in masks:
            scores = {k: jaccard(mask, cluster == k) for k in (1, 2, 3)}
            best = max(scores, key=scores.get)
            if scores[best] > 0.5:
                found.add(best)
        return found

    rows = []

    # SI miner: three iterations with model updates between them.
    miner = SubgroupDiscovery(dataset, seed=seed)
    si_masks = [
        mask_from_indices(it.location.indices, dataset.n_rows)
        for it in miner.run(3, kind="location")
    ]
    rows.append(("SI (iterative)", sorted(clusters_found(si_masks))))

    # Objective measures: "iterating" them means re-running the same
    # static search — they return the same best pattern every time.
    for name, quality in (
        ("mean-shift z", MeanShiftQuality(dataset.targets)),
        (
            "dispersion-corrected",
            DispersionCorrectedQuality(np.linalg.norm(dataset.targets, axis=1)),
        ),
    ):
        search = QualityBeamSearch(operator, quality)
        masks = []
        for _ in range(3):
            result = search.run()
            masks.append(mask_from_indices(result.best.indices, dataset.n_rows))
        rows.append((name, sorted(clusters_found(masks))))
    return rows


def bench_baseline_quality(benchmark, save_result):
    rows = benchmark.pedantic(compare_measures, args=(0,), rounds=1, iterations=1)
    table = format_table(
        ["measure", "planted clusters found in 3 iterations"],
        [(name, str(found)) for name, found in rows],
        title="SI vs objective quality measures (planted synthetic clusters)",
    )
    save_result("baseline_quality", table)
    results = dict(rows)
    assert results["SI (iterative)"] == [1, 2, 3]
    # Static measures cannot cover the planted structure by iteration.
    assert len(results["mean-shift z"]) <= 1
    assert len(results["dispersion-corrected"]) <= 1
