"""Chi-squared mixture approximation (Zhang, JASA 2005; Eq. 18).

Under the background model, the spread statistic is a positive linear
combination of independent chi-squared(1) variables,
``g = sum_i a_i c_i`` with ``a_i = w' Sigma_i w / |I|``. No closed form
exists for its density; Zhang's approximation matches the first three
cumulants with an affine image of a single chi-squared variable:

    g  ~  alpha * chi2(m) + beta,

    alpha = A3 / A2,
    beta  = A1 - A2^2 / A3,
    m     = A2^3 / A3^2,        where  A_k = sum_i a_i^k.

:class:`Chi2Mixture` computes the coefficients from (possibly weighted)
``a_i`` values and exposes the approximate density/distribution. The
cumulant-matching identities — ``E = alpha m + beta = A1``,
``Var = 2 alpha^2 m = 2 A2``, ``kappa_3 = 8 alpha^3 m = 8 A3`` — are
verified by the property-based test suite.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as sps

from repro.errors import ModelError

#: Lower clamp for the standardized argument ``(x - beta) / alpha``; the
#: approximation's support is ``[beta, inf)`` and values at/below the
#: boundary have zero density (infinite information content), which we cap
#: to keep downstream optimization finite.
_TINY = 1e-12


class Chi2Mixture:
    """Distribution of ``sum_i weight_i * a_i * chi2_1`` via Zhang (2005).

    Parameters
    ----------
    coefficients:
        The distinct mixture coefficients ``a_i > 0``.
    weights:
        Optional multiplicities (the block sizes); defaults to 1 each.
        ``sum_i weights_i * a_i * chi2_1`` is approximated.
    """

    def __init__(self, coefficients: np.ndarray, weights: np.ndarray | None = None) -> None:
        a = np.asarray(coefficients, dtype=float)
        if a.ndim != 1 or a.size == 0:
            raise ModelError("coefficients must be a non-empty 1-D array")
        if np.any(a <= 0.0):
            raise ModelError("all mixture coefficients must be positive")
        if weights is None:
            w = np.ones_like(a)
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != a.shape:
                raise ModelError("weights must match coefficients in shape")
            if np.any(w <= 0.0):
                raise ModelError("all weights must be positive")
        self.coefficients = a
        self.weights = w
        a1 = float(np.sum(w * a))
        a2 = float(np.sum(w * a**2))
        a3 = float(np.sum(w * a**3))
        self.alpha = a3 / a2
        self.beta = a1 - a2**2 / a3
        self.dof = a2**3 / a3**2
        self._moments = (a1, a2, a3)

    # ------------------------------------------------------------------ #
    # Exact cumulants of the mixture (not of the approximation)
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        """Exact mean ``A1`` (matched by the approximation)."""
        return self._moments[0]

    @property
    def variance(self) -> float:
        """Exact variance ``2 A2`` (matched by the approximation)."""
        return 2.0 * self._moments[1]

    @property
    def third_cumulant(self) -> float:
        """Exact third cumulant ``8 A3`` (matched by the approximation)."""
        return 8.0 * self._moments[2]

    # ------------------------------------------------------------------ #
    # Approximate distribution
    # ------------------------------------------------------------------ #
    def _standardize(self, x) -> np.ndarray:
        return (np.asarray(x, dtype=float) - self.beta) / self.alpha

    def logpdf(self, x) -> np.ndarray | float:
        """Approximate log density at ``x``.

        Computed as ``chi2(m).logpdf((x - beta)/alpha) - log(alpha)``
        — the change-of-variables form whose negative is the paper's
        Eq. 19 with the ``+ log(alpha)`` correction (DESIGN.md §2,
        correction 3). Arguments at or below ``beta`` are clamped just
        inside the support rather than returning ``-inf``.
        """
        t = np.maximum(self._standardize(x), _TINY)
        out = sps.chi2.logpdf(t, self.dof) - math.log(self.alpha)
        return float(out) if np.isscalar(x) else out

    def pdf(self, x) -> np.ndarray | float:
        """Approximate density at ``x``."""
        return np.exp(self.logpdf(x))

    def cdf(self, x) -> np.ndarray | float:
        """Approximate distribution function at ``x``."""
        t = np.maximum(self._standardize(x), 0.0)
        out = sps.chi2.cdf(t, self.dof)
        return float(out) if np.isscalar(x) else out

    def ppf(self, q) -> np.ndarray | float:
        """Approximate quantile function."""
        out = self.alpha * sps.chi2.ppf(q, self.dof) + self.beta
        return float(out) if np.isscalar(q) else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw from the *exact* mixture (for approximation-quality tests).

        Integer multiplicities expand to repeated chi2(1) draws. For
        fractional weights — weighted subgroups produce non-integer block
        weights — ``w`` i.i.d. chi2(1) variables sum to a chi2(w), which
        stays exact for any real ``w > 0``, so each coefficient draws a
        single chi2(weight) instead of being silently floored.
        """
        integral = np.equal(np.floor(self.weights), self.weights)
        if integral.all():
            reps = np.repeat(self.coefficients, self.weights.astype(int))
            draws = rng.chisquare(1.0, size=(size, reps.shape[0]))
            return draws @ reps
        draws = rng.chisquare(self.weights, size=(size, self.weights.shape[0]))
        return draws @ self.coefficients

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Chi2Mixture(alpha={self.alpha:.4g}, beta={self.beta:.4g}, "
            f"dof={self.dof:.4g})"
        )
