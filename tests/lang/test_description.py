"""Tests for conjunctive descriptions and canonicalization."""

import numpy as np
import pytest

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.errors import LanguageError
from repro.lang.conditions import EqualsCondition, NumericCondition
from repro.lang.description import Description, conjunction


@pytest.fixture()
def dataset():
    columns = [
        Column("x", AttributeKind.NUMERIC, np.arange(10.0)),
        Column("b", AttributeKind.BINARY, np.array([0.0, 1.0] * 5)),
    ]
    return Dataset("toy", columns, np.zeros((10, 1)), ["y"])


class TestBasics:
    def test_empty_is_all(self, dataset):
        description = Description()
        assert str(description) == "<all>"
        assert description.matches(dataset).all()
        assert description.coverage(dataset) == 1.0

    def test_str_joins_with_and(self):
        d = Description(
            (NumericCondition("x", "<=", 5.0), EqualsCondition("b", 1.0))
        )
        assert str(d) == "x <= 5 AND b = '1'"

    def test_len_and_iter(self):
        conds = (NumericCondition("x", "<=", 5.0), EqualsCondition("b", 1.0))
        d = Description(conds)
        assert len(d) == 2
        assert tuple(d) == conds

    def test_attributes(self):
        d = Description((NumericCondition("x", "<=", 5.0), EqualsCondition("b", 0.0)))
        assert d.attributes == {"x", "b"}

    def test_rejects_non_conditions(self):
        with pytest.raises(LanguageError):
            Description(("not a condition",))

    def test_with_condition_immutable(self):
        d = Description()
        d2 = d.with_condition(NumericCondition("x", ">=", 1.0))
        assert len(d) == 0
        assert len(d2) == 1


class TestExtension:
    def test_conjunction_intersects(self, dataset):
        d = Description(
            (NumericCondition("x", "<=", 6.0), EqualsCondition("b", 1.0))
        )
        np.testing.assert_array_equal(d.extension(dataset), [1, 3, 5])

    def test_empty_extension(self, dataset):
        d = Description(
            (NumericCondition("x", "<=", 2.0), NumericCondition("x", ">=", 5.0))
        )
        assert d.extension(dataset).size == 0


class TestCanonical:
    def test_merges_upper_bounds(self):
        d = Description(
            (NumericCondition("x", "<=", 5.0), NumericCondition("x", "<=", 3.0))
        )
        canon = d.canonical()
        assert len(canon) == 1
        assert canon.conditions[0].threshold == 3.0

    def test_merges_lower_bounds(self):
        d = Description(
            (NumericCondition("x", ">=", 1.0), NumericCondition("x", ">=", 4.0))
        )
        canon = d.canonical()
        assert len(canon) == 1
        assert canon.conditions[0].threshold == 4.0

    def test_keeps_interval(self):
        d = Description(
            (NumericCondition("x", ">=", 1.0), NumericCondition("x", "<=", 4.0))
        )
        assert len(d.canonical()) == 2

    def test_dedupes_equalities(self):
        d = Description((EqualsCondition("b", 1.0), EqualsCondition("b", 1.0)))
        assert len(d.canonical()) == 1

    def test_sorted_stable(self):
        a = Description(
            (EqualsCondition("b", 1.0), NumericCondition("a", "<=", 2.0))
        ).canonical()
        b = Description(
            (NumericCondition("a", "<=", 2.0), EqualsCondition("b", 1.0))
        ).canonical()
        assert a == b
        assert hash(a) == hash(b)

    def test_idempotent(self):
        d = Description(
            (
                NumericCondition("x", "<=", 5.0),
                NumericCondition("x", "<=", 3.0),
                EqualsCondition("b", 0.0),
            )
        )
        once = d.canonical()
        assert once.canonical() == once

    def test_extension_preserved(self, dataset):
        d = Description(
            (
                NumericCondition("x", "<=", 7.0),
                NumericCondition("x", "<=", 5.0),
                NumericCondition("x", ">=", 2.0),
            )
        )
        np.testing.assert_array_equal(
            d.matches(dataset), d.canonical().matches(dataset)
        )


class TestContradiction:
    def test_empty_interval(self):
        d = Description(
            (NumericCondition("x", "<=", 1.0), NumericCondition("x", ">=", 2.0))
        )
        assert d.is_contradictory()

    def test_touching_interval_ok(self):
        d = Description(
            (NumericCondition("x", "<=", 2.0), NumericCondition("x", ">=", 2.0))
        )
        assert not d.is_contradictory()

    def test_conflicting_equalities(self):
        d = Description((EqualsCondition("b", 0.0), EqualsCondition("b", 1.0)))
        assert d.is_contradictory()

    def test_consistent(self):
        d = Description((EqualsCondition("b", 1.0), NumericCondition("x", "<=", 3.0)))
        assert not d.is_contradictory()


class TestConjunctionHelper:
    def test_builds_canonical(self):
        d = conjunction(
            [NumericCondition("x", "<=", 5.0), NumericCondition("x", "<=", 3.0)]
        )
        assert len(d) == 1
