"""Shared helpers for the experiment modules."""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import Dataset
from repro.interest.dl import DLParams
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery

#: The paper's search settings (§III): beam 40, depth 4, log 150, four
#: percentile split points.
PAPER_CONFIG = SearchConfig()

#: The paper's DL weights (Remark 1): gamma = 0.1, eta = 1.
PAPER_DL = DLParams()


def make_miner(
    dataset: Dataset,
    *,
    config: SearchConfig = PAPER_CONFIG,
    dl_params: DLParams = PAPER_DL,
    seed: int = 0,
) -> SubgroupDiscovery:
    """A miner configured exactly like the paper's experiments."""
    return SubgroupDiscovery(dataset, config=config, dl_params=dl_params, seed=seed)


def jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two boolean masks (planted-vs-found checks)."""
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    union = float(np.logical_or(a, b).sum())
    if union == 0.0:
        return 1.0
    return float(np.logical_and(a, b).sum()) / union


def mask_from_indices(indices: np.ndarray, n_rows: int) -> np.ndarray:
    """Boolean mask from a sorted index array."""
    mask = np.zeros(n_rows, dtype=bool)
    mask[np.asarray(indices, dtype=int)] = True
    return mask
