"""Classical subgroup-discovery quality measures.

All measures implement :class:`QualityMeasure` — a callable from a
subgroup mask to a score — so they can drive the same beam search as the
SI measure and be compared head-to-head on the planted synthetic data
(the ``bench_baseline_quality`` benchmark).

These are *objective* measures: unlike SI they do not change as patterns
are assimilated, so iterating them re-finds the same subgroup over and
over — exactly the redundancy problem the paper's subjective approach
solves.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ModelError


class QualityMeasure(abc.ABC):
    """Scores subgroups of a fixed target matrix."""

    def __init__(self, targets: np.ndarray) -> None:
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets[:, None]
        if targets.shape[0] < 2:
            raise ModelError("quality measures need at least two rows")
        self.targets = targets
        self.n_rows = targets.shape[0]
        self.global_mean = targets.mean(axis=0)
        centered = targets - self.global_mean
        self.global_cov = (centered.T @ centered) / self.n_rows

    def _subgroup(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self.n_rows,):
            raise ModelError(
                f"mask must be boolean of shape ({self.n_rows},), got {mask.shape}"
            )
        sub = self.targets[mask]
        if sub.shape[0] == 0:
            raise ModelError("subgroup is empty")
        return sub

    @abc.abstractmethod
    def __call__(self, mask: np.ndarray) -> float:
        """Quality of the subgroup selected by ``mask`` (higher = better)."""


class MeanShiftQuality(QualityMeasure):
    """z-score of the subgroup mean under the global distribution.

    ``sqrt(|I|) * || mean_I - mean || `` in the Mahalanobis norm of the
    global covariance — the classical test statistic for "this subgroup's
    mean is not what random sampling would give". For one target this is
    the familiar ``sqrt(n) |mu_I - mu| / sigma``; unlike SI it has no
    notion of evolving user knowledge.
    """

    def __init__(self, targets: np.ndarray) -> None:
        super().__init__(targets)
        jitter = 1e-12 * float(np.trace(self.global_cov)) / self.global_cov.shape[0]
        self._precision = np.linalg.inv(
            self.global_cov + jitter * np.eye(self.global_cov.shape[0])
        )

    def __call__(self, mask: np.ndarray) -> float:
        sub = self._subgroup(mask)
        diff = sub.mean(axis=0) - self.global_mean
        maha = float(diff @ self._precision @ diff)
        return float(np.sqrt(sub.shape[0] * maha))


class WRAccQuality(QualityMeasure):
    """Weighted Relative Accuracy on a thresholded single target.

    The standard nominal-SD measure: binarize the target at a threshold
    (default: the global mean) and score ``(|I|/n) * (p_I - p)`` where
    ``p`` is the positive rate. Only defined for one target; it is the
    measure Kontonasios et al. (ICDM 2011) assess with MaxEnt p-values,
    cited by the paper as targeting a different pattern syntax.
    """

    def __init__(self, targets: np.ndarray, *, threshold: float | None = None) -> None:
        super().__init__(targets)
        if self.targets.shape[1] != 1:
            raise ModelError("WRAcc is defined for a single target attribute")
        values = self.targets[:, 0]
        self.threshold = float(values.mean()) if threshold is None else float(threshold)
        self._positive = values > self.threshold
        self._base_rate = float(self._positive.mean())

    def __call__(self, mask: np.ndarray) -> float:
        self._subgroup(mask)  # validates
        coverage = float(mask.mean())
        positive_rate = float(self._positive[mask].mean())
        return coverage * (positive_rate - self._base_rate)


class DispersionCorrectedQuality(QualityMeasure):
    """Dispersion-corrected mean-shift in the spirit of Boley et al. (2017).

    ``(|I|/n)^a * (mu_I - mu) / (s_I + s/n_I-regularizer)`` rewards
    subgroups whose target mean is shifted *and* whose internal
    dispersion is small: a large shift with huge internal variance is a
    poorly "consistent statement" about the data. We use the additive
    form ``coverage^a * max(shift - b * sd_I, 0)`` with the paper's
    defaults a=1, b=1 — the tight-optimistic-estimator variant's
    objective, up to constants. Single-target only, positive shifts
    (mining for low targets = negate the target first).
    """

    def __init__(self, targets: np.ndarray, *, coverage_power: float = 1.0,
                 dispersion_weight: float = 1.0) -> None:
        super().__init__(targets)
        if self.targets.shape[1] != 1:
            raise ModelError("dispersion-corrected quality needs a single target")
        if coverage_power < 0 or dispersion_weight < 0:
            raise ModelError("coverage_power and dispersion_weight must be >= 0")
        self.coverage_power = coverage_power
        self.dispersion_weight = dispersion_weight

    def __call__(self, mask: np.ndarray) -> float:
        sub = self._subgroup(mask)[:, 0]
        coverage = float(mask.mean())
        shift = float(sub.mean() - self.global_mean[0])
        dispersion = float(sub.std())
        corrected = shift - self.dispersion_weight * dispersion
        return coverage**self.coverage_power * max(corrected, 0.0)
