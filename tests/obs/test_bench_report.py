"""The shared benchmark envelope and the cross-tier report merger.

``benchmarks/`` is not a package; the modules are loaded off its
directory the same way the benches themselves import ``bench_schema``.
"""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = str(Path(__file__).resolve().parents[2] / "benchmarks")
if BENCHMARKS_DIR not in sys.path:
    sys.path.insert(0, BENCHMARKS_DIR)

import bench_report  # noqa: E402
import bench_schema  # noqa: E402


class TestEnvelope:
    def test_header_leads_and_payload_is_untouched(self):
        document = bench_schema.envelope({"benchmark": "server", "p50": 1.5})
        keys = list(document)
        assert keys[:3] == ["schema_version", "git_rev", "generated_at"]
        assert document["schema_version"] == bench_schema.BENCH_SCHEMA
        assert document["benchmark"] == "server"
        assert document["p50"] == 1.5

    def test_git_rev_is_stamped_inside_this_repo(self):
        document = bench_schema.envelope({})
        assert document["git_rev"]  # the test runs inside the repo
        assert document["generated_at"].startswith("20")

    def test_tracked_artifacts_carry_the_envelope(self):
        for filename in bench_schema.BENCH_FILES:
            path = bench_schema.REPO_ROOT / filename
            if not path.exists():
                continue
            document = json.loads(path.read_text())
            assert document["schema_version"] == bench_schema.BENCH_SCHEMA, (
                f"{filename} predates the bench envelope; re-run it"
            )


class TestMerge:
    def _artifact(self, name, **payload):
        return bench_schema.envelope({"benchmark": name, **payload})

    def test_merges_and_lists_missing(self, tmp_path):
        (tmp_path / "BENCH_server.json").write_text(
            json.dumps(self._artifact("server", p50=2.0))
        )
        report = bench_report.merge(bench_report.load_artifacts(tmp_path))
        assert report["schema_version"] == bench_schema.BENCH_SCHEMA
        assert set(report["benchmarks"]) == {"server"}
        assert report["missing"] == [
            "BENCH_engine_parallel.json",
            "BENCH_dist.json",
        ]

    def test_refuses_mixed_schema_versions(self, tmp_path):
        (tmp_path / "BENCH_server.json").write_text(
            json.dumps(self._artifact("server"))
        )
        stale = self._artifact("dist")
        stale["schema_version"] = 0
        (tmp_path / "BENCH_dist.json").write_text(json.dumps(stale))
        with pytest.raises(SystemExit, match="mixed schema versions"):
            bench_report.merge(bench_report.load_artifacts(tmp_path))

    def test_unreadable_artifact_is_skipped(self, tmp_path, capsys):
        (tmp_path / "BENCH_server.json").write_text("{not json")
        artifacts = bench_report.load_artifacts(tmp_path)
        assert artifacts == {}
        assert "skipping BENCH_server.json" in capsys.readouterr().err

    def test_format_report_names_every_section(self, tmp_path):
        (tmp_path / "BENCH_dist.json").write_text(
            json.dumps(self._artifact("dist", rtt_ms=3.0))
        )
        report = bench_report.merge(bench_report.load_artifacts(tmp_path))
        text = bench_report.format_report(report)
        assert "bench report" in text
        assert "dist" in text
        assert "(missing: BENCH_server.json)" in text

    def test_main_writes_the_json_artifact(self, tmp_path, capsys):
        (tmp_path / "BENCH_server.json").write_text(
            json.dumps(self._artifact("server"))
        )
        out = tmp_path / "merged.json"
        code = bench_report.main(["--root", str(tmp_path), "--out", str(out)])
        assert code == 0
        merged = json.loads(out.read_text())
        assert merged["schema_version"] == bench_schema.BENCH_SCHEMA
        assert "server" in merged["benchmarks"]
