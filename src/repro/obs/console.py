"""The scrape-side of the observability loop: ``sisd top`` and admin.

Everything here consumes the *exposition format*, not in-process
objects: the dashboard and the usage report work identically against a
:class:`~repro.server.MiningServer`, a worker daemon, or a router,
local or remote, because all three serve the same ``GET /metrics``
Prometheus text. Transport is stdlib ``http.client`` (matching
:mod:`repro.client`), parsing is
:func:`repro.obs.metrics.parse_prometheus`.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any, Mapping
from urllib.parse import urlsplit

from repro.errors import ObsError
from repro.obs.metrics import parse_prometheus
from repro.report.tables import format_table

__all__ = [
    "fetch_text",
    "post_json",
    "render_dashboard",
    "scrape",
    "tenant_usage",
    "usage_table",
]

#: Sample name -> short dashboard row label, in display order.
_DASHBOARD_GAUGES = (
    ("sisd_queue_depth", "queued jobs"),
    ("sisd_events_subscribers", "SSE subscribers"),
    ("sisd_events_dropped", "events dropped"),
    ("sisd_result_cache_hit_ratio", "result-cache hit ratio"),
    ("sisd_belief_cache_hit_ratio", "belief-cache hit ratio"),
    ("sisd_store_records", "store records"),
    ("sisd_store_journal_lag", "store journal lag"),
)

#: Histogram families worth a latency row: (family, row label).
_DASHBOARD_HISTOGRAMS = (
    ("sisd_queue_wait_seconds", "queue wait"),
    ("sisd_beam_phase_seconds", "beam phase"),
    ("sisd_step_phase_seconds", "miner step phase"),
    ("sisd_dist_shard_rtt_seconds", "dist shard RTT"),
    ("sisd_worker_shard_seconds", "worker shard"),
)

#: Counter families summed into the throughput block.
_DASHBOARD_COUNTERS = (
    ("sisd_jobs_submitted_total", "jobs submitted"),
    ("sisd_jobs_finished_total", "jobs finished"),
    ("sisd_jobs_rejected_total", "jobs rejected"),
    ("sisd_jobs_preempted_total", "jobs preempted"),
    ("sisd_miner_steps_total", "miner steps"),
    ("sisd_beam_candidates_total", "beam candidates"),
    ("sisd_dist_shards_total", "dist shards"),
    ("sisd_dist_failovers_total", "dist failovers"),
    ("sisd_http_requests_total", "http requests"),
)


def _split_url(url: str) -> tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.hostname is None:
        raise ObsError(f"cannot parse server url {url!r}")
    return parts.hostname, parts.port or 80


def fetch_text(
    url: str,
    path: str,
    *,
    timeout: float = 10.0,
    token: str | None = None,
) -> str:
    """GET one path and return the raw (undecoded-as-JSON) body text.

    The client module's exchange helper insists on JSON documents; the
    metrics endpoint serves Prometheus text, hence this raw twin.
    """
    host, port = _split_url(url)
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {"Accept": "*/*"}
        if token is not None:
            headers["Authorization"] = f"Bearer {token}"
        conn.request("GET", path, headers=headers)
        response = conn.getresponse()
        body = response.read().decode("utf-8", errors="replace")
        if response.status != 200:
            raise ObsError(
                f"GET {url}{path} answered {response.status}: {body[:200]}"
            )
        return body
    except OSError as exc:
        raise ObsError(f"cannot reach {url}{path}: {exc}") from exc
    finally:
        conn.close()


def post_json(
    url: str,
    path: str,
    *,
    timeout: float = 30.0,
    token: str | None = None,
) -> dict:
    """POST (no body) one admin path and return the decoded document."""
    host, port = _split_url(url)
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {"Accept": "application/json"}
        if token is not None:
            headers["Authorization"] = f"Bearer {token}"
        conn.request("POST", path, headers=headers)
        response = conn.getresponse()
        body = response.read().decode("utf-8", errors="replace")
        try:
            document = json.loads(body) if body else {}
        except ValueError as exc:
            raise ObsError(
                f"POST {url}{path} answered undecodable JSON: {body[:200]}"
            ) from exc
        if response.status >= 400:
            error = document.get("error", {})
            message = error.get("message", body[:200])
            raise ObsError(f"POST {url}{path} answered {response.status}: {message}")
        return document
    except OSError as exc:
        raise ObsError(f"cannot reach {url}{path}: {exc}") from exc
    finally:
        conn.close()


def scrape(
    url: str, *, timeout: float = 10.0, token: str | None = None
) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Fetch and parse one endpoint's ``/metrics`` exposition."""
    return parse_prometheus(fetch_text(url, "/metrics", timeout=timeout, token=token))


Samples = Mapping[str, list[tuple[Mapping[str, str], float]]]


def _total(samples: Samples, name: str) -> float:
    return sum(value for _, value in samples.get(name, ()))


def _series(samples: Samples, name: str) -> list[tuple[Mapping[str, str], float]]:
    return list(samples.get(name, ()))


def render_dashboard(samples: Samples, *, source: str = "") -> str:
    """One ``sisd top`` frame: throughput, gauges, and latency tables.

    Pure text-in/text-out (samples come from :func:`scrape` or any
    parsed exposition), so tests and the live loop share one renderer.
    """
    blocks: list[str] = []
    counter_rows = [
        (label, f"{_total(samples, name):g}")
        for name, label in _DASHBOARD_COUNTERS
        if name in samples
    ]
    if counter_rows:
        blocks.append(
            format_table(
                ["counter", "total"],
                counter_rows,
                title=f"sisd top — {source}" if source else "sisd top",
            )
        )
    gauge_rows = [
        (label, f"{_total(samples, name):g}")
        for name, label in _DASHBOARD_GAUGES
        if name in samples
    ]
    if gauge_rows:
        blocks.append(format_table(["gauge", "value"], gauge_rows))
    latency_rows = []
    for family, label in _DASHBOARD_HISTOGRAMS:
        per_label: dict[str, tuple[float, float]] = {}
        for labels, value in _series(samples, f"{family}_sum"):
            key = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            total, count = per_label.get(key, (0.0, 0.0))
            per_label[key] = (total + value, count)
        for labels, value in _series(samples, f"{family}_count"):
            key = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            total, count = per_label.get(key, (0.0, 0.0))
            per_label[key] = (total, count + value)
        for key, (total, count) in sorted(per_label.items()):
            if count:
                latency_rows.append(
                    (label, key, f"{count:g}", f"{1000.0 * total / count:.2f}ms")
                )
    if latency_rows:
        blocks.append(
            format_table(["phase", "labels", "events", "mean"], latency_rows)
        )
    if not blocks:
        return "(no sisd metrics exposed yet)"
    return "\n\n".join(blocks)


def tenant_usage(samples: Samples) -> list[tuple[str, float, float, float]]:
    """Per-tenant ``(tenant, submitted, rejected, preempted)`` rows.

    Tenants appearing in any of the three families get a row; the
    sort is by submitted count descending, then name.
    """
    usage: dict[str, dict[str, float]] = {}
    for family, column in (
        ("sisd_jobs_submitted_total", "submitted"),
        ("sisd_jobs_rejected_total", "rejected"),
        ("sisd_jobs_preempted_total", "preempted"),
    ):
        for labels, value in _series(samples, family):
            tenant = labels.get("tenant", "-")
            row = usage.setdefault(
                tenant, {"submitted": 0.0, "rejected": 0.0, "preempted": 0.0}
            )
            row[column] += value
    rows = [
        (tenant, row["submitted"], row["rejected"], row["preempted"])
        for tenant, row in usage.items()
    ]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def usage_table(samples: Samples, *, source: str = "") -> str:
    """The rendered ``sisd admin usage`` report."""
    rows: list[tuple[Any, ...]] = [
        (tenant, f"{submitted:g}", f"{rejected:g}", f"{preempted:g}")
        for tenant, submitted, rejected, preempted in tenant_usage(samples)
    ]
    if not rows:
        rows = [("(no submissions yet)", "", "", "")]
    return format_table(
        ["tenant", "submitted", "rejected", "preempted"],
        rows,
        title=f"tenant usage — {source}" if source else "tenant usage",
    )
