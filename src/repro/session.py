"""Interactive mining sessions: history, undo, and text reports.

The paper frames mining as a dialogue whose state is the background
distribution; :class:`MiningSession` makes that dialogue a first-class
object. It wraps :class:`~repro.search.miner.SubgroupDiscovery` with

- a full history of shown patterns,
- snapshot/undo (step back without refitting from scratch),
- a formatted session report, and
- JSON save/resume of the belief state (via :mod:`repro.persist`).

This is the library-level groundwork for the SIDE-style interactive
exploration the paper's §V plans to integrate with.
"""

from __future__ import annotations

from pathlib import Path

from repro.datasets.schema import Dataset
from repro.errors import SearchError
from repro.interest.dl import DLParams
from repro.persist import (
    constraint_to_dict,
    load_json,
    model_from_dict,
    model_to_dict,
    save_json,
)
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.search.results import MiningIteration


class MiningSession:
    """A resumable, undoable iterative-mining dialogue over one dataset."""

    def __init__(
        self,
        dataset: Dataset,
        *,
        config: SearchConfig = SearchConfig(),
        dl_params: DLParams = DLParams(),
        seed=0,
    ) -> None:
        self.dataset = dataset
        self.miner = SubgroupDiscovery(
            dataset, config=config, dl_params=dl_params, seed=seed
        )
        self._snapshots = [self.miner.model.copy()]

    # ------------------------------------------------------------------ #
    # Dialogue
    # ------------------------------------------------------------------ #
    @property
    def history(self) -> list[MiningIteration]:
        return list(self.miner.history)

    @property
    def n_iterations(self) -> int:
        return len(self.miner.history)

    def step(self, *, kind: str = "location", sparsity: int | None = None) -> MiningIteration:
        """One mining iteration; the pre-step model is snapshotted."""
        snapshot = self.miner.model.copy()
        iteration = self.miner.step(kind=kind, sparsity=sparsity)
        self._snapshots.append(snapshot)
        return iteration

    def undo(self) -> MiningIteration:
        """Forget the last shown pattern(s); returns the undone iteration.

        Restores the exact pre-step belief state from the snapshot, so
        undo is O(model size), not a refit.
        """
        if not self.miner.history:
            raise SearchError("nothing to undo")
        undone = self.miner.history.pop()
        self.miner.model = self._snapshots.pop()
        return undone

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def report(self) -> str:
        """Human-readable transcript of the session so far."""
        lines = [
            f"Mining session on {self.dataset.name!r} "
            f"({self.dataset.n_rows} rows, {self.dataset.n_targets} targets)",
            f"iterations: {self.n_iterations}, "
            f"model blocks: {self.miner.model.n_blocks}, "
            f"constraints: {len(self.miner.model.constraints)}",
        ]
        for iteration in self.miner.history:
            lines.append(f"[{iteration.index}] {iteration.location}")
            if iteration.spread is not None:
                lines.append(f"    {iteration.spread}")
        if self.miner.model.constraints:
            lines.append(
                f"max constraint residual: {self.miner.model.max_residual():.2e}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the belief state (not the dataset) to JSON."""
        document = {
            "dataset_name": self.dataset.name,
            "n_iterations": self.n_iterations,
            "model": model_to_dict(self.miner.model),
            "shown": [
                constraint_to_dict(c) for c in self.miner.model.constraints
            ],
        }
        return save_json(document, path)

    @classmethod
    def resume(
        cls,
        dataset: Dataset,
        path: str | Path,
        *,
        config: SearchConfig = SearchConfig(),
        dl_params: DLParams = DLParams(),
        seed=0,
    ) -> "MiningSession":
        """Rebuild a session's belief state from a saved document.

        The iteration history (descriptions, scores) is not persisted —
        only the belief state matters for what gets mined next — so the
        resumed session starts with an empty history but the saved model.
        """
        document = load_json(path)
        if document.get("dataset_name") != dataset.name:
            raise SearchError(
                f"saved session is for dataset {document.get('dataset_name')!r}, "
                f"got {dataset.name!r}"
            )
        session = cls(dataset, config=config, dl_params=dl_params, seed=seed)
        model = model_from_dict(document["model"])
        if model.n_rows != dataset.n_rows:
            raise SearchError("saved model row count does not match dataset")
        session.miner.model = model
        session._snapshots = [model.copy()]
        return session
