"""Parallel mining engine: executors, caching, jobs, and the service.

The engine separates *what to mine* (:class:`~repro.engine.jobs.MiningJob`
specs) from *how it executes* (:class:`~repro.engine.executor.Executor`
backends), and layers a submit/status/result/cancel service on top:

- :mod:`repro.engine.executor` — ``SerialExecutor`` / ``ProcessExecutor``
  backends injected into the beam and spread searches.
- :mod:`repro.engine.shm` — zero-copy shared-memory transport for the
  large arrays those backends ship (``ArrayStore`` + ``publish``).
- :mod:`repro.engine.cache` — bounded LRU caches and spec fingerprints.
- :mod:`repro.engine.jobs` — declarative job specs + the deterministic
  multi-job runner.
- :mod:`repro.engine.service` — ``MiningService``, a bounded worker pool
  with result caching.

Exports resolve lazily (PEP 562) so the search modules can import the
executor backends without dragging in the job layer, which itself
depends on the search modules.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS = {
    "Executor": "repro.engine.executor",
    "ExecutorSession": "repro.engine.executor",
    "SerialExecutor": "repro.engine.executor",
    "ProcessExecutor": "repro.engine.executor",
    "resolve_executor": "repro.engine.executor",
    "ArrayStore": "repro.engine.shm",
    "SharedArrayRef": "repro.engine.shm",
    "CacheStats": "repro.engine.cache",
    "LRUCache": "repro.engine.cache",
    "fingerprint": "repro.engine.cache",
    "dataset_fingerprint": "repro.engine.cache",
    "dataset_content_fingerprint": "repro.engine.cache",
    "load_dataset_cached": "repro.engine.cache",
    "DATASET_CACHE": "repro.engine.cache",
    "BeliefCache": "repro.engine.cache",
    "CachedStep": "repro.engine.cache",
    "BELIEF_CACHE": "repro.engine.cache",
    "MiningJob": "repro.engine.jobs",
    "JobResult": "repro.engine.jobs",
    "JobFailure": "repro.engine.jobs",
    "run_job": "repro.engine.jobs",
    "run_jobs": "repro.engine.jobs",
    "JobStatus": "repro.engine.service",
    "MiningService": "repro.engine.service",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
