"""EventHub contract: sequencing, resume, bounded queues, thread safety."""

import asyncio
import threading

import pytest

from repro.server.hub import EventHub


def _drain(subscription):
    got = []
    while True:
        try:
            entry = subscription.get_nowait()
        except asyncio.QueueEmpty:
            return got
        if entry is None:
            return got
        got.append(entry)


class TestSequencing:
    def test_publish_stamps_monotonic_sequences(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            assert [hub.publish({"n": i}) for i in range(5)] == [1, 2, 3, 4, 5]
            assert hub.latest_seq == 5

        asyncio.run(main())

    def test_live_delivery_in_order(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            sub = hub.subscribe()
            for i in range(4):
                hub.publish({"n": i})
            got = [await asyncio.wait_for(sub.get(), 5) for _ in range(4)]
            assert [seq for seq, _ in got] == [1, 2, 3, 4]
            assert [event["n"] for _, event in got] == [0, 1, 2, 3]
            sub.close()

        asyncio.run(main())


class TestResume:
    def test_subscribe_since_replays_only_newer(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            for i in range(6):
                hub.publish({"n": i})
            sub = hub.subscribe(since=4)
            got = [await sub.get() for _ in range(2)]
            assert [seq for seq, _ in got] == [5, 6]
            # ...and live events continue after the backlog.
            hub.publish({"n": 6})
            seq, _ = await asyncio.wait_for(sub.get(), 5)
            assert seq == 7
            sub.close()

        asyncio.run(main())

    def test_resume_older_than_history_starts_at_oldest_retained(self):
        async def main():
            hub = EventHub(history=3)
            hub.bind(asyncio.get_running_loop())
            for i in range(10):
                hub.publish({"n": i})
            sub = hub.subscribe(since=0)
            got = [await sub.get() for _ in range(3)]
            assert [seq for seq, _ in got] == [8, 9, 10]
            sub.close()

        asyncio.run(main())

    def test_no_gap_between_snapshot_and_live(self):
        # Subscribing while a publisher thread hammers the hub must not
        # lose or duplicate any sequence number at the backlog/live seam.
        async def main():
            hub = EventHub(history=10_000, queue_maxsize=10_000)
            loop = asyncio.get_running_loop()
            hub.bind(loop)
            total = 3000

            def pump():
                for _ in range(total):
                    hub.publish({"x": 1})

            thread = threading.Thread(target=pump)
            thread.start()
            try:
                await asyncio.sleep(0.005)
                sub = hub.subscribe(since=0)
            finally:
                await loop.run_in_executor(None, thread.join)
            await asyncio.sleep(0.05)  # let queued fan-out callbacks run
            seqs = [seq for seq, _ in _drain(sub)]
            assert seqs, "nothing delivered"
            assert seqs == sorted(set(seqs)), "duplicates or disorder"
            assert seqs == list(range(seqs[0], seqs[-1] + 1)), "gap at seam"
            assert seqs[-1] == total
            sub.close()

        asyncio.run(main())


class TestBoundedQueues:
    def test_slow_consumer_drops_oldest_first(self):
        async def main():
            hub = EventHub(queue_maxsize=3)
            hub.bind(asyncio.get_running_loop())
            sub = hub.subscribe()
            for i in range(10):
                hub.publish({"n": i})
            await asyncio.sleep(0.05)
            got = _drain(sub)
            assert [seq for seq, _ in got] == [8, 9, 10]
            assert sub.dropped == 7
            assert hub.stats()["dropped"] == 7
            sub.close()

        asyncio.run(main())

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            EventHub(history=0)
        with pytest.raises(ValueError):
            EventHub(queue_maxsize=0)


class TestThreadSafety:
    def test_concurrent_publishers_never_tear_the_sequence(self):
        async def main():
            hub = EventHub(history=10_000, queue_maxsize=10_000)
            hub.bind(asyncio.get_running_loop())
            sub = hub.subscribe()

            def worker(k):
                for i in range(100):
                    hub.publish({"k": k, "i": i})

            threads = [
                threading.Thread(target=worker, args=(k,)) for k in range(4)
            ]
            for thread in threads:
                thread.start()
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: [t.join() for t in threads]
            )
            await asyncio.sleep(0.1)
            got = _drain(sub)
            seqs = [seq for seq, _ in got]
            assert len(got) == 400
            assert seqs == list(range(1, 401))
            assert hub.latest_seq == 400
            sub.close()

        asyncio.run(main())


class TestShutdown:
    def test_close_wakes_blocked_subscribers(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            sub = hub.subscribe()

            async def closer():
                await asyncio.sleep(0.02)
                hub.close()

            task = asyncio.ensure_future(closer())
            assert await asyncio.wait_for(sub.get(), 5) is None
            await task

        asyncio.run(main())

    def test_publish_after_close_is_inert(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            latest = hub.publish({"n": 0})
            hub.close()
            assert hub.publish({"n": 1}) == latest
            assert hub.latest_seq == latest

        asyncio.run(main())

    def test_subscribe_after_close_ends_immediately(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            hub.close()
            sub = hub.subscribe()
            assert await asyncio.wait_for(sub.get(), 5) is None

        asyncio.run(main())


class TestJobFilteredSubscriptions:
    def test_foreign_floods_cannot_evict_a_filtered_jobs_events(self):
        async def main():
            hub = EventHub(queue_maxsize=3)
            hub.bind(asyncio.get_running_loop())
            sub = hub.subscribe(job_id="job-0002")
            # A flood from another job far beyond the queue bound...
            for i in range(50):
                hub.publish({"job_id": "job-0001", "n": i})
            # ...then this job's few events.
            mine = [hub.publish({"job_id": "job-0002", "n": i}) for i in range(2)]
            await asyncio.sleep(0.05)
            got = _drain(sub)
            # Only the filtered job's events entered the queue: nothing
            # was dropped, despite 50 foreign events against maxsize 3.
            assert [seq for seq, _ in got] == mine
            assert sub.dropped == 0
            sub.close()

        asyncio.run(main())

    def test_filtered_backlog_replay(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            hub.publish({"job_id": "a", "n": 0})
            keep = hub.publish({"job_id": "b", "n": 1})
            hub.publish({"job_id": "a", "n": 2})
            sub = hub.subscribe(since=0, job_id="b")
            seq, event = await sub.get()
            assert (seq, event["n"]) == (keep, 1)
            sub.close()

        asyncio.run(main())
