"""Tests for the Theorem 1/2 update math, including KL optimality."""

import numpy as np
import pytest
from scipy import optimize

from repro.errors import ModelError
from repro.model.gaussian import kl_divergence
from repro.model.updates import (
    location_multiplier,
    solve_spread_multiplier,
    spread_block_update,
    spread_constraint_gap,
)


def random_spd(rng, d):
    a = rng.standard_normal((d, d))
    return a @ a.T + d * np.eye(d)


class TestLocationMultiplier:
    def test_uniform_cov_reduces_to_paper_formula(self, rng):
        """With equal covariances, mu + Sigma*lam == mu + (target - mean_mu)."""
        d = 3
        cov = random_spd(rng, d)
        means = [rng.standard_normal(d) for _ in range(4)]
        counts = np.array([3.0, 1.0, 2.0, 5.0])
        target = rng.standard_normal(d)
        lam = location_multiplier([cov] * 4, counts, means, target)
        weighted_mean = sum(c * m for c, m in zip(counts, means)) / counts.sum()
        np.testing.assert_allclose(cov @ lam, target - weighted_mean, rtol=1e-8)

    def test_constraint_satisfied_with_mixed_covs(self, rng):
        d = 2
        covs = [random_spd(rng, d) for _ in range(3)]
        means = [rng.standard_normal(d) for _ in range(3)]
        counts = np.array([2.0, 4.0, 1.0])
        target = rng.standard_normal(d)
        lam = location_multiplier(covs, counts, means, target)
        new_means = [m + c @ lam for m, c in zip(means, covs)]
        achieved = sum(
            cnt * nm for cnt, nm in zip(counts, new_means)
        ) / counts.sum()
        np.testing.assert_allclose(achieved, target, rtol=1e-8)

    def test_empty_extension_rejected(self, rng):
        with pytest.raises(ModelError, match="non-empty"):
            location_multiplier([np.eye(2)], np.array([0.0]), [np.zeros(2)], np.zeros(2))


class TestSpreadGap:
    def test_monotone_decreasing(self, rng):
        s = np.abs(rng.standard_normal(4)) + 0.1
        e = rng.standard_normal(4)
        counts = np.abs(rng.standard_normal(4)) + 1.0
        lams = np.linspace(-0.5 / s.max(), 5.0, 50)
        values = [spread_constraint_gap(l, s, e, counts, 10.0, 1.0) for l in lams]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_out_of_domain_rejected(self):
        s = np.array([2.0])
        with pytest.raises(ModelError, match="domain"):
            spread_constraint_gap(-1.0, s, np.zeros(1), np.ones(1), 1.0, 1.0)


class TestSolveSpreadMultiplier:
    def test_analytic_case(self):
        """All means centred, uniform s: lam = 1/v - 1/s."""
        s = np.array([2.0])
        e = np.array([0.0])
        counts = np.array([10.0])
        variance = 0.5
        lam = solve_spread_multiplier(s, e, counts, 10.0, variance)
        assert lam == pytest.approx(1.0 / variance - 1.0 / 2.0, rel=1e-8)

    def test_inflating_variance_gives_negative_lambda(self):
        s = np.array([1.0])
        lam = solve_spread_multiplier(s, np.zeros(1), np.array([5.0]), 5.0, 3.0)
        assert lam < 0.0
        assert lam > -1.0  # stays in the feasible domain

    def test_constraint_satisfied_random(self, rng):
        for _ in range(10):
            k = rng.integers(1, 5)
            s = np.abs(rng.standard_normal(k)) + 0.2
            e = rng.standard_normal(k)
            counts = rng.integers(1, 20, size=k).astype(float)
            size = counts.sum()
            variance = float(np.abs(rng.standard_normal()) + 0.1)
            lam = solve_spread_multiplier(s, e, counts, size, variance)
            gap = spread_constraint_gap(lam, s, e, counts, size, variance)
            assert gap == pytest.approx(0.0, abs=1e-7 * size * variance)

    def test_shape_mismatch(self):
        with pytest.raises(ModelError, match="matching"):
            solve_spread_multiplier(np.ones(2), np.ones(3), np.ones(2), 2.0, 1.0)

    def test_nonpositive_variance(self):
        with pytest.raises(ModelError, match="positive"):
            solve_spread_multiplier(np.ones(1), np.zeros(1), np.ones(1), 1.0, 0.0)


class TestSpreadBlockUpdate:
    def test_variance_along_w_shrinks_for_positive_lambda(self, rng):
        cov = random_spd(rng, 3)
        w = np.array([1.0, 0.0, 0.0])
        _, new_cov = spread_block_update(np.zeros(3), cov, w, np.zeros(3), 2.0)
        assert w @ new_cov @ w < w @ cov @ w

    def test_sherman_morrison_identity(self, rng):
        """new_cov must equal inv(inv(cov) + lam * w w')."""
        cov = random_spd(rng, 3)
        w = rng.standard_normal(3)
        w /= np.linalg.norm(w)
        lam = 0.7
        _, new_cov = spread_block_update(np.zeros(3), cov, w, np.zeros(3), lam)
        expected = np.linalg.inv(np.linalg.inv(cov) + lam * np.outer(w, w))
        np.testing.assert_allclose(new_cov, expected, rtol=1e-8)

    def test_mean_moves_toward_center(self, rng):
        cov = np.eye(2)
        mean = np.array([2.0, 0.0])
        center = np.zeros(2)
        w = np.array([1.0, 0.0])
        new_mean, _ = spread_block_update(mean, cov, w, center, 1.0)
        assert abs(new_mean[0]) < abs(mean[0])

    def test_pd_destruction_rejected(self):
        cov = np.eye(2)
        w = np.array([1.0, 0.0])
        with pytest.raises(ModelError, match="positive-definiteness"):
            spread_block_update(np.zeros(2), cov, w, np.zeros(2), -1.5)

    def test_orthogonal_directions_untouched(self, rng):
        cov = np.diag([2.0, 3.0])
        w = np.array([1.0, 0.0])
        _, new_cov = spread_block_update(np.zeros(2), cov, w, np.zeros(2), 1.0)
        # Variance along e2 is unchanged; covariance stays diagonal.
        assert new_cov[1, 1] == pytest.approx(3.0)
        assert new_cov[0, 1] == pytest.approx(0.0, abs=1e-12)


class TestKLOptimality:
    """The closed-form updates must be the KL-minimal feasible solutions."""

    def test_location_update_beats_perturbations(self, rng):
        """Any other mean assignment satisfying the constraint has higher KL.

        Two points, 1-D, shared prior N(0, 1): the constraint is
        (mu1 + mu2)/2 = t. Parameterize feasible solutions by delta:
        (t + delta, t - delta); the update must pick the KL-minimum.
        """
        t = 1.3

        def total_kl(delta):
            kl1 = kl_divergence(
                np.array([t + delta]), np.eye(1), np.zeros(1), np.eye(1)
            )
            kl2 = kl_divergence(
                np.array([t - delta]), np.eye(1), np.zeros(1), np.eye(1)
            )
            return kl1 + kl2

        best = optimize.minimize_scalar(total_kl, bounds=(-3, 3), method="bounded")
        # Theorem 1 with equal covariances moves both means to t (delta=0).
        assert best.x == pytest.approx(0.0, abs=1e-6)
        lam = location_multiplier(
            [np.eye(1), np.eye(1)], np.array([1.0, 1.0]),
            [np.zeros(1), np.zeros(1)], np.array([t]),
        )
        np.testing.assert_allclose(np.eye(1) @ lam, [t], rtol=1e-9)

    def test_spread_update_matches_numeric_kl_minimum(self):
        """1-D, one point, prior N(0,1), constraint E[(y-0)^2] = v.

        Feasible Gaussians N(m, s2) satisfy m^2 + s2 = v; minimize KL to
        N(0,1) numerically over m and compare with the closed form.
        """
        v = 0.3

        def kl_of_m(m):
            s2 = v - m * m
            if s2 <= 0:
                return np.inf
            return kl_divergence(
                np.array([m]), np.array([[s2]]), np.zeros(1), np.eye(1)
            )

        best = optimize.minimize_scalar(
            kl_of_m, bounds=(-np.sqrt(v) + 1e-9, np.sqrt(v) - 1e-9),
            method="bounded",
        )
        lam = solve_spread_multiplier(
            np.array([1.0]), np.array([0.0]), np.array([1.0]), 1.0, v
        )
        new_mean, new_cov = spread_block_update(
            np.zeros(1), np.eye(1), np.array([1.0]), np.zeros(1), lam
        )
        assert new_mean[0] == pytest.approx(best.x, abs=1e-5)
        assert new_cov[0, 0] == pytest.approx(v - best.x**2, rel=1e-5)
