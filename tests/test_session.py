"""Tests for the interactive mining session."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.session import MiningSession


class TestStepAndHistory:
    def test_steps_accumulate(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        first = session.step()
        second = session.step()
        assert session.n_iterations == 2
        assert session.history[0] is first
        assert first.location.description != second.location.description

    def test_report_lists_patterns(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        session.step(kind="spread")
        text = session.report()
        assert "iterations: 1" in text
        assert "location:" in text
        assert "spread:" in text


class TestUndo:
    def test_undo_restores_belief_state(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        first = session.step()
        means_after_first = session.miner.model.point_means().copy()
        session.step()
        undone = session.undo()
        assert undone.index == 2
        np.testing.assert_allclose(
            session.miner.model.point_means(), means_after_first
        )
        assert session.n_iterations == 1

    def test_undo_to_initial_state(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        session.step()
        session.undo()
        assert session.n_iterations == 0
        assert session.miner.model.n_blocks == 1

    def test_undo_then_remine_finds_same_pattern(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        first = session.step()
        session.undo()
        again = session.step()
        assert str(again.location.description) == str(first.location.description)

    def test_undo_empty_raises(self, synthetic_dataset):
        session = MiningSession(synthetic_dataset, seed=0)
        with pytest.raises(SearchError, match="undo"):
            session.undo()


class TestPersistence:
    def test_save_and_resume_belief_state(self, synthetic_dataset, tmp_path):
        session = MiningSession(synthetic_dataset, seed=0)
        session.step()
        session.step()
        path = session.save(tmp_path / "session.json")

        resumed = MiningSession.resume(synthetic_dataset, path, seed=0)
        np.testing.assert_allclose(
            resumed.miner.model.point_means(), session.miner.model.point_means()
        )
        assert len(resumed.miner.model.constraints) == 2

    def test_resumed_session_mines_the_next_pattern(
        self, synthetic_dataset, tmp_path
    ):
        """Resume must continue where the saved session left off."""
        session = MiningSession(synthetic_dataset, seed=0)
        session.step()
        path = session.save(tmp_path / "session.json")
        expected_next = session.step()

        resumed = MiningSession.resume(synthetic_dataset, path, seed=0)
        actual_next = resumed.step()
        assert str(actual_next.location.description) == str(
            expected_next.location.description
        )

    def test_resume_wrong_dataset_rejected(
        self, synthetic_dataset, water_dataset, tmp_path
    ):
        session = MiningSession(synthetic_dataset, seed=0)
        path = session.save(tmp_path / "session.json")
        with pytest.raises(SearchError, match="dataset"):
            MiningSession.resume(water_dataset, path)
