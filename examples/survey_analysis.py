"""Survey analysis: dataframe ingestion, case weights, served batch jobs.

The wikimedia-style survey workflow, end to end on synthetic data:

1. **Ingest** — survey responses arrive as a dataframe (pandas when
   installed; the example falls back to a plain mapping of column
   arrays, which :func:`repro.from_dataframe` accepts equally).
2. **Weight** — the sample over-represents some regions, so each
   respondent gets a post-stratification weight (population share over
   sample share). A row with weight 2 counts exactly like two identical
   respondents everywhere in the scoring stack.
3. **Mine** — one batch job per platform segment is submitted to the
   served engine (thread backend: the segment datasets are registered
   factories in this process) and mined with the weights riding the
   spec.
4. **Report** — results come back as a :class:`repro.ResultSet`; with
   pandas installed the report is a DataFrame, without it the same rows
   print as plain dicts. ``weighted_coverage`` is the share of the
   *weighted* population a subgroup covers — the number a survey analyst
   actually quotes.

Run with::

    PYTHONPATH=src python examples/survey_analysis.py
"""

import numpy as np

from repro import MiningSpec, ResultSet, Workspace, from_dataframe
from repro.registry import DATASETS

try:
    import pandas
except ImportError:  # the example runs fine without the [dataframe] extra
    pandas = None

#: True population share per region; the sample skews away from this.
POPULATION_SHARES = {"north": 0.25, "south": 0.25, "east": 0.3, "west": 0.2}
SAMPLE_SHARES = {"north": 0.45, "south": 0.25, "east": 0.2, "west": 0.1}

SEGMENTS = ("mobile", "desktop")


def make_survey_columns(seed: int = 0, n_respondents: int = 1200) -> dict:
    """Synthetic survey responses with one planted satisfied segment.

    Young respondents from the south rate both satisfaction targets
    visibly higher — the subgroup the miner should surface.
    """
    rng = np.random.default_rng(seed)
    regions = np.array(sorted(SAMPLE_SHARES))
    region = rng.choice(regions, size=n_respondents, p=[SAMPLE_SHARES[r] for r in regions])
    platform = rng.choice(SEGMENTS, size=n_respondents, p=[0.65, 0.35])
    age = rng.integers(18, 80, size=n_respondents).astype(float)
    tenure_years = np.round(rng.exponential(3.0, size=n_respondents), 2)
    sat_content = rng.normal(0.0, 1.0, size=n_respondents)
    sat_interface = rng.normal(0.0, 1.0, size=n_respondents)
    planted = (region == "south") & (age <= 35.0)
    sat_content[planted] += 1.6
    sat_interface[planted] += 1.1
    return {
        "region": region,
        "platform": platform,
        "age": age,
        "tenure_years": tenure_years,
        "sat_content": sat_content,
        "sat_interface": sat_interface,
    }


def post_stratification_weights(region: np.ndarray) -> np.ndarray:
    """Weight each respondent by population share / sample share."""
    n = region.shape[0]
    weights = np.empty(n)
    for name in POPULATION_SHARES:
        mask = region == name
        sample_share = mask.sum() / n
        weights[mask] = POPULATION_SHARES[name] / sample_share
    return weights


def segment_frame(columns: dict, platform: str) -> dict:
    """The per-segment slice, with the segmenting column dropped."""
    mask = columns["platform"] == platform
    return {c: v[mask] for c, v in columns.items() if c != "platform"}


def main() -> None:
    columns = make_survey_columns(seed=0)
    weights = post_stratification_weights(columns["region"])
    columns = {**columns, "weight": weights}
    frame = pandas.DataFrame(columns) if pandas is not None else columns
    kind = "pandas DataFrame" if pandas is not None else "mapping of arrays"
    print(f"ingesting survey responses from a {kind}")

    # One dataset + one spec per platform segment. The factories close
    # over the in-memory frames, so the service must run in-process: the
    # thread backend shares this interpreter's DATASETS registry, which a
    # spawned worker process would not see.
    datasets = {}
    for segment in SEGMENTS:
        sliced = segment_frame(columns, segment)
        dataset = from_dataframe(
            sliced if pandas is None else pandas.DataFrame(sliced),
            target=["sat_content", "sat_interface"],
            weights="weight",
            name=f"survey-{segment}",
        )
        datasets[segment] = dataset
        dataset_name = f"survey_{segment}"
        if dataset_name not in DATASETS:
            DATASETS.register(
                dataset_name, lambda seed=0, _d=dataset, **kwargs: _d
            )
        print(
            f"  {segment}: {dataset.n_rows} respondents, "
            f"total weight {dataset.total_weight():.1f}"
        )

    with Workspace(service_backend="thread") as workspace:
        job_ids = {
            segment: workspace.submit(
                MiningSpec.build(
                    f"survey_{segment}",
                    name=f"survey-{segment}",
                    kind="location",
                    n_iterations=2,
                    weights=tuple(datasets[segment].weights),
                    backend="thread",
                )
            )
            for segment in SEGMENTS
        }
        for segment, job_id in job_ids.items():
            result = workspace.result(job_id)
            results = ResultSet.from_result(result, dataset=datasets[segment])
            print(f"\n=== segment: {segment} ===")
            if pandas is not None:
                report = results.to_dataframe()
                columns_shown = [
                    "iteration", "description", "size",
                    "coverage", "weighted_coverage", "si",
                ]
                print(report[columns_shown].to_string(index=False))
            else:
                for row in results.rows():
                    print(
                        f"  [{row['iteration']}] {row['description']}  "
                        f"(n={row['size']}, coverage={row['coverage']:.1%}, "
                        f"weighted={row['weighted_coverage']:.1%}, "
                        f"SI={row['si']:.2f})"
                    )

    print(
        "\nThe planted segment (young southern respondents) tops both "
        "reports; its weighted coverage differs from its row coverage "
        "because the south is re-weighted to its population share."
    )


if __name__ == "__main__":
    main()
