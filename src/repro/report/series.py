"""Numeric series behind the paper's distribution plots.

Fig. 1 uses "Gaussian-kernel smoothed estimates" of densities; Figs. 8c
and 9b plot marginal CDFs of data projections against the model's CDF.
These helpers return ``(grid, values)`` pairs ready to print, assert on,
or plot elsewhere.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sps

from repro.errors import ReproError


def _grid_for(values: np.ndarray, grid, n_points: int, pad: float) -> np.ndarray:
    if grid is not None:
        return np.asarray(grid, dtype=float)
    lo, hi = float(values.min()), float(values.max())
    span = max(hi - lo, 1e-12)
    return np.linspace(lo - pad * span, hi + pad * span, n_points)


def kde_series(
    values,
    *,
    grid=None,
    n_points: int = 128,
    pad: float = 0.1,
    weight: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian-kernel density estimate over a grid (Fig. 1 style).

    ``weight`` scales the density (Fig. 1 shows the subgroup's share of
    the full data as ``coverage * density``).
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size < 2:
        raise ReproError("kde_series needs at least two values")
    if np.std(values) == 0.0:
        # Degenerate sample: represent as a narrow Gaussian bump.
        grid_arr = _grid_for(values, grid, n_points, pad)
        sd = max(1e-6, 0.01 * (grid_arr[-1] - grid_arr[0]))
        density = sps.norm.pdf(grid_arr, loc=values[0], scale=sd)
        return grid_arr, weight * density
    grid_arr = _grid_for(values, grid, n_points, pad)
    kde = sps.gaussian_kde(values)
    return grid_arr, weight * kde(grid_arr)


def cdf_series(values, *, grid=None, n_points: int = 128, pad: float = 0.05):
    """Empirical CDF of ``values`` evaluated on a grid (Figs. 8c, 9b)."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ReproError("cdf_series needs at least one value")
    grid_arr = _grid_for(values, grid, n_points, pad)
    sorted_values = np.sort(values)
    cdf = np.searchsorted(sorted_values, grid_arr, side="right") / values.size
    return grid_arr, cdf


def normal_cdf_series(mean: float, sd: float, grid) -> tuple[np.ndarray, np.ndarray]:
    """CDF of N(mean, sd^2) on a given grid (the model curve in Fig. 8c)."""
    if sd <= 0:
        raise ReproError(f"sd must be positive, got {sd}")
    grid_arr = np.asarray(grid, dtype=float)
    return grid_arr, sps.norm.cdf(grid_arr, loc=mean, scale=sd)


def mixture_normal_cdf_series(means, sds, weights, grid):
    """CDF of a weighted mixture of normals on a grid.

    The background model is a *product over points* of normals with
    possibly different parameters; the marginal distribution of a
    uniformly chosen subgroup member's projection is this mixture (the
    footnote-5 caveat of the paper's Fig. 8 visualization).
    """
    means = np.asarray(means, dtype=float)
    sds = np.asarray(sds, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if not (means.shape == sds.shape == weights.shape):
        raise ReproError("means, sds, weights must have identical shapes")
    if np.any(sds <= 0) or np.any(weights < 0) or weights.sum() <= 0:
        raise ReproError("sds must be positive, weights non-negative and not all 0")
    weights = weights / weights.sum()
    grid_arr = np.asarray(grid, dtype=float)
    cdf = np.zeros_like(grid_arr)
    for mean, sd, weight in zip(means, sds, weights):
        cdf += weight * sps.norm.cdf(grid_arr, loc=mean, scale=sd)
    return grid_arr, cdf


def histogram_series(values, *, bins: int = 20, range_=None):
    """Histogram as (bin_centers, counts); convenience for reports."""
    values = np.asarray(values, dtype=float).ravel()
    counts, edges = np.histogram(values, bins=bins, range=range_)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts.astype(float)
