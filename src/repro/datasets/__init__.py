"""Datasets: typed tabular schema, CSV IO, and the five paper datasets.

The paper evaluates on one synthetic dataset (fully specified in §III-A)
and four real datasets that are not redistributable/reachable offline.
Each real dataset is replaced by a seeded generator that preserves its
shape (rows, attribute counts, attribute kinds) and plants the structure
each experiment measures — see DESIGN.md §3 for the substitution table.
"""

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.datasets.synthetic import make_synthetic
from repro.datasets.crime import make_crime
from repro.datasets.mammals import make_mammals
from repro.datasets.socio import make_socio
from repro.datasets.water import make_water
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.io import read_csv, write_csv
from repro.datasets.frame import from_dataframe, to_dataframe

__all__ = [
    "AttributeKind",
    "Column",
    "Dataset",
    "from_dataframe",
    "to_dataframe",
    "make_synthetic",
    "make_crime",
    "make_mammals",
    "make_socio",
    "make_water",
    "available_datasets",
    "load_dataset",
    "read_csv",
    "write_csv",
]
