"""Property-based tests of the refinement operator's invariants.

Seeded randomized datasets drive three families of properties:

- **Monotonicity** — every refinement's extension mask is a subset of
  its parent's (a conjunction can only shrink the extension), which is
  what makes beam search's ``parent_mask & mask_of(condition)`` and the
  branch-and-bound pruning sound.
- **Memoization transparency** — :meth:`RefinementOperator.mask_of`
  returns arrays identical to a fresh evaluation, caches by value, and
  hands out read-only views.
- **Textual round-trip** — descriptions survive ``str`` →
  :meth:`Description.parse` (exactly for thresholds representable at
  the renderer's 6 significant digits; textually for arbitrary pool
  thresholds).
"""

import functools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.lang.conditions import EqualsCondition, NumericCondition
from repro.lang.description import Description
from repro.lang.refinement import RefinementOperator

N_ROWS = 80
LABELS = ("north", "south", "east")


@functools.lru_cache(maxsize=32)
def make_dataset(seed: int) -> Dataset:
    """One randomized mixed-kind dataset per seed (cached: immutable)."""
    rng = np.random.default_rng(seed)
    columns = [
        Column("x", AttributeKind.NUMERIC, rng.uniform(-5, 5, N_ROWS)),
        Column("y", AttributeKind.NUMERIC, rng.normal(0, 2, N_ROWS)),
        Column("o", AttributeKind.ORDINAL, rng.choice([0.0, 1.0, 3.0, 5.0], N_ROWS)),
        Column("b", AttributeKind.BINARY, rng.integers(0, 2, N_ROWS).astype(float)),
        Column("c", AttributeKind.CATEGORICAL, rng.choice(LABELS, N_ROWS)),
    ]
    return Dataset(f"prop-{seed}", columns, rng.standard_normal((N_ROWS, 2)), ["t1", "t2"])


@functools.lru_cache(maxsize=32)
def make_operator(seed: int) -> RefinementOperator:
    return RefinementOperator(make_dataset(seed), n_split_points=3)


def draw_description(draw, operator: RefinementOperator) -> Description:
    """A random conjunction of pool conditions (possibly empty)."""
    pool = operator.conditions
    k = draw(st.integers(min_value=0, max_value=3))
    indices = draw(
        st.lists(
            st.integers(0, len(pool) - 1), min_size=k, max_size=k
        )
    )
    return Description(tuple(pool[i] for i in indices))


class TestRefinementMonotonicity:
    @given(seed=st.integers(0, 19), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_refinement_mask_is_subset_of_parent(self, seed, data):
        operator = make_operator(seed)
        parent = draw_description(data.draw, operator)
        parent_mask = operator.extension_mask(parent.canonical())
        for refined, condition in operator.refinements(parent):
            refined_mask = operator.extension_mask(refined)
            assert not np.any(refined_mask & ~parent_mask), (
                f"refinement {refined} covers rows outside its parent {parent}"
            )
            # The incremental evaluation the beam search actually uses
            # must agree with evaluating the refinement from scratch.
            np.testing.assert_array_equal(
                refined_mask, parent_mask & operator.mask_of(condition)
            )

    @given(seed=st.integers(0, 19), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_refinements_strictly_extend_the_canonical_form(self, seed, data):
        operator = make_operator(seed)
        parent = draw_description(data.draw, operator).canonical()
        for refined, _ in operator.refinements(parent):
            assert refined != parent
            assert not refined.is_contradictory()


class TestMaskMemoization:
    @given(seed=st.integers(0, 19))
    @settings(max_examples=20, deadline=None)
    def test_memoized_masks_equal_fresh_evaluation(self, seed):
        operator = make_operator(seed)
        dataset = make_dataset(seed)
        for condition in operator.conditions:
            np.testing.assert_array_equal(
                operator.mask_of(condition), condition.mask(dataset)
            )

    @given(seed=st.integers(0, 19), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_repeated_lookups_return_the_identical_readonly_array(self, seed, data):
        operator = make_operator(seed)
        pool = operator.conditions
        condition = pool[data.draw(st.integers(0, len(pool) - 1))]
        first = operator.mask_of(condition)
        second = operator.mask_of(condition)
        assert first is second  # cached object, not a recomputation
        assert first.flags.writeable is False
        # An equal-by-value condition object hits the same entry.
        if isinstance(condition, NumericCondition):
            twin = NumericCondition(condition.attribute, condition.op, condition.threshold)
        else:
            twin = EqualsCondition(condition.attribute, condition.value)
        assert operator.mask_of(twin) is first


#: Thresholds exactly representable at __str__'s 6 significant digits:
#: k/1000 for |k| < 100000 prints back to the same decimal, so parsing
#: the rendering reproduces the identical double.
exact_thresholds = st.integers(-99999, 99999).map(lambda k: k / 1000)
numeric_conditions = st.builds(
    NumericCondition,
    st.sampled_from(["x", "y", "o"]),
    st.sampled_from(["<=", ">="]),
    exact_thresholds,
)
equals_conditions = st.one_of(
    st.builds(EqualsCondition, st.just("b"), st.sampled_from([0.0, 1.0])),
    st.builds(EqualsCondition, st.just("c"), st.sampled_from(list(LABELS))),
)
exact_descriptions = (
    st.lists(st.one_of(numeric_conditions, equals_conditions), max_size=5)
    .map(tuple)
    .map(Description)
)


class TestStrParseRoundTrip:
    @given(description=exact_descriptions)
    @settings(max_examples=150, deadline=None)
    def test_exact_round_trip(self, description):
        assert Description.parse(str(description)) == description

    @given(description=exact_descriptions)
    @settings(max_examples=100, deadline=None)
    def test_canonical_form_survives_round_trip(self, description):
        canon = description.canonical()
        assert Description.parse(str(canon)).canonical() == canon

    @given(seed=st.integers(0, 19), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_pool_descriptions_round_trip_textually(self, seed, data):
        # Percentile split points carry full float precision; __str__
        # renders 6 significant digits, so the guaranteed invariant is
        # textual idempotence: one parse absorbs the rounding, after
        # which str/parse is a fixed point.
        operator = make_operator(seed)
        description = draw_description(data.draw, operator)
        parsed = Description.parse(str(description))
        assert str(parsed) == str(description)
        assert Description.parse(str(parsed)) == parsed

    def test_empty_description_round_trips(self):
        assert Description.parse(str(Description())) == Description()
        assert Description.parse("") == Description()

    def test_equality_values_containing_operator_tokens(self):
        # A label may legitimately contain '<='; the equality form must
        # win over a numeric misreading.
        tricky = Description((EqualsCondition("c", "a <= b"),))
        assert Description.parse(str(tricky)) == tricky

    def test_equality_values_containing_the_conjunction_token(self):
        tricky = Description(
            (
                EqualsCondition("country", "Trinidad AND Tobago"),
                NumericCondition("x", "<=", 1.5),
            )
        )
        assert Description.parse(str(tricky)) == tricky

    def test_non_finite_looking_labels_stay_strings(self):
        for label in ("nan", "inf", "-inf"):
            condition = EqualsCondition("c", label)
            parsed = Description.parse(str(Description((condition,))))
            assert parsed == Description((condition,))
            assert isinstance(parsed.conditions[0].value, str)
