"""Command-line interface: ``sisd`` (or ``python -m repro``).

Subcommands:

- ``sisd datasets`` — list the available datasets with their shapes.
- ``sisd mine DATASET`` — run mining and print each pattern as it is
  mined. The flags are a thin builder for a declarative
  :class:`~repro.spec.MiningSpec`; ``--spec FILE`` runs a saved spec
  instead, and ``--save-spec FILE`` writes the built spec without
  mining (so any flag combination can become a reusable file).
- ``sisd batch JOBS.json`` — run a batch of declarative mining jobs
  concurrently over a worker pool.
- ``sisd serve`` — put the mining service on the network: JSON
  endpoints for submit/status/result/cancel plus a Server-Sent-Events
  stream (see :mod:`repro.server`); pair with
  :class:`repro.client.RemoteWorkspace` or plain ``curl``.
- ``sisd worker`` — run one compute node of the distributed tier: a
  daemon executing search shards shipped by a coordinator's
  :class:`repro.dist.DistExecutor` (see :mod:`repro.dist`).
- ``sisd route`` — federate several ``sisd serve`` replicas behind one
  address, placing jobs by spec fingerprint over consistent hashing.
- ``sisd top URL`` — live ASCII dashboard over the ``GET /metrics``
  endpoint of any tier (server, worker daemon, or router).
- ``sisd admin usage|compact URL`` — per-tenant submission counters
  (read from ``/metrics``) and forced store compaction.
- ``sisd lint`` — statically check the repo's contract invariants
  (determinism, asyncio hygiene, pickle boundaries, resource safety;
  see :mod:`repro.analysis`). ``--json`` for CI, ``--explain RULE`` for
  the rationale, ``--changed`` for a sub-second pre-commit pass.
- ``sisd experiment NAME`` — reproduce one of the paper's tables/figures.
- ``sisd experiments`` — list the reproducible experiments.

Every mining path routes through :class:`repro.api.Workspace`, so the
CLI, the library, and the service execute one spec identically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro import experiments
from repro.api import Workspace
from repro.datasets import available_datasets, load_dataset
from repro.engine.jobs import JobResult, run_jobs
from repro.errors import ReproError
from repro.persist import (
    job_result_to_dict,
    job_to_dict,
    load_jobs,
    load_spec,
    save_json,
    save_spec,
)
from repro.report.live import LiveReporter
from repro.spec import MiningSpec
from repro.version import __version__

#: Experiment name -> zero-config runner returning an object with .format().
EXPERIMENTS: dict[str, Callable[[int], object]] = {
    "fig1": experiments.run_fig1,
    "fig2": experiments.run_fig2,
    "fig3": experiments.run_fig3,
    "fig4": experiments.run_fig4,
    "fig5": experiments.run_fig5,
    "fig6": experiments.run_fig6,
    "fig7": experiments.run_fig7,
    "fig8": experiments.run_fig8,
    "fig9": experiments.run_fig9,
    "fig10": experiments.run_fig10,
    "table1": experiments.run_table1,
    "table2": experiments.run_table2,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sisd",
        description=(
            "Subjectively Interesting Subgroup Discovery on real-valued "
            "targets (ICDE 2018 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"sisd {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available datasets")

    # Every mining flag defaults to None ("not passed") so that flags
    # layered over --spec are distinguishable from parser defaults; the
    # real defaults live in MiningSpec's sections.
    mine = sub.add_parser("mine", help="run iterative subgroup discovery")
    mine.add_argument("dataset", nargs="?", choices=available_datasets())
    mine.add_argument(
        "--seed", type=int, default=None, help="dataset/search seed (default 0)"
    )
    mine.add_argument(
        "--iterations", type=int, default=None,
        help="mining iterations (default: 3 for beam, 1 for single-shot "
        "strategies)",
    )
    mine.add_argument(
        "--kind", choices=("location", "spread"), default=None,
        help="pattern type per iteration (spread = the two-step process; "
        "default location)",
    )
    mine.add_argument(
        "--targets", nargs="+", default=None, metavar="NAME",
        help="restrict the modeled target attributes (branch_bound needs "
        "exactly one on multi-target datasets)",
    )
    mine.add_argument(
        "--strategy", choices=("beam", "branch_bound", "quality_beam"),
        default=None, help="search strategy (default beam; see "
        "repro.registry.SEARCHES)",
    )
    mine.add_argument(
        "--measure", default=None,
        help="interestingness measure (default 'si'; a classical measure "
        "for --strategy quality_beam)",
    )
    mine.add_argument(
        "--beam-width", type=int, default=None, help="beam width (default 40)"
    )
    mine.add_argument(
        "--depth", type=int, default=None, help="max conditions (default 4)"
    )
    mine.add_argument(
        "--gamma", type=float, default=None,
        help="DL weight per condition (default 0.1)",
    )
    mine.add_argument(
        "--time-budget", type=float, default=None,
        help="wall-clock budget per beam search, in seconds",
    )
    mine.add_argument(
        "--sparsity", type=int, default=None,
        help="restrict spread directions to this many coordinates (2 only)",
    )
    mine.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the search itself (default 1 = serial)",
    )
    mine.add_argument(
        "--shared-memory", action="store_const", const=True, default=None,
        dest="shared_memory",
        help="ship the parallel search context through "
        "multiprocessing.shared_memory with a persistent warm worker pool "
        "(needs --workers > 1; results are bit-identical either way — use "
        "on large datasets where re-pickling the scorer dominates)",
    )
    mine.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"),
        default=None, dest="start_method",
        help="multiprocessing start method of the search's worker pool "
        "(default: platform default)",
    )
    mine.add_argument(
        "--priority", type=int, default=None,
        help="service scheduling priority of the spec (higher dispatches "
        "first; only observed when the spec is submitted to a service — "
        "inline mining runs immediately)",
    )
    mine.add_argument(
        "--deadline", type=float, default=None,
        help="queue-time budget in seconds: a spec submitted to a service "
        "expires instead of starting once this elapses (inline mining "
        "runs immediately and never expires)",
    )
    mine.add_argument(
        "--spec", default=None, metavar="FILE",
        help="run a saved MiningSpec JSON instead of building one from flags "
        "(other mine flags override the loaded spec's fields)",
    )
    mine.add_argument(
        "--save-spec", default=None, metavar="FILE",
        help="write the spec these flags describe and exit without mining",
    )

    batch = sub.add_parser("batch", help="run a batch of mining jobs from JSON")
    batch.add_argument("jobs_file", help="JSON file with a 'jobs' list of specs")
    batch.add_argument(
        "--workers", type=int, default=1,
        help="worker processes running jobs concurrently (1 = serial)",
    )
    batch.add_argument(
        "--output", default=None,
        help="also write the results as JSON to this path",
    )

    serve = sub.add_parser(
        "serve", help="serve the mining engine over HTTP (JSON + SSE)"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="bind port (default 8765; 0 picks a free port)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrently running jobs (the service's worker slots)",
    )
    serve.add_argument(
        "--backend", choices=("thread", "process", "serial"), default="thread",
        help="service pool backend (default thread; thread streams "
        "candidate/iteration events live, process replays them at "
        "completion)",
    )
    serve.add_argument(
        "--no-candidates", action="store_true",
        help="omit per-candidate events from the stream (they are the "
        "chattiest part: hundreds per beam level)",
    )
    serve.add_argument(
        "--quiet", action="store_true",
        help="no per-event server log lines on stdout",
    )
    serve.add_argument(
        "--store", default=None, metavar="PATH",
        help="durable job-store directory: terminal results survive "
        "restarts bit-identically, queued jobs are re-enqueued in "
        "order, and warm belief prefixes spill to disk",
    )
    serve.add_argument(
        "--auth", default=None, metavar="FILE",
        help="tenant token file (JSON; see repro.store.TenantRegistry."
        "from_file): turns on bearer-token auth, per-tenant rate "
        "limits, and fair-share scheduling",
    )

    worker = sub.add_parser(
        "worker", help="run a distributed-mining worker daemon"
    )
    worker.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    worker.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = pick a free port and announce it)",
    )
    worker.add_argument(
        "--parallel", type=int, default=2,
        help="shards executed concurrently on this node (default 2)",
    )
    worker.add_argument(
        "--register", default=None, metavar="URL",
        help="coordinator/router base URL to announce this worker to "
        "(POST {URL}/workers/register, retried until it succeeds)",
    )

    route = sub.add_parser(
        "route", help="federate sisd serve replicas behind one address"
    )
    route.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    route.add_argument(
        "--port", type=int, default=8766,
        help="bind port (default 8766; 0 picks a free port)",
    )
    route.add_argument(
        "--replica", action="append", default=None, metavar="URL",
        required=True, help="a MiningServer base URL (repeat per replica); "
        "order matters: the i-th URL becomes ring node r{i}",
    )
    route.add_argument(
        "--check-interval", type=float, default=2.0,
        help="replica health-check cadence in seconds (default 2)",
    )

    top = sub.add_parser(
        "top", help="live ASCII dashboard over a /metrics endpoint"
    )
    top.add_argument(
        "url", help="base URL of a sisd server, worker, or router"
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh cadence in seconds (default 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (scripts, tests)",
    )
    top.add_argument(
        "--token", default=None,
        help="bearer token for an auth-enabled endpoint",
    )

    admin = sub.add_parser(
        "admin", help="operational commands against a running server"
    )
    admin_sub = admin.add_subparsers(dest="admin_command", required=True)
    usage = admin_sub.add_parser(
        "usage", help="per-tenant submit/reject/preempt counters"
    )
    usage.add_argument("url", help="base URL of a sisd server")
    usage.add_argument(
        "--token", default=None,
        help="bearer token for an auth-enabled endpoint",
    )
    compact = admin_sub.add_parser(
        "compact", help="fold the server's store journal into its snapshot"
    )
    compact.add_argument("url", help="base URL of a durable sisd server")
    compact.add_argument(
        "--token", default=None,
        help="bearer token for an auth-enabled endpoint",
    )

    lint = sub.add_parser(
        "lint",
        help="statically check determinism/asyncio/pickle/resource contracts",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    sub.add_parser("experiments", help="list reproducible tables/figures")

    exp = sub.add_parser("experiment", help="reproduce a paper table/figure")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_datasets() -> int:
    for name in available_datasets():
        dataset = load_dataset(name, seed=0)
        print(
            f"{name:10s} n={dataset.n_rows:5d}  "
            f"d_x={dataset.n_descriptions:4d}  d_y={dataset.n_targets:4d}"
        )
    return 0


def _flat_spec_kwargs(args: argparse.Namespace) -> dict:
    """The mine flags that were actually passed, as spec keywords.

    ``--seed`` seeds both the dataset generator and the search.
    """
    flat = {
        "dataset_seed": args.seed,
        "seed": args.seed,
        "strategy": args.strategy,
        "measure": args.measure,
        "kind": args.kind,
        "n_iterations": args.iterations,
        "sparsity": args.sparsity,
        "targets": args.targets,
        "beam_width": args.beam_width,
        "max_depth": args.depth,
        "gamma": args.gamma,
        "time_budget_seconds": args.time_budget,
        "workers": args.workers,
        "shared_memory": args.shared_memory,
        "start_method": args.start_method,
        "priority": args.priority,
        "deadline": args.deadline,
    }
    return {key: value for key, value in flat.items() if value is not None}


def _spec_from_args(args: argparse.Namespace) -> MiningSpec:
    """The thin spec builder behind ``sisd mine``'s flags.

    Only *unset* flags get defaults (``MiningSpec``'s section defaults,
    plus 3 iterations for beam / 1 for the single-shot strategies);
    explicitly contradictory combinations (``--strategy branch_bound
    --iterations 5``) flow into the spec and are rejected by its
    validation, never silently ignored.
    """
    kwargs = _flat_spec_kwargs(args)
    if "n_iterations" not in kwargs:
        strategy = kwargs.get("strategy", "beam")
        kwargs["n_iterations"] = 3 if strategy == "beam" else 1
    return MiningSpec.build(args.dataset, **kwargs)


def _apply_flag_overrides(spec: MiningSpec, args: argparse.Namespace) -> MiningSpec:
    """Layer explicitly passed mine flags over a loaded spec file.

    Every mining flag defaults to ``None`` in the parser, so any flag
    the user actually typed — including one spelling out a library
    default, like ``--strategy beam`` over a quality_beam spec — wins
    over the file.
    """
    overrides = _flat_spec_kwargs(args)
    return spec.with_changes(**overrides) if overrides else spec


def _cmd_mine(args: argparse.Namespace) -> int:
    if args.spec is not None and args.dataset is not None:
        raise ReproError("pass either a dataset or --spec, not both")
    if args.spec is not None:
        try:
            spec = load_spec(args.spec)
        except (OSError, ValueError, ReproError) as exc:
            raise ReproError(f"cannot read {args.spec}: {exc}") from exc
        spec = _apply_flag_overrides(spec, args)
    elif args.dataset is not None:
        spec = _spec_from_args(args)
    else:
        raise ReproError("pass a dataset name or --spec FILE")
    if args.save_spec is not None:
        try:
            save_spec(spec, args.save_spec)
        except OSError as exc:
            raise ReproError(f"cannot write {args.save_spec}: {exc}") from exc
        print(f"spec written to {args.save_spec}")
        return 0
    reporter = LiveReporter()
    for _ in Workspace().stream(spec, observer=reporter):
        pass
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        jobs = load_jobs(args.jobs_file)
    except (OSError, ValueError, ReproError) as exc:  # ValueError: JSONDecodeError
        raise ReproError(f"cannot read {args.jobs_file}: {exc}") from exc
    outcomes = run_jobs(jobs, workers=args.workers, return_failures=True)
    done = [o for o in outcomes if isinstance(o, JobResult)]
    failed = [o for o in outcomes if not isinstance(o, JobResult)]
    for outcome in outcomes:
        print(outcome.format())
    total = sum(result.elapsed_seconds for result in done)
    print(
        f"{len(done)} job(s) done, {len(failed)} failed, "
        f"{total:.2f}s of mining time"
    )
    if args.output is not None:
        document = {
            "results": [job_result_to_dict(r) for r in done],
            "failures": [
                {"job": job_to_dict(f.job), "error": f.error} for f in failed
            ],
        }
        try:
            save_json(document, args.output)
        except OSError as exc:
            raise ReproError(f"cannot write {args.output}: {exc}") from exc
        print(f"results written to {args.output}")
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import MiningServer

    server = MiningServer(
        host=args.host,
        port=args.port,
        backend=args.backend,
        max_workers=args.workers,
        observer=None if args.quiet else LiveReporter(),
        candidate_events=not args.no_candidates,
        store=args.store,
        auth=args.auth,
    )

    def announce(bound: MiningServer) -> None:
        extras = ""
        if args.store:
            extras += f", store={args.store}"
        if args.auth:
            extras += ", auth=on"
        print(
            f"sisd server listening on {bound.url}  "
            f"(backend={args.backend}, workers={args.workers}{extras}; "
            f"Ctrl-C stops)",
            flush=True,
        )

    server.run(announce=announce)
    print("sisd server stopped")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dist.worker import WorkerDaemon

    daemon = WorkerDaemon(
        host=args.host,
        port=args.port,
        parallelism=args.parallel,
        register_with=args.register,
    )

    def announce(bound: WorkerDaemon) -> None:
        extras = f", registering with {args.register}" if args.register else ""
        print(
            f"sisd worker listening on {bound.url}  "
            f"(parallel={args.parallel}{extras}; Ctrl-C stops)",
            flush=True,
        )

    daemon.run(announce=announce)
    print("sisd worker stopped")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.dist.router import MiningRouter

    router = MiningRouter(
        args.replica,
        host=args.host,
        port=args.port,
        check_interval=args.check_interval,
    )

    def announce(bound: MiningRouter) -> None:
        print(
            f"sisd router listening on {bound.url}  "
            f"({len(args.replica)} replica(s); Ctrl-C stops)",
            flush=True,
        )

    router.run(announce=announce)
    print("sisd router stopped")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.console import render_dashboard, scrape

    if args.once:
        print(render_dashboard(scrape(args.url, token=args.token), source=args.url))
        return 0
    import time as _time  # live-poll cadence only; nothing measured

    try:
        while True:
            frame = render_dashboard(
                scrape(args.url, token=args.token), source=args.url
            )
            # ANSI clear + home keeps the frame in place like top(1).
            print(f"\x1b[2J\x1b[H{frame}", flush=True)
            _time.sleep(max(args.interval, 0.1))
    except KeyboardInterrupt:
        return 0


def _cmd_admin(args: argparse.Namespace) -> int:
    from repro.obs.console import post_json, scrape, usage_table

    if args.admin_command == "usage":
        print(usage_table(scrape(args.url, token=args.token), source=args.url))
        return 0
    # compact
    document = post_json(args.url, "/admin/compact", token=args.token)
    store = document.get("store", {})
    print(
        f"compacted: journal lag {document.get('journal_lag_before', 0)} -> "
        f"{store.get('journal_lag', 0)} ({store.get('records', 0)} records)"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = EXPERIMENTS[args.name](args.seed)
    print(result.format())
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "experiments":
            for name in sorted(EXPERIMENTS):
                print(name)
            return 0
        if args.command == "mine":
            return _cmd_mine(args)
        if args.command == "batch":
            return _cmd_batch(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "route":
            return _cmd_route(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "admin":
            return _cmd_admin(args)
        if args.command == "lint":
            from repro.analysis.cli import run_lint

            return run_lint(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
