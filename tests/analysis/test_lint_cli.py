"""``sisd lint`` end to end: exit codes, --json stability, baselines."""

from __future__ import annotations

import argparse
import json
import textwrap

import pytest

from repro.analysis import RULES
from repro.analysis.cli import add_lint_arguments, run_lint


def run_cli(*argv: str) -> int:
    """Parse ``argv`` exactly like the ``sisd lint`` subcommand and run it."""
    parser = argparse.ArgumentParser(prog="sisd lint")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(list(argv)))


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A temp tree with one clean and one violating module, cwd inside."""
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "repro" / "engine" / "cache.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        textwrap.dedent(
            """
            import time

            def stamp():
                return time.time()
            """
        )
    )
    good = tmp_path / "repro" / "clean.py"
    good.write_text("def fine():\n    return 1\n")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert run_cli(str(tmp_path)) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tree, capsys):
        assert run_cli(".") == 1
        out = capsys.readouterr().out
        assert "repro/engine/cache.py:5:11: DET001" in out

    def test_missing_path_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert run_cli("no/such/dir") == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tree, capsys):
        assert run_cli("--select", "NOPE999", ".") == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_syntax_error_reports_e100(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "broken.py").write_text("def broken(:\n")
        assert run_cli(".") == 1
        assert "E100" in capsys.readouterr().out


class TestSelection:
    def test_select_limits_rules(self, tree, capsys):
        assert run_cli("--select", "ASY001", ".") == 0
        assert run_cli("--select", "DET001", ".") == 1

    def test_explain_prints_docstring(self, capsys):
        assert run_cli("--explain", "DET001") == 0
        out = capsys.readouterr().out
        assert "DET001" in out
        assert len(out.splitlines()) > 1

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert run_cli("--explain", "NOPE999") == 2

    def test_rules_lists_the_registry(self, capsys):
        assert run_cli("--rules") == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out


class TestJsonOutput:
    def test_document_shape(self, tree, capsys):
        assert run_cli("--json", ".") == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == 1
        assert document["files"] == 2
        finding = document["findings"][0]
        assert finding["rule"] == "DET001"
        assert finding["path"] == "repro/engine/cache.py"
        assert set(finding) >= {"rule", "path", "line", "col", "message",
                                "snippet", "fingerprint"}

    def test_output_is_stable_across_runs(self, tree, capsys):
        run_cli("--json", ".")
        first = capsys.readouterr().out
        run_cli("--json", ".")
        second = capsys.readouterr().out
        assert first == second

    def test_findings_are_sorted(self, tree, capsys):
        more = tree / "repro" / "engine" / "jobs.py"
        more.write_text("import time\n\ndef t():\n    return time.time()\n")
        run_cli("--json", ".")
        document = json.loads(capsys.readouterr().out)
        keys = [
            (f["path"], f["line"], f["col"], f["rule"])
            for f in document["findings"]
        ]
        assert keys == sorted(keys)


class TestBaselineFlow:
    def test_write_then_apply_goes_green(self, tree, capsys):
        assert run_cli("--write-baseline", "baseline.json", ".") == 0
        capsys.readouterr()
        assert run_cli("--baseline", "baseline.json", ".") == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_new_violation_still_fails(self, tree, capsys):
        run_cli("--write-baseline", "baseline.json", ".")
        capsys.readouterr()
        extra = tree / "repro" / "engine" / "jobs.py"
        extra.write_text("import time\n\ndef t():\n    return time.time()\n")
        assert run_cli("--baseline", "baseline.json", ".") == 1
        out = capsys.readouterr().out
        assert "repro/engine/jobs.py" in out
        assert "repro/engine/cache.py" not in out

    def test_unreadable_baseline_exits_two(self, tree, capsys):
        assert run_cli("--baseline", "absent.json", ".") == 2
        assert "baseline" in capsys.readouterr().err


class TestPragmaReporting:
    def test_suppressed_count_shows_in_summary(self, tmp_path, monkeypatch,
                                               capsys):
        monkeypatch.chdir(tmp_path)
        mod = tmp_path / "repro" / "engine" / "cache.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import time\n\ndef t():\n"
            "    return time.time()  # sisd: ignore[DET001] probe\n"
        )
        assert run_cli(".") == 0
        assert "1 pragma-suppressed" in capsys.readouterr().out
