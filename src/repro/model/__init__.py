"""The FORSIED background model over real-valued targets.

The user's belief state is a product of per-point multivariate normal
distributions (Eq. 4 of the paper). Assimilating a pattern updates the
parameters of the points in the pattern's extension by the KL-minimal
(minimum discrimination information) amount:

- location patterns: Theorem 1 — means shift so the expected subgroup
  mean equals the observed one;
- spread patterns: Theorem 2 — a rank-one Sherman-Morrison correction
  along the pattern's direction, with the multiplier solved from Eq. 12.

Points that have undergone the same sequence of updates share parameters
(the paper's footnote 2); :class:`BlockPartition` tracks the coarsest
such partition so all computation is per-block.
"""

from repro.model.background import BackgroundModel
from repro.model.blocks import BlockPartition
from repro.model.patterns import LocationConstraint, PatternConstraint, SpreadConstraint
from repro.model.priors import Prior, empirical_prior

__all__ = [
    "BackgroundModel",
    "BlockPartition",
    "LocationConstraint",
    "PatternConstraint",
    "SpreadConstraint",
    "Prior",
    "empirical_prior",
]
