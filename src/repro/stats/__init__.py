"""Subgroup statistics and the chi-squared mixture approximation."""

from repro.stats.statistics import (
    subgroup_cov,
    subgroup_mean,
    subgroup_spread,
)
from repro.stats.chi2mix import Chi2Mixture

__all__ = [
    "subgroup_mean",
    "subgroup_cov",
    "subgroup_spread",
    "Chi2Mixture",
]
