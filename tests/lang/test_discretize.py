"""Tests for split-point computation."""

import numpy as np
import pytest

from repro.datasets.schema import AttributeKind, Column
from repro.errors import LanguageError
from repro.lang.discretize import split_points


class TestPercentile:
    def test_paper_default_four_points(self):
        col = Column("x", AttributeKind.NUMERIC, np.arange(100.0))
        points = split_points(col)
        np.testing.assert_allclose(points, np.percentile(np.arange(100.0), [20, 40, 60, 80]))

    def test_strictly_inside_range(self, rng):
        col = Column("x", AttributeKind.NUMERIC, rng.standard_normal(500))
        points = split_points(col, n_split_points=7)
        assert points.min() >= col.values.min()
        assert points.max() <= col.values.max()

    def test_sorted_unique(self, rng):
        col = Column("x", AttributeKind.NUMERIC, rng.integers(0, 3, 100).astype(float))
        points = split_points(col, n_split_points=9)
        assert np.all(np.diff(points) > 0)


class TestStrategies:
    def test_width(self):
        # With only {0, 10} in the data all four width thresholds select
        # the same rows in both directions, so they collapse to the first.
        col = Column("x", AttributeKind.NUMERIC, np.array([0.0, 10.0]))
        np.testing.assert_allclose(
            split_points(col, n_split_points=4, strategy="width"), [2.0]
        )

    def test_width_distinct_thresholds_survive(self):
        col = Column("x", AttributeKind.NUMERIC, np.arange(11.0))
        np.testing.assert_allclose(
            split_points(col, n_split_points=4, strategy="width"),
            [2.0, 4.0, 6.0, 8.0],
        )

    def test_levels(self):
        col = Column("x", AttributeKind.NUMERIC, np.array([1.0, 2.0, 2.0, 5.0]))
        np.testing.assert_allclose(
            split_points(col, strategy="levels"), [1.0, 2.0, 5.0]
        )

    def test_unknown_strategy(self):
        col = Column("x", AttributeKind.NUMERIC, np.arange(5.0))
        with pytest.raises(LanguageError, match="strategy"):
            split_points(col, strategy="magic")


class TestOrdinal:
    def test_always_uses_levels(self):
        col = Column("lvl", AttributeKind.ORDINAL, np.array([0.0, 1.0, 3.0, 5.0] * 10))
        np.testing.assert_allclose(split_points(col), [0.0, 1.0, 3.0, 5.0])

    def test_percentile_request_ignored_for_ordinal(self):
        col = Column("lvl", AttributeKind.ORDINAL, np.array([0.0] * 90 + [5.0] * 10))
        np.testing.assert_allclose(split_points(col, n_split_points=4), [0.0, 5.0])


class TestEdgeCases:
    def test_constant_column(self):
        col = Column("x", AttributeKind.NUMERIC, np.full(10, 3.0))
        assert split_points(col).size == 0

    def test_constant_column_width_strategy(self):
        col = Column("x", AttributeKind.NUMERIC, np.full(10, 3.0))
        assert split_points(col, strategy="width").size == 0

    def test_two_distinct_values_collapse_to_one_threshold(self):
        # All four width thresholds of a {0, 1} column sit strictly between
        # the levels; each induces the same "<=" and ">=" row sets, so
        # exactly one survives.
        col = Column("x", AttributeKind.NUMERIC, np.array([0.0] * 5 + [1.0] * 5))
        points = split_points(col, n_split_points=4, strategy="width")
        assert points.size == 1
        assert int((col.values <= points[0]).sum()) == 5

    def test_two_distinct_values_percentile_keeps_level_thresholds(self):
        # Percentile thresholds that land exactly on the two levels are
        # extension-distinct (one is useful for "<=", the other for ">=")
        # and must both survive the collapse.
        col = Column("x", AttributeKind.NUMERIC, np.array([0.0] * 5 + [1.0] * 5))
        np.testing.assert_allclose(split_points(col), [0.0, 1.0])

    def test_collapse_is_deterministic_and_order_preserving(self):
        col = Column("x", AttributeKind.NUMERIC, np.array([0.0, 0.0, 1.0, 1.0]))
        a = split_points(col, n_split_points=9)
        b = split_points(col, n_split_points=9)
        np.testing.assert_array_equal(a, b)
        assert np.all(np.diff(a) > 0)

    def test_nan_values_raise(self):
        col = Column("x", AttributeKind.NUMERIC, np.arange(10.0))
        col.values[3] = np.nan  # bypasses Column validation on purpose
        with pytest.raises(LanguageError, match="NaN"):
            split_points(col)

    def test_inf_values_raise(self):
        col = Column("x", AttributeKind.NUMERIC, np.arange(10.0))
        col.values[0] = np.inf
        with pytest.raises(LanguageError, match="NaN"):
            split_points(col)

    def test_categorical_rejected(self):
        col = Column("c", AttributeKind.CATEGORICAL, np.array(["a", "b"]))
        with pytest.raises(LanguageError, match="undefined"):
            split_points(col)

    def test_invalid_count(self):
        col = Column("x", AttributeKind.NUMERIC, np.arange(5.0))
        with pytest.raises(LanguageError, match="n_split_points"):
            split_points(col, n_split_points=0)
