"""End-to-end over HTTP: submit → live SSE events → result → cancel.

Everything here exercises a *real* ``MiningServer`` over real sockets
against a real ``MiningService`` — no mocks — including the PR's
acceptance bar: ``RemoteWorkspace.mine()`` bit-identical to the local
``Workspace.mine()`` for the same spec.
"""

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.api import Workspace
from repro.client import RemoteError, RemoteJobFailed, RemoteWorkspace, _SSEStream
from repro.engine.service import JobStatus
from repro.events import EventLog
from repro.server import MiningServer
from repro.spec import MiningSpec


def fast_spec(**overrides):
    """A quick synthetic spec (sub-second), varied via overrides."""
    kwargs = dict(n_iterations=2, beam_width=6, max_depth=2, top_k=10)
    kwargs.update(overrides)
    return MiningSpec.build("synthetic", **kwargs)


@pytest.fixture()
def spec():
    return fast_spec()


def _assert_results_identical(local, remote):
    """Bit-identical across the wire: descriptions, rows, scores."""
    assert len(local.iterations) == len(remote.iterations)
    for a, b in zip(local.iterations, remote.iterations):
        assert a.index == b.index
        assert str(a.location.description) == str(b.location.description)
        np.testing.assert_array_equal(a.location.indices, b.location.indices)
        np.testing.assert_array_equal(a.location.mean, b.location.mean)
        assert a.location.score.ic == b.location.score.ic  # exact floats
        assert a.location.score.dl == b.location.score.dl
        assert a.location.coverage == b.location.coverage
        assert (a.spread is None) == (b.spread is None)
        if a.spread is not None:
            np.testing.assert_array_equal(a.spread.indices, b.spread.indices)
            np.testing.assert_array_equal(a.spread.direction, b.spread.direction)
            assert a.spread.variance == b.spread.variance
            assert a.spread.score.ic == b.spread.score.ic
            assert a.spread.score.dl == b.spread.score.dl


class TestHealth:
    def test_health_document(self, remote):
        health = remote.health()
        assert health["status"] == "ok"
        assert health["service"]["backend"] == "thread"
        assert health["service"]["max_workers"] == 2
        assert {"published", "subscribers", "dropped"} <= set(health["events"])
        assert "hits" in health["result_cache"]
        assert health["store"] is None  # storeless server: nothing to report


class TestSubmitResultLifecycle:
    def test_remote_mine_is_bit_identical_to_local(self, remote, spec):
        local = Workspace().mine(spec)
        _assert_results_identical(local, remote.mine(spec))

    def test_remote_spread_mining_is_bit_identical(self, remote):
        spec = fast_spec(kind="spread", n_iterations=1)
        local = Workspace().mine(spec)
        _assert_results_identical(local, remote.mine(spec))

    def test_submit_status_result(self, remote):
        spec = fast_spec(seed=21)
        job_id = remote.submit(spec)
        assert job_id.startswith("job-")
        result = remote.result(job_id, timeout=60)
        assert remote.status(job_id) == JobStatus.DONE
        assert len(result.iterations) == spec.search.n_iterations
        assert remote.jobs()[job_id] == JobStatus.DONE

    def test_submit_accepts_job_and_dict_forms(self, remote):
        spec = fast_spec(seed=22)
        from_spec = remote.mine(spec)
        from_dict = remote.mine(spec.to_dict())
        from_job = remote.mine(spec.to_job())
        _assert_results_identical(from_spec, from_dict)
        _assert_results_identical(from_spec, from_job)

    def test_failed_job_raises_remotely(self, remote):
        spec = fast_spec(seed=23, targets=["no-such-target"])
        job_id = remote.submit(spec)
        with pytest.raises(RemoteJobFailed) as excinfo:
            remote.result(job_id, timeout=60)
        assert "no-such-target" in str(excinfo.value)
        assert remote.status(job_id) == JobStatus.FAILED

    def test_result_long_poll_wait(self, remote):
        spec = fast_spec(seed=24)
        job_id = remote.submit(spec)
        status, document = remote._request(
            "GET", f"/jobs/{job_id}/result?wait=30"
        )
        assert status == 200
        assert document["status"] == "done"


class TestErrors:
    def test_unknown_job_id_is_404(self, remote):
        with pytest.raises(RemoteError) as excinfo:
            remote.status("job-9999")
        assert excinfo.value.status == 404

    def test_invalid_spec_is_400(self, remote):
        with pytest.raises(RemoteError) as excinfo:
            remote._request("POST", "/jobs", {"spec": {"dataset": "nope"}})
        assert excinfo.value.status == 400
        assert "nope" in str(excinfo.value)

    def test_unknown_route_is_404(self, remote):
        with pytest.raises(RemoteError) as excinfo:
            remote._request("GET", "/nope")
        assert excinfo.value.status == 404
        assert "/events" in str(excinfo.value)  # the 404 names the surface

    def test_client_validates_before_sending(self, remote):
        with pytest.raises(Exception):
            remote.submit({"dataset": "no-such-dataset"})


class TestStreaming:
    def test_stream_yields_every_iteration_in_order(self, remote):
        spec = fast_spec(seed=31, n_iterations=3)
        log = EventLog()
        iterations = list(remote.stream(spec, observer=log))
        assert [it.index for it in iterations] == [1, 2, 3]
        local = Workspace().mine(spec)
        for a, b in zip(local.iterations, iterations):
            assert str(a.location.description) == str(b.location.description)
            assert a.location.score.ic == b.location.score.ic
        # The observer heard this job's scheduling story too.
        kinds = [e.kind for e in log.schedule]
        assert "queued" in kinds
        assert log.jobs  # terminal on_job arrived

    def test_stream_of_cached_spec_still_yields_once_each(self, remote):
        spec = fast_spec(seed=31, n_iterations=3)  # cached by the test above
        iterations = list(remote.stream(spec))
        assert [it.index for it in iterations] == [1, 2, 3]

    def test_events_feed_decodes_live(self, remote):
        spec = fast_spec(seed=32)
        seen = []
        done = threading.Event()

        def consume():
            for event in remote.events():
                seen.append(event)
                if event.type in ("job", "job_failed"):
                    done.set()
                    return

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        time.sleep(0.2)  # subscriber online before the job
        remote.mine(spec)
        assert done.wait(60), "no terminal event on the feed"
        types = {event.type for event in seen}
        assert "schedule" in types
        assert "iteration" in types
        seqs = [event.seq for event in seen]
        assert seqs == sorted(seqs)

    def test_candidate_events_flow_on_the_thread_backend(self, remote):
        spec = fast_spec(seed=33)
        log = EventLog()
        list(remote.stream(spec, observer=log))
        assert log.candidates, "live candidate summaries should stream"
        first = log.candidates[0]
        assert {"description", "si", "size"} <= set(first)


class TestSSEResume:
    def test_reconnect_with_last_event_id_has_no_gap_or_duplicates(
        self, remote, server_handle
    ):
        # Populate the stream, then consume it across a deliberately
        # dropped connection.
        remote.mine(fast_spec(seed=41))
        published = int(remote.health()["events"]["published"])
        assert published > 0

        first_leg = []
        stream = _SSEStream(remote.host, remote.port, since=0, timeout=10.0)
        for seq, _ in stream.frames():
            first_leg.append(seq)
            if len(first_leg) >= 5:
                break
        stream.close()  # the "dropped" connection

        second_leg = []
        stream = _SSEStream(
            remote.host, remote.port, since=first_leg[-1], timeout=10.0
        )
        for seq, _ in stream.frames():
            second_leg.append(seq)
            if seq >= published:
                break
        stream.close()

        seqs = first_leg + second_leg
        assert seqs == sorted(set(seqs)), "duplicate delivery after resume"
        # No gap at the reconnect seam: the sequence is contiguous from
        # the first event of leg one through the last of leg two.
        assert seqs == list(range(seqs[0], seqs[-1] + 1))


class TestCancel:
    def test_cancel_while_queued_is_deterministic(self):
        server = MiningServer(port=0, backend="thread", max_workers=1)
        with server.run_in_thread() as handle:
            remote = RemoteWorkspace(handle.url, timeout=30.0)
            blocker_spec = fast_spec(
                seed=51, beam_width=40, max_depth=4, top_k=150, n_iterations=6
            )
            blocker = remote.submit(blocker_spec)
            victim = remote.submit(fast_spec(seed=52))
            assert remote.cancel(victim) is True
            assert remote.status(victim) == JobStatus.CANCELLED
            with pytest.raises(CancelledError):
                remote.result(victim, timeout=10)
            # Cancelling the terminal blocker later reports False.
            remote.result(blocker, timeout=120)
            assert remote.cancel(blocker) is False

    def test_cancelled_job_surfaces_on_the_stream(self):
        server = MiningServer(port=0, backend="thread", max_workers=1)
        with server.run_in_thread() as handle:
            remote = RemoteWorkspace(handle.url, timeout=30.0)
            blocker_spec = fast_spec(
                seed=53, beam_width=40, max_depth=4, top_k=150, n_iterations=6
            )
            remote.submit(blocker_spec)
            victim_spec = fast_spec(seed=54)

            caught = {}

            def run_stream():
                try:
                    list(remote.stream(victim_spec))
                except BaseException as exc:  # noqa: BLE001
                    caught["exc"] = exc

            thread = threading.Thread(target=run_stream, daemon=True)
            thread.start()
            # Wait for the victim to appear, then cancel it mid-stream.
            victim = None
            deadline = time.monotonic() + 30
            while victim is None and time.monotonic() < deadline:
                pending = [
                    job_id
                    for job_id, status in remote.jobs().items()
                    if status == JobStatus.PENDING
                ]
                victim = pending[0] if pending else None
                time.sleep(0.01)
            assert victim is not None, "victim never queued"
            assert remote.cancel(victim) is True
            thread.join(30)
            assert not thread.is_alive()
            assert isinstance(caught.get("exc"), CancelledError)


class TestServerLifecycle:
    def test_stop_ends_open_event_streams(self):
        server = MiningServer(port=0, backend="thread", max_workers=1)
        handle = server.run_in_thread()
        remote = RemoteWorkspace(handle.url, timeout=10.0)
        remote.mine(fast_spec(seed=61))
        feed = remote.events(since=0, reconnect=False)
        first = next(feed)  # stream is live (replaying retained history)
        assert first.seq >= 1
        handle.stop()
        # The feed ends (server closed the stream) instead of hanging.
        remaining = list(feed)
        assert all(event.seq > first.seq for event in remaining)

    def test_run_in_thread_reports_bind_failures(self):
        server = MiningServer(port=0, backend="thread", max_workers=1)
        with server.run_in_thread() as handle:
            clash = MiningServer(port=server.port, backend="thread")
            with pytest.raises(Exception):
                clash.run_in_thread()
            handle.stop()


class TestReviewHardening:
    def test_events_heartbeats_surface_on_a_quiet_stream(self):
        server = MiningServer(
            port=0, backend="thread", max_workers=1, heartbeat_seconds=0.1
        )
        with server.run_in_thread() as handle:
            remote = RemoteWorkspace(handle.url, timeout=10.0)
            feed = remote.events(heartbeats=True)
            first = next(feed)  # nothing published: only heartbeats flow
            assert first.type == "heartbeat"
            assert first.data is None
            feed.close()

    def test_events_against_a_dead_server_raises_remote_error(self):
        import socket as socket_module

        # Reserve a port, then close it so nothing is listening there.
        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        remote = RemoteWorkspace(f"http://127.0.0.1:{port}", timeout=2.0)
        with pytest.raises(RemoteError):
            next(remote.events())

    def test_stream_heals_a_lost_terminal_event_via_heartbeat(self):
        # A tiny subscriber queue plus a flood of candidate events makes
        # the drop-oldest policy discard this job's terminal event; the
        # heartbeat fallback must still complete the stream with every
        # iteration, instead of hanging forever.
        server = MiningServer(
            port=0,
            backend="thread",
            max_workers=1,
            queue_maxsize=2,
            heartbeat_seconds=0.2,
        )
        with server.run_in_thread() as handle:
            remote = RemoteWorkspace(handle.url, timeout=15.0)
            spec = fast_spec(seed=71, n_iterations=2)
            iterations = list(remote.stream(spec))
            assert [it.index for it in iterations] == [1, 2]
            local = Workspace().mine(spec)
            for a, b in zip(local.iterations, iterations):
                assert str(a.location) == str(b.location)
                assert a.location.score.ic == b.location.score.ic

    def test_oversized_request_line_gets_400_not_a_crashed_task(
        self, server_handle, remote
    ):
        import socket as socket_module

        with socket_module.create_connection(
            (remote.host, remote.port), timeout=10
        ) as raw:
            raw.sendall(b"GET /" + b"a" * 70_000 + b" HTTP/1.1\r\n\r\n")
            reply = raw.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400"), reply[:60]
        # ...and the server is still perfectly healthy afterwards.
        assert remote.health()["status"] == "ok"

    def test_oversized_header_line_gets_400(self, server_handle, remote):
        import socket as socket_module

        with socket_module.create_connection(
            (remote.host, remote.port), timeout=10
        ) as raw:
            raw.sendall(
                b"GET /health HTTP/1.1\r\nx-big: " + b"a" * 70_000 + b"\r\n\r\n"
            )
            reply = raw.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400"), reply[:60]
        assert remote.health()["status"] == "ok"

    def test_cancel_during_result_long_poll_answers_cleanly(self):
        # A waiter parked on /result?wait= while its job is cancelled
        # must receive the cancelled document (-> CancelledError), not a
        # dead socket from an asyncio.CancelledError escaping the guard.
        # The worker slot is held deterministically: the server exposes
        # a shared service whose blocker job parks on an Event via its
        # per-job observer (fired live on the thread backend).
        from repro.engine.service import MiningService
        from repro.events import CallbackObserver

        gate = threading.Event()
        service = MiningService(max_workers=1, backend="thread")
        server = MiningServer(port=0, service=service)
        try:
            with server.run_in_thread() as handle:
                remote = RemoteWorkspace(handle.url, timeout=30.0)
                service.submit(
                    fast_spec(seed=81).to_job(),
                    observer=CallbackObserver(on_iteration=lambda _: gate.wait(30)),
                )
                victim = remote.submit(fast_spec(seed=82))
                outcome = {}

                def wait_for_victim():
                    try:
                        remote.result(victim, timeout=30)
                        outcome["value"] = "done"
                    except BaseException as exc:  # noqa: BLE001
                        outcome["value"] = exc

                waiter = threading.Thread(target=wait_for_victim, daemon=True)
                waiter.start()
                time.sleep(0.3)  # the waiter is parked in its long-poll leg
                assert remote.cancel(victim) is True
                waiter.join(30)
                assert not waiter.is_alive()
                assert isinstance(outcome["value"], CancelledError), outcome
                gate.set()
        finally:
            gate.set()
            service.shutdown(wait=True)

    def test_events_job_id_filter_is_applied_server_side(self):
        server = MiningServer(port=0, backend="thread", max_workers=2)
        with server.run_in_thread() as handle:
            remote = RemoteWorkspace(handle.url, timeout=15.0)
            first = remote.submit(fast_spec(seed=91))
            second = remote.submit(fast_spec(seed=92))
            remote.result(first, timeout=60)
            remote.result(second, timeout=60)
            only_second = []
            feed = remote.events(since=0, reconnect=False, job_id=second)
            for event in feed:  # stop at the terminal: the feed stays live
                only_second.append(event)
                if event.type == "job":
                    break
            feed.close()
            # Everything that crossed the wire belongs to the filtered job.
            assert only_second, "filtered feed delivered nothing"
            assert {event.job_id for event in only_second} == {second}
            assert only_second[-1].type == "job"
