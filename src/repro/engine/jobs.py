"""Declarative mining jobs and the deterministic multi-job runner.

A :class:`MiningJob` is the *what* of a mining run — dataset reference,
target selection, prior, search configuration, iteration count — with no
execution state, so it round-trips through JSON (``repro.persist``) and
fingerprints stably for caching. :func:`run_jobs` is the *how*: it fans
a batch of jobs out over an :class:`~repro.engine.executor.Executor` and
returns results in submission order, which makes parameter sweeps and
per-target fan-outs (many datasets × many configs) one call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.engine.cache import LRUCache, fingerprint, load_dataset_cached
from repro.engine.executor import Executor, SerialExecutor, resolve_executor
from repro.errors import EngineError
from repro.interest.dl import DLParams
from repro.model.priors import Prior
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.search.results import MiningIteration

#: Pattern kinds a job may request, mirroring ``SubgroupDiscovery.step``.
JOB_KINDS = ("location", "spread")


@dataclass(frozen=True, eq=True)
class MiningJob:
    """One self-contained mining run, specified declaratively.

    Attributes
    ----------
    dataset:
        Registry name understood by :func:`repro.datasets.load_dataset`.
    name:
        Human label for reports; defaults to ``dataset/kind`` plus a
        fingerprint prefix. Two jobs differing only in ``name`` are the
        same work (same :meth:`fingerprint`).
    dataset_seed / dataset_kwargs:
        Forwarded to the dataset generator.
    targets:
        Optional subset of target attributes to model.
    prior:
        Optional explicit background prior as ``{"mean": [...],
        "cov": [[...]]}``; ``None`` uses the empirical prior.
    kind / sparsity / n_iterations / seed:
        Mining-loop parameters, as in :class:`SubgroupDiscovery`.
    config:
        Beam-search settings.
    gamma / eta:
        Description-length weights.
    """

    dataset: str
    name: str = ""
    dataset_seed: int = 0
    dataset_kwargs: dict = field(default_factory=dict)
    targets: tuple[str, ...] | None = None
    prior: dict | None = None
    kind: str = "location"
    sparsity: int | None = None
    n_iterations: int = 1
    seed: int = 0
    config: SearchConfig = SearchConfig()
    gamma: float = 0.1
    eta: float = 1.0

    def __post_init__(self) -> None:
        if not self.dataset:
            raise EngineError("job needs a dataset name")
        if self.kind not in JOB_KINDS:
            raise EngineError(
                f"kind must be one of {JOB_KINDS}, got {self.kind!r}"
            )
        if self.n_iterations < 1:
            raise EngineError(
                f"n_iterations must be >= 1, got {self.n_iterations}"
            )
        if self.targets is not None:
            object.__setattr__(self, "targets", tuple(self.targets))
        if self.prior is not None and not (
            isinstance(self.prior, dict) and {"mean", "cov"} <= set(self.prior)
        ):
            raise EngineError("prior must be a dict with 'mean' and 'cov'")
        if not self.name:
            object.__setattr__(
                self,
                "name",
                f"{self.dataset}/{self.kind}#{self.fingerprint()[:8]}",
            )

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def __hash__(self) -> int:
        # The generated dataclass hash would choke on the dict fields;
        # hashing the spec digest keeps frozen jobs usable in sets and
        # stays consistent with __eq__ (equal jobs share a fingerprint).
        return hash(self.fingerprint())

    def spec(self) -> dict:
        """The name-free canonical spec (what the job computes)."""
        return {
            "dataset": self.dataset,
            "dataset_seed": self.dataset_seed,
            "dataset_kwargs": self.dataset_kwargs,
            "targets": list(self.targets) if self.targets is not None else None,
            "prior": self.prior,
            "kind": self.kind,
            "sparsity": self.sparsity,
            "n_iterations": self.n_iterations,
            "seed": self.seed,
            "config": self.config.to_dict(),
            "gamma": self.gamma,
            "eta": self.eta,
        }

    def fingerprint(self) -> str:
        """Stable digest of the spec; equal work ⇒ equal fingerprint."""
        return fingerprint(self.spec())

    def with_name(self, name: str) -> "MiningJob":
        """The same work under a different label."""
        return replace(self, name=name)

    def dl_params(self) -> DLParams:
        """The job's description-length weights as a DLParams."""
        return DLParams(gamma=self.gamma, eta=self.eta)

    def build_prior(self) -> Prior | None:
        """Materialize the explicit prior, or None for empirical."""
        if self.prior is None:
            return None
        return Prior(
            np.asarray(self.prior["mean"], dtype=float),
            np.asarray(self.prior["cov"], dtype=float),
        )


@dataclass(frozen=True)
class JobResult:
    """What one job mined, plus how long it took."""

    job: MiningJob
    iterations: tuple[MiningIteration, ...]
    elapsed_seconds: float

    def format(self) -> str:
        """Human-readable per-job report, one pattern per line."""
        lines = [
            f"[{self.job.name}] {self.job.dataset} ×{self.job.n_iterations} "
            f"({self.elapsed_seconds:.2f}s)"
        ]
        for iteration in self.iterations:
            lines.append(f"  {iteration.index}. {iteration.location}")
            if iteration.spread is not None:
                lines.append(f"     {iteration.spread}")
        return "\n".join(lines)


@dataclass(frozen=True)
class JobFailure:
    """A job that raised instead of mining (``run_jobs`` isolation)."""

    job: MiningJob
    error: str

    def format(self) -> str:
        """Human-readable one-line failure report."""
        return f"[{self.job.name}] FAILED: {self.error}"


def run_job(
    job: MiningJob,
    *,
    executor: Executor | None = None,
    dataset_cache: LRUCache | None = None,
) -> JobResult:
    """Execute one job start-to-finish and return its result.

    ``executor`` parallelizes *inside* the job (beam levels, spread
    restarts); leave it serial when the jobs themselves are fanned out.
    """
    dataset = load_dataset_cached(
        job.dataset,
        seed=job.dataset_seed,
        cache=dataset_cache,
        **job.dataset_kwargs,
    )
    miner = SubgroupDiscovery(
        dataset,
        targets=list(job.targets) if job.targets is not None else None,
        prior=job.build_prior(),
        config=job.config,
        dl_params=job.dl_params(),
        seed=job.seed,
        executor=executor or SerialExecutor(),
    )
    started = time.perf_counter()
    iterations = miner.run(job.n_iterations, kind=job.kind, sparsity=job.sparsity)
    return JobResult(
        job=job,
        iterations=tuple(iterations),
        elapsed_seconds=time.perf_counter() - started,
    )


def _run_job_task(job: MiningJob) -> JobResult:
    """Module-level job entry point so process pools can import it."""
    return run_job(job)


def _run_job_isolated(job: MiningJob) -> JobResult | JobFailure:
    """Like :func:`_run_job_task`, but a raising job becomes a record."""
    try:
        return run_job(job)
    except Exception as exc:
        return JobFailure(job=job, error=f"{type(exc).__name__}: {exc}")


def run_jobs(
    jobs: Iterable[MiningJob],
    *,
    workers: int | None = None,
    executor: Executor | None = None,
    return_failures: bool = False,
) -> list:
    """Run a batch of jobs, returning results in submission order.

    Jobs are independent, so execution order is irrelevant to the output:
    the same batch produces the same patterns at any worker count. Pass
    either a ``workers`` count or an explicit ``executor``.

    By default the first failing job raises and the batch's other
    results are lost; with ``return_failures=True`` each failing job
    yields a :class:`JobFailure` in its slot instead, so one bad spec
    cannot discard forty good results.
    """
    batch: Sequence[MiningJob] = list(jobs)
    for job in batch:
        if not isinstance(job, MiningJob):
            raise EngineError(f"expected MiningJob, got {type(job).__name__}")
    if not batch:
        return []
    task = _run_job_isolated if return_failures else _run_job_task
    if executor is None:
        executor = resolve_executor(workers)
    if executor.parallelism <= 1:
        # Serial path shares one dataset cache across the whole batch.
        return [task(job) for job in batch]
    return executor.map(task, batch)
