"""Sessions from specs: undo, bit-identical resume, and optimal search.

Demonstrates the front-door workflow beyond one-shot mining:

1. :meth:`repro.Workspace.session` — an undoable, saveable mining
   dialogue built from the same declarative spec as every other mode;
2. resuming a saved belief state (including the search RNG, so the
   continuation is bit-identical to never having stopped);
3. a ``strategy="branch_bound"`` spec — the paper's §V plan — returning
   the provably optimal location pattern of the language.

Run with::

    python examples/session_workflow.py
"""

import tempfile
from pathlib import Path

from repro import MiningSession, MiningSpec, Workspace, load_dataset


def main() -> None:
    spec = MiningSpec.build("synthetic", kind="spread")
    with Workspace() as workspace:
        # 1. An undoable dialogue, built from the spec.
        session = workspace.session(spec)
        session.step(kind="spread")
        session.step(kind="spread")
        print(session.report())

        undone = session.undo()
        print(f"\nundo -> forgot {undone.location.description}; "
              f"{session.n_iterations} iteration(s) remain")

        # 2. Save the belief state (and the RNG), resume it elsewhere,
        #    continue mining exactly where it left off.
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "session.json"
            session.save(path)
            resumed = MiningSession.resume(
                load_dataset("synthetic", seed=0), path, seed=0
            )
            next_iteration = resumed.step()
            print(f"resumed session mines next: {next_iteration.location.description}")

        # 3. Provably optimal location patterns through the same front
        #    door: just name a different search strategy in the spec.
        optimum_spec = MiningSpec.build(
            "crime",
            strategy="branch_bound",
            max_depth=2,
            attributes=["pct_illeg", "pct_poverty", "med_income", "pct_unemployed"],
        )
        optimum = workspace.mine(optimum_spec).iterations[0].location
        print(f"\nbranch-and-bound optimum on crime (depth 2): "
              f"{optimum.description}  SI={optimum.si:.1f}")
        print("  (guaranteed optimal within the description language - "
              "the paper's §V future work)")


if __name__ == "__main__":
    main()
