"""Tests for the paper's synthetic data generator (§III-A)."""

import numpy as np
import pytest

from repro.datasets.synthetic import cluster_center, cluster_covariance, make_synthetic


class TestShape:
    def test_paper_dimensions(self, synthetic_dataset):
        ds = synthetic_dataset
        assert ds.n_rows == 620
        assert ds.n_targets == 2
        assert ds.n_descriptions == 5
        assert ds.description_names == [f"attr{j}" for j in range(3, 8)]
        assert ds.target_names == ["attr1", "attr2"]

    def test_all_descriptions_binary(self, synthetic_dataset):
        for col in synthetic_dataset.columns():
            assert set(np.unique(col.values)) <= {0.0, 1.0}

    def test_custom_sizes(self):
        ds = make_synthetic(0, n_background=100, cluster_size=10)
        assert ds.n_rows == 130


class TestPlantedStructure:
    def test_labels_match_clusters(self, synthetic_dataset):
        cluster = synthetic_dataset.metadata["cluster"]
        for k, attr in enumerate(("attr3", "attr4", "attr5"), start=1):
            np.testing.assert_array_equal(
                synthetic_dataset.column(attr).values == 1.0, cluster == k
            )

    def test_cluster_sizes(self, synthetic_dataset):
        cluster = synthetic_dataset.metadata["cluster"]
        for k in (1, 2, 3):
            assert (cluster == k).sum() == 40

    def test_cluster_centers_at_distance_two(self):
        for k in range(3):
            assert np.linalg.norm(cluster_center(k)) == pytest.approx(2.0)

    def test_cluster_covariance_anisotropic(self):
        for k in range(3):
            eigvals = np.linalg.eigvalsh(cluster_covariance(k))
            assert eigvals[-1] / eigvals[0] > 10.0

    def test_cluster_means_near_centers(self, synthetic_dataset):
        cluster = synthetic_dataset.metadata["cluster"]
        for k in (1, 2, 3):
            mean = synthetic_dataset.targets[cluster == k].mean(axis=0)
            assert np.linalg.norm(mean - cluster_center(k - 1)) < 0.5

    def test_noise_attributes_uninformative(self, synthetic_dataset):
        cluster = synthetic_dataset.metadata["cluster"]
        for attr in ("attr6", "attr7"):
            values = synthetic_dataset.column(attr).values
            # Roughly half ones, and no alignment with any planted cluster.
            assert 0.4 < values.mean() < 0.6
            for k in (1, 2, 3):
                overlap = values[cluster == k].mean()
                assert 0.25 < overlap < 0.75

    def test_background_points_standard_normal(self, synthetic_dataset):
        cluster = synthetic_dataset.metadata["cluster"]
        background = synthetic_dataset.targets[cluster == 0]
        assert np.abs(background.mean(axis=0)).max() < 0.15
        assert np.abs(background.std(axis=0) - 1.0).max() < 0.15


class TestFlipNoise:
    def test_zero_flip_is_clean(self):
        a = make_synthetic(5, flip_probability=0.0)
        b = make_synthetic(5)
        np.testing.assert_array_equal(
            a.column("attr3").values, b.column("attr3").values
        )

    def test_flip_rate_close_to_p(self):
        clean = make_synthetic(7)
        noisy = make_synthetic(7, flip_probability=0.2)
        flips = np.mean(
            [
                (clean.column(a).values != noisy.column(a).values).mean()
                for a in clean.description_names
            ]
        )
        assert 0.15 < flips < 0.25

    def test_targets_unaffected_by_flip(self):
        clean = make_synthetic(7)
        noisy = make_synthetic(7, flip_probability=0.3)
        np.testing.assert_array_equal(clean.targets, noisy.targets)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            make_synthetic(0, flip_probability=1.5)
