"""Pattern search: beam search for locations, sphere ascent for spreads.

The paper (§II-D) mines location patterns with Cortana-style beam search
over the description language and spread directions with gradient-based
optimization on the unit sphere (Manopt in the original; our own
Riemannian ascent here). :class:`SubgroupDiscovery` ties both to the
evolving background model for iterative mining.
"""

from repro.search.config import SearchConfig
from repro.search.results import (
    LocationPatternResult,
    MiningIteration,
    ResultSet,
    ScoredSubgroup,
    SearchResult,
    SpreadPatternResult,
)
from repro.search.beam import LocationBeamSearch, LocationICScorer
from repro.search.spread import SpreadObjective, find_spread_direction
from repro.search.miner import SubgroupDiscovery

__all__ = [
    "SearchConfig",
    "LocationPatternResult",
    "SpreadPatternResult",
    "MiningIteration",
    "ResultSet",
    "ScoredSubgroup",
    "SearchResult",
    "LocationBeamSearch",
    "LocationICScorer",
    "SpreadObjective",
    "find_spread_direction",
    "SubgroupDiscovery",
]
