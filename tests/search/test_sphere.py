"""Tests for unit-sphere manifold primitives."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.search.sphere import canonical_sign, project_tangent, random_unit, retract


class TestRandomUnit:
    def test_unit_norm(self, rng):
        for d in (1, 2, 7):
            assert np.linalg.norm(random_unit(rng, d)) == pytest.approx(1.0)

    def test_invalid_dim(self, rng):
        with pytest.raises(SearchError):
            random_unit(rng, 0)

    def test_reproducible(self):
        a = random_unit(np.random.default_rng(0), 4)
        b = random_unit(np.random.default_rng(0), 4)
        np.testing.assert_array_equal(a, b)


class TestProjectTangent:
    def test_orthogonal_to_point(self, rng):
        w = random_unit(rng, 5)
        v = rng.standard_normal(5)
        tangent = project_tangent(w, v)
        assert float(w @ tangent) == pytest.approx(0.0, abs=1e-12)

    def test_tangent_fixed_point(self, rng):
        w = random_unit(rng, 4)
        v = rng.standard_normal(4)
        tangent = project_tangent(w, v)
        np.testing.assert_allclose(project_tangent(w, tangent), tangent, atol=1e-12)


class TestRetract:
    def test_unit_norm(self, rng):
        w = random_unit(rng, 3)
        step = 0.3 * project_tangent(w, rng.standard_normal(3))
        assert np.linalg.norm(retract(w, step)) == pytest.approx(1.0)

    def test_zero_step_identity(self, rng):
        w = random_unit(rng, 3)
        np.testing.assert_allclose(retract(w, np.zeros(3)), w)

    def test_collapse_rejected(self):
        w = np.array([1.0, 0.0])
        with pytest.raises(SearchError, match="collapsed"):
            retract(w, -w)


class TestCanonicalSign:
    def test_largest_entry_positive(self):
        w = np.array([0.3, -0.9, 0.2])
        out = canonical_sign(w)
        assert out[1] > 0

    def test_idempotent(self, rng):
        w = random_unit(rng, 6)
        once = canonical_sign(w)
        np.testing.assert_array_equal(canonical_sign(once), once)

    def test_positive_unchanged(self):
        w = np.array([0.6, 0.8])
        np.testing.assert_array_equal(canonical_sign(w), w)
