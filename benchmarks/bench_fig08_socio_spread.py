"""Fig. 8: the East pattern's party surprisals and 2-sparse spread.

Paper: weight vector (0.5704, 0.8214) on (CDU, SPD); variance along it
far smaller than the background expects.
"""

import numpy as np

from repro.experiments.socio_exp import run_fig8


def bench_fig8_socio_spread(benchmark, save_result):
    result = benchmark.pedantic(run_fig8, args=(0,), rounds=3, iterations=1)
    save_result("fig08_socio_spread", result.format())
    assert set(result.direction_attributes) == {"cdu_2009", "spd_2009"}
    nonzero = result.direction[np.abs(result.direction) > 1e-12]
    assert abs(float(nonzero @ np.array([0.5704, 0.8214]))) > 0.99
    assert result.observed_variance < 0.2 * result.expected_variance
