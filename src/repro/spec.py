"""The unified mining configuration: one frozen, validated ``MiningSpec``.

Before this module the library had three competing config surfaces —
:class:`~repro.search.config.SearchConfig` knobs,
:class:`~repro.interest.dl.DLParams` weights, and
:class:`~repro.engine.jobs.MiningJob` kwargs. A :class:`MiningSpec`
subsumes them all behind six declarative sections:

- :class:`DatasetSpec` — *what data*: a :data:`repro.registry.DATASETS`
  name, its seed/kwargs, an optional target selection.
- :class:`LanguageSpec` — *which descriptions*: discretization and the
  attribute subset the refinement operator searches over.
- :class:`ModelSpec` — *whose beliefs*: a :data:`repro.registry.MODELS`
  kind and an optional explicit prior.
- :class:`InterestSpec` — *what is interesting*: a
  :data:`repro.registry.MEASURES` name plus the DL weights.
- :class:`SearchSpec` — *how to look*: a :data:`repro.registry.SEARCHES`
  strategy and the loop/beam parameters.
- :class:`ExecutorSpec` — *on what hardware*: worker count and service
  backend. Excluded from :meth:`MiningSpec.fingerprint`, because the
  engine's determinism contract makes results executor-independent.

Everything is strings and numbers, so a spec round-trips through JSON
(:func:`repro.persist.save_spec` / :func:`~repro.persist.load_spec`) and
one saved file drives all three execution modes of
:class:`repro.api.Workspace` — inline ``mine``, interactive ``session``,
service ``submit`` — with byte-identical results.

>>> spec = MiningSpec.build("synthetic", kind="spread", n_iterations=3)
>>> spec.fingerprint() == MiningSpec.from_dict(spec.to_dict()).fingerprint()
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, TypeVar

from repro.engine.cache import fingerprint as _fingerprint
from repro.engine.jobs import MiningJob
from repro.errors import ReproError
from repro.registry import DATASETS, MEASURES, MODELS, SEARCHES
from repro.search.config import SearchConfig

#: Schema version embedded in serialized specs; bump on breaking changes.
SPEC_SCHEMA = 1

_S = TypeVar("_S")


def _section_from_dict(cls: type[_S], data: dict[str, Any] | None, section: str) -> _S:
    """Build one section dataclass from its dict, rejecting unknown keys."""
    if data is None:
        data = {}
    if not isinstance(data, dict):
        raise ReproError(f"spec section {section!r} must be an object, got {data!r}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ReproError(
            f"unknown keys in spec section {section!r}: {sorted(unknown)}"
        )
    try:
        return cls(**data)
    except TypeError as exc:
        raise ReproError(f"invalid spec section {section!r}: {exc}") from exc


def _name_tuple(value: Any, field_name: str) -> tuple[str, ...] | None:
    """Coerce a list of names to a tuple; reject bare strings.

    ``targets="ab"`` would silently become ``('a', 'b')`` under a plain
    ``tuple()`` — a single name must be spelled as a one-element list.
    """
    if value is None:
        return None
    if isinstance(value, str):
        raise ReproError(
            f"{field_name} must be a list of names, not a bare string; "
            f"use [{value!r}]"
        )
    return tuple(value)


def _weight_tuple(value: Any, field_name: str) -> tuple[float, ...] | None:
    """Coerce case weights to a validated tuple of positive finite floats."""
    if value is None:
        return None
    if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
        raise ReproError(f"{field_name} must be a list of numbers or null")
    try:
        weights = tuple(float(w) for w in value)
    except (TypeError, ValueError):
        raise ReproError(f"{field_name} must be a list of numbers") from None
    if not weights:
        raise ReproError(f"{field_name} must be non-empty or null")
    if any(not math.isfinite(w) or w <= 0.0 for w in weights):
        raise ReproError(f"{field_name} must be positive finite numbers")
    return weights


@dataclass(frozen=True)
class DatasetSpec:
    """What data to mine: a registered dataset name plus its parameters.

    ``weights`` carries optional per-row case weights (frequency
    semantics; one positive finite number per dataset row). They change
    every score the loop computes, so they are fingerprint-relevant —
    and they are *omitted* from serialized/fingerprinted forms when
    ``None``, which keeps every pre-weights fingerprint stable.
    """

    name: str
    seed: int = 0
    kwargs: dict[str, Any] = field(default_factory=dict)
    targets: tuple[str, ...] | None = None
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("dataset section needs a non-empty name")
        if self.kwargs is None:
            object.__setattr__(self, "kwargs", {})
        elif not isinstance(self.kwargs, dict):
            raise ReproError(
                f"dataset kwargs must be an object, got {self.kwargs!r}"
            )
        else:
            # Defensive copy: mutating the caller's dict afterwards must
            # not reach inside a validated frozen spec.
            object.__setattr__(self, "kwargs", dict(self.kwargs))
        object.__setattr__(self, "targets", _name_tuple(self.targets, "targets"))
        object.__setattr__(
            self, "weights", _weight_tuple(self.weights, "dataset weights")
        )


@dataclass(frozen=True)
class LanguageSpec:
    """Which description language: discretization and attribute subset."""

    n_split_points: int = 4
    split_strategy: str = "percentile"
    attributes: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "attributes", _name_tuple(self.attributes, "attributes")
        )


@dataclass(frozen=True)
class ModelSpec:
    """Whose beliefs: the background-model kind and an optional prior."""

    kind: str = "gaussian"
    prior: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.prior is not None:
            if not (
                isinstance(self.prior, dict) and {"mean", "cov"} <= set(self.prior)
            ):
                raise ReproError("model prior must be a dict with 'mean' and 'cov'")
            object.__setattr__(self, "prior", dict(self.prior))


@dataclass(frozen=True)
class InterestSpec:
    """What counts as interesting: the measure and the DL weights."""

    measure: str = "si"
    gamma: float = 0.1
    eta: float = 1.0


@dataclass(frozen=True)
class SearchSpec:
    """How to look: the strategy plus loop and beam parameters."""

    strategy: str = "beam"
    kind: str = "location"
    n_iterations: int = 1
    sparsity: int | None = None
    seed: int = 0
    beam_width: int = 40
    max_depth: int = 4
    top_k: int = 150
    min_coverage: int = 2
    max_coverage_fraction: float = 1.0
    time_budget_seconds: float | None = None


@dataclass(frozen=True)
class ExecutorSpec:
    """On what hardware: in-search workers and the service backend.

    ``workers`` parallelizes the ``"beam"`` strategy's search (its
    scoring shards and spread restarts; 0/1 = serial) — the single-shot
    strategies (``branch_bound``, ``quality_beam``) are sequential
    algorithms and always run serial regardless of this setting.
    ``shared_memory`` switches the parallel context transport to
    ``multiprocessing.shared_memory`` with a persistent warm worker pool
    (see :mod:`repro.engine.shm`) — worth it on large datasets, where
    re-pickling the scorer per session dominates; ignored when the
    search runs serial. ``backend`` is the service pool a
    :class:`repro.api.Workspace` creates when this spec's
    :meth:`~repro.api.Workspace.submit` has to build one (an explicit
    ``Workspace(service_backend=...)`` wins). ``priority`` and
    ``deadline`` are the scheduling terms a submitted spec carries onto
    the service queue (higher priority dispatches first; a job still
    queued ``deadline`` seconds after submission expires instead of
    running) — inert for the inline ``mine``/``stream``/``session``
    modes, which execute immediately. Never part of the fingerprint —
    nothing in this section can change the patterns, only where, when,
    and whether they are computed (the engine's determinism contract
    guarantees the same patterns at any worker count over any
    transport).
    """

    workers: int = 1
    backend: str = "process"
    start_method: str | None = None
    shared_memory: bool = False
    priority: int = 0
    deadline: float | None = None

    def __post_init__(self) -> None:
        from repro.engine.executor import BACKENDS, normalize_workers

        normalize_workers(self.workers)  # rejects negative counts eagerly
        if self.backend not in BACKENDS:
            raise ReproError(
                f"executor backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if not isinstance(self.shared_memory, bool):
            raise ReproError(
                f"executor shared_memory must be a boolean, "
                f"got {self.shared_memory!r}"
            )
        # Validated against the universal name set, not this platform's
        # multiprocessing.get_all_start_methods(): a spec file written on
        # Linux must still *load* on spawn-only platforms (whether the
        # method runs there is an execution-time concern).
        if self.start_method is not None and self.start_method not in (
            "fork", "spawn", "forkserver",
        ):
            raise ReproError(
                f"executor start_method must be one of "
                f"('fork', 'spawn', 'forkserver'), got {self.start_method!r}"
            )
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ReproError(
                f"executor priority must be an int, got {self.priority!r}"
            )
        if self.deadline is not None:
            try:
                deadline = float(self.deadline)
            except (TypeError, ValueError):
                raise ReproError(
                    f"executor deadline must be a number of seconds or null, "
                    f"got {self.deadline!r}"
                ) from None
            if not (deadline >= 0):  # also rejects NaN
                raise ReproError(
                    f"executor deadline must be >= 0 seconds, got {self.deadline!r}"
                )
            object.__setattr__(self, "deadline", deadline)


#: Flat keyword -> (section, field) routing used by :meth:`MiningSpec.build`.
_FLAT_FIELDS: dict[str, tuple[str, str]] = {
    "dataset_seed": ("dataset", "seed"),
    "dataset_kwargs": ("dataset", "kwargs"),
    "targets": ("dataset", "targets"),
    "weights": ("dataset", "weights"),
    "n_split_points": ("language", "n_split_points"),
    "split_strategy": ("language", "split_strategy"),
    "attributes": ("language", "attributes"),
    "model": ("model", "kind"),
    "prior": ("model", "prior"),
    "measure": ("interest", "measure"),
    "gamma": ("interest", "gamma"),
    "eta": ("interest", "eta"),
    "strategy": ("search", "strategy"),
    "kind": ("search", "kind"),
    "n_iterations": ("search", "n_iterations"),
    "sparsity": ("search", "sparsity"),
    "seed": ("search", "seed"),
    "beam_width": ("search", "beam_width"),
    "max_depth": ("search", "max_depth"),
    "top_k": ("search", "top_k"),
    "min_coverage": ("search", "min_coverage"),
    "max_coverage_fraction": ("search", "max_coverage_fraction"),
    "time_budget_seconds": ("search", "time_budget_seconds"),
    "workers": ("executor", "workers"),
    "backend": ("executor", "backend"),
    "start_method": ("executor", "start_method"),
    "shared_memory": ("executor", "shared_memory"),
    "priority": ("executor", "priority"),
    "deadline": ("executor", "deadline"),
}

_SECTIONS = ("dataset", "language", "model", "interest", "search", "executor")
_SECTION_CLASSES = {
    "dataset": DatasetSpec,
    "language": LanguageSpec,
    "model": ModelSpec,
    "interest": InterestSpec,
    "search": SearchSpec,
    "executor": ExecutorSpec,
}


@dataclass(frozen=True)
class MiningSpec:
    """One frozen, validated, JSON-round-trippable mining configuration.

    Construction validates everything eagerly: registry keys resolve
    (with errors listing what *is* registered), the search numbers
    satisfy :class:`~repro.search.config.SearchConfig`'s invariants, and
    the strategy/measure/loop cross-rules of
    :class:`~repro.engine.jobs.MiningJob` hold — so a spec that exists
    is a spec that runs.

    ``dataset`` may be given as a bare name string; it is promoted to a
    :class:`DatasetSpec`.
    """

    dataset: DatasetSpec
    language: LanguageSpec = LanguageSpec()
    model: ModelSpec = ModelSpec()
    interest: InterestSpec = InterestSpec()
    search: SearchSpec = SearchSpec()
    executor: ExecutorSpec = ExecutorSpec()
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.dataset, str):
            object.__setattr__(self, "dataset", DatasetSpec(self.dataset))
        DATASETS.get(self.dataset.name)
        SEARCHES.get(self.search.strategy)
        MODELS.get(self.model.kind)
        MEASURES.get(self.interest.measure)
        if self.model.kind != "gaussian":
            raise ReproError(
                f"the mining loop currently executes the 'gaussian' background "
                f"model only; {self.model.kind!r} is registered but not yet "
                f"drivable from a spec"
            )
        # Building the equivalent job validates both the numeric search
        # invariants (via SearchConfig) and the strategy/measure/loop
        # cross-rules, so an invalid spec cannot be constructed.
        self.to_job()

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the dict
        # fields (dataset kwargs, model prior); hashing the work digest
        # keeps specs usable in sets and consistent with __eq__ on
        # everything but the excluded name/executor labels.
        return hash(self.fingerprint())

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _route_flat(kwargs: dict[str, Any]) -> dict[str, dict[str, Any]]:
        """Route flat keywords to ``{section: {field: value}}`` dicts."""
        sections: dict[str, dict[str, Any]] = {}
        for key, value in kwargs.items():
            try:
                section, field_name = _FLAT_FIELDS[key]
            except KeyError:
                raise ReproError(
                    f"unknown spec keyword {key!r}; accepted: "
                    f"{', '.join(sorted(_FLAT_FIELDS))}"
                ) from None
            sections.setdefault(section, {})[field_name] = value
        return sections

    @classmethod
    def build(cls, dataset: str, *, name: str = "", **kwargs: Any) -> "MiningSpec":
        """Flat-keyword constructor: route each kwarg to its section.

        ``MiningSpec.build("water", kind="spread", workers=4)`` spares
        callers (the CLI, quick scripts) the nested section spelling.
        ``seed`` is the mining seed; ``dataset_seed`` seeds the dataset
        generator. Unknown keywords raise, listing what is accepted.
        """
        routed = cls._route_flat(kwargs)
        routed.setdefault("dataset", {})["name"] = dataset
        return cls(
            name=name,
            **{
                section: _SECTION_CLASSES[section](**routed.get(section, {}))
                for section in _SECTIONS
            },
        )

    def with_changes(self, **kwargs: Any) -> "MiningSpec":
        """A copy with flat keywords applied (see :meth:`build`)."""
        name = kwargs.pop("name", self.name)
        updated = {
            section: replace(getattr(self, section), **values)
            for section, values in self._route_flat(kwargs).items()
        }
        return replace(self, name=name, **updated)

    # ------------------------------------------------------------------ #
    # Derived configuration
    # ------------------------------------------------------------------ #
    def search_config(self) -> SearchConfig:
        """The language + search sections merged into a SearchConfig."""
        return SearchConfig(
            beam_width=self.search.beam_width,
            max_depth=self.search.max_depth,
            top_k=self.search.top_k,
            n_split_points=self.language.n_split_points,
            split_strategy=self.language.split_strategy,
            min_coverage=self.search.min_coverage,
            max_coverage_fraction=self.search.max_coverage_fraction,
            time_budget_seconds=self.search.time_budget_seconds,
            attributes=self.language.attributes,
        )

    # ------------------------------------------------------------------ #
    # Job interop
    # ------------------------------------------------------------------ #
    def to_job(self) -> MiningJob:
        """The equivalent declarative job (the engine's execution unit)."""
        return MiningJob(
            dataset=self.dataset.name,
            name=self.name,
            dataset_seed=self.dataset.seed,
            dataset_kwargs=dict(self.dataset.kwargs),
            targets=self.dataset.targets,
            weights=self.dataset.weights,
            prior=self.model.prior,
            kind=self.search.kind,
            sparsity=self.search.sparsity,
            n_iterations=self.search.n_iterations,
            seed=self.search.seed,
            config=self.search_config(),
            gamma=self.interest.gamma,
            eta=self.interest.eta,
            strategy=self.search.strategy,
            measure=self.interest.measure,
            priority=self.executor.priority,
            deadline=self.executor.deadline,
        )

    @classmethod
    def from_job(cls, job: MiningJob) -> "MiningSpec":
        """Lift a legacy job into the sectioned spec form."""
        config = job.config
        return cls(
            dataset=DatasetSpec(
                name=job.dataset,
                seed=job.dataset_seed,
                kwargs=dict(job.dataset_kwargs),
                targets=job.targets,
                weights=job.weights,
            ),
            language=LanguageSpec(
                n_split_points=config.n_split_points,
                split_strategy=config.split_strategy,
                attributes=config.attributes,
            ),
            model=ModelSpec(prior=job.prior),
            interest=InterestSpec(
                measure=job.measure, gamma=job.gamma, eta=job.eta
            ),
            search=SearchSpec(
                strategy=job.strategy,
                kind=job.kind,
                n_iterations=job.n_iterations,
                sparsity=job.sparsity,
                seed=job.seed,
                beam_width=config.beam_width,
                max_depth=config.max_depth,
                top_k=config.top_k,
                min_coverage=config.min_coverage,
                max_coverage_fraction=config.max_coverage_fraction,
                time_budget_seconds=config.time_budget_seconds,
            ),
            executor=ExecutorSpec(priority=job.priority, deadline=job.deadline),
            name=job.name,
        )

    # ------------------------------------------------------------------ #
    # Serialization and identity
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe sectioned form (tuples become lists)."""
        document: dict[str, Any] = {"schema": SPEC_SCHEMA}
        if self.name:
            document["name"] = self.name
        document["dataset"] = {
            "name": self.dataset.name,
            "seed": self.dataset.seed,
            "kwargs": dict(self.dataset.kwargs),
            "targets": list(self.dataset.targets)
            if self.dataset.targets is not None
            else None,
        }
        if self.dataset.weights is not None:
            # Emitted only when set: pre-weights documents and their
            # fingerprints stay byte-identical.
            document["dataset"]["weights"] = list(self.dataset.weights)
        document["language"] = {
            "n_split_points": self.language.n_split_points,
            "split_strategy": self.language.split_strategy,
            "attributes": list(self.language.attributes)
            if self.language.attributes is not None
            else None,
        }
        document["model"] = {"kind": self.model.kind, "prior": self.model.prior}
        document["interest"] = {
            "measure": self.interest.measure,
            "gamma": self.interest.gamma,
            "eta": self.interest.eta,
        }
        document["search"] = {
            f.name: getattr(self.search, f.name) for f in fields(SearchSpec)
        }
        document["executor"] = {
            f.name: getattr(self.executor, f.name) for f in fields(ExecutorSpec)
        }
        return document

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MiningSpec":
        """Rebuild a spec; unknown sections or keys fail loudly.

        Absent sections keep their defaults; ``"dataset"`` may be a bare
        name string.
        """
        if not isinstance(data, dict):
            raise ReproError(f"spec document must be an object, got {type(data).__name__}")
        if "dataset" not in data:
            raise ReproError("spec document needs a 'dataset' section")
        schema = data.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ReproError(
                f"unsupported spec schema {schema!r} (expected {SPEC_SCHEMA})"
            )
        unknown = set(data) - set(_SECTIONS) - {"schema", "name"}
        if unknown:
            raise ReproError(f"unknown spec sections: {sorted(unknown)}")
        dataset = data["dataset"]
        if isinstance(dataset, str):
            dataset = {"name": dataset}
        return cls(
            dataset=_section_from_dict(DatasetSpec, dataset, "dataset"),
            language=_section_from_dict(LanguageSpec, data.get("language"), "language"),
            model=_section_from_dict(ModelSpec, data.get("model"), "model"),
            interest=_section_from_dict(InterestSpec, data.get("interest"), "interest"),
            search=_section_from_dict(SearchSpec, data.get("search"), "search"),
            executor=_section_from_dict(ExecutorSpec, data.get("executor"), "executor"),
            name=data.get("name", ""),
        )

    def fingerprint(self) -> str:
        """Stable digest of *what* is mined (name and executor excluded).

        Equal work fingerprints equally regardless of its label or how
        many workers run it — the executor cannot change the patterns
        (the engine's determinism contract).
        """
        payload = {
            key: value
            for key, value in self.to_dict().items()
            if key not in ("schema", "name", "executor")
        }
        return _fingerprint(payload)
