"""Tests for the spread objective and direction search."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.model.background import BackgroundModel
from repro.search.spread import SpreadObjective, find_spread_direction
from repro.stats.statistics import subgroup_spread


@pytest.fixture()
def planted(rng):
    """Subgroup with a strongly anisotropic empirical covariance."""
    n, d = 80, 3
    targets = rng.standard_normal((n, d))
    idx = np.arange(25)
    # Inside the subgroup: inflate variance along e0, kill it along e2.
    targets[idx, 0] *= 4.0
    targets[idx, 2] *= 0.05
    model = BackgroundModel.from_targets(targets)
    return targets, model, idx


class TestSpreadObjective:
    def test_value_matches_ic(self, planted):
        from repro.interest.ic import spread_ic
        from repro.stats.statistics import subgroup_mean

        targets, model, idx = planted
        objective = SpreadObjective(model, idx, targets)
        w = np.array([0.0, 1.0, 0.0])
        expected = spread_ic(
            model, idx, w, subgroup_spread(targets, idx, w),
            subgroup_mean(targets, idx),
        )
        assert objective.value(w) == pytest.approx(expected, rel=1e-9)

    def test_variance_matches_statistic(self, planted):
        targets, model, idx = planted
        objective = SpreadObjective(model, idx, targets)
        w = np.array([1.0, 0.0, 0.0])
        assert objective.variance(w) == pytest.approx(
            subgroup_spread(targets, idx, w), rel=1e-10
        )

    def test_gradient_finite_difference(self, planted, rng):
        """Analytic gradient must match central differences."""
        targets, model, idx = planted
        objective = SpreadObjective(model, idx, targets)
        eps = 1e-6
        for _ in range(5):
            w = rng.standard_normal(3)
            w /= np.linalg.norm(w)
            _, grad = objective.value_and_grad(w)
            for j in range(3):
                delta = np.zeros(3)
                delta[j] = eps
                numeric = (
                    objective.value(w + delta) - objective.value(w - delta)
                ) / (2 * eps)
                assert grad[j] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_needs_two_rows(self, planted):
        targets, model, _ = planted
        with pytest.raises(SearchError, match=">= 2"):
            SpreadObjective(model, np.array([0]), targets)

    def test_suggested_starts_are_unit(self, planted):
        targets, model, idx = planted
        objective = SpreadObjective(model, idx, targets)
        for start in objective.suggested_starts():
            assert np.linalg.norm(start) == pytest.approx(1.0)


class TestFindSpreadDirection:
    def test_finds_planted_low_variance_axis(self, planted):
        """The most surprising direction is the collapsed e2 axis."""
        targets, model, idx = planted
        outcome = find_spread_direction(model, idx, targets, seed=0)
        assert abs(outcome.direction[2]) > 0.95

    def test_outcome_fields_consistent(self, planted):
        targets, model, idx = planted
        outcome = find_spread_direction(model, idx, targets, seed=0)
        assert np.linalg.norm(outcome.direction) == pytest.approx(1.0)
        assert outcome.variance == pytest.approx(
            subgroup_spread(targets, idx, outcome.direction), rel=1e-8
        )

    def test_beats_all_axis_directions(self, planted):
        targets, model, idx = planted
        objective = SpreadObjective(model, idx, targets)
        outcome = find_spread_direction(model, idx, targets, seed=0)
        for j in range(3):
            axis = np.zeros(3)
            axis[j] = 1.0
            assert outcome.ic >= objective.value(axis) - 1e-6

    def test_one_dimensional_target(self, rng):
        targets = rng.standard_normal((30, 1))
        model = BackgroundModel.from_targets(targets)
        outcome = find_spread_direction(model, np.arange(10), targets)
        np.testing.assert_array_equal(outcome.direction, [1.0])

    def test_sparsity_two(self, planted):
        targets, model, idx = planted
        outcome = find_spread_direction(model, idx, targets, sparsity=2, seed=0)
        assert (np.abs(outcome.direction) > 1e-9).sum() <= 2
        assert np.linalg.norm(outcome.direction) == pytest.approx(1.0)

    def test_sparsity_two_close_to_full_when_axis_aligned(self, planted):
        """Planted structure is axis-aligned, so the 2-sparse optimum is
        nearly as good as the unconstrained one."""
        targets, model, idx = planted
        full = find_spread_direction(model, idx, targets, seed=0)
        sparse = find_spread_direction(model, idx, targets, sparsity=2, seed=0)
        assert sparse.ic > 0.8 * full.ic

    def test_unsupported_sparsity(self, planted):
        targets, model, idx = planted
        with pytest.raises(SearchError, match="sparsity"):
            find_spread_direction(model, idx, targets, sparsity=3)

    def test_deterministic_given_seed(self, planted):
        targets, model, idx = planted
        a = find_spread_direction(model, idx, targets, seed=7)
        b = find_spread_direction(model, idx, targets, seed=7)
        np.testing.assert_allclose(a.direction, b.direction)
