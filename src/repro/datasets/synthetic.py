"""The paper's synthetic dataset (§III-A), reproduced exactly as specified.

620 data points with two real-valued targets and five binary description
attributes. 500 background points are drawn from a 2-D standard normal;
three subgroups of 40 points each are embedded at distance 2 from the
origin, each with a strongly anisotropic covariance (large variance along
its major axis, small across it). Description attributes 3-5 carry the
true subgroup labels; attributes 6-7 are Bernoulli(0.5) noise.

The paper's Fig. 2 shows the three clusters at roughly the upper-left,
right and lower-left of the data cloud with distinct major-axis angles;
we fix centers at angles 130deg, 10deg, 250deg and major axes tangential
to the circle of radius 2, which visually matches the figure and - more
importantly - preserves what the experiments test: three equal-size
subgroups displaced from the mean with one dominant variance direction
each.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.utils.rng import as_rng

#: Angles (radians) of the three planted cluster centers on the radius-2 circle.
CLUSTER_ANGLES = (np.deg2rad(130.0), np.deg2rad(10.0), np.deg2rad(250.0))

#: Standard deviations along the major/minor axis of each planted cluster.
CLUSTER_MAJOR_STD = 0.75
CLUSTER_MINOR_STD = 0.12


def cluster_center(k: int, distance: float = 2.0) -> np.ndarray:
    """Center of planted cluster ``k`` (0-based) at the given distance."""
    angle = CLUSTER_ANGLES[k]
    return distance * np.array([np.cos(angle), np.sin(angle)])


def cluster_covariance(k: int) -> np.ndarray:
    """Covariance of planted cluster ``k``: elongated tangentially.

    The major axis is perpendicular to the center direction (tangential to
    the circle the centers lie on), matching the elongated "arcs" in the
    paper's Fig. 2a.
    """
    angle = CLUSTER_ANGLES[k] + np.pi / 2.0
    major = np.array([np.cos(angle), np.sin(angle)])
    minor = np.array([-np.sin(angle), np.cos(angle)])
    return (
        CLUSTER_MAJOR_STD**2 * np.outer(major, major)
        + CLUSTER_MINOR_STD**2 * np.outer(minor, minor)
    )


def make_synthetic(
    seed: int | np.random.Generator = 0,
    *,
    n_background: int = 500,
    cluster_size: int = 40,
    distance: float = 2.0,
    flip_probability: float = 0.0,
) -> Dataset:
    """Generate the synthetic dataset of §III-A.

    Parameters
    ----------
    seed:
        RNG seed; the default reproduces the dataset used across the test
        suite and benchmarks.
    n_background, cluster_size, distance:
        Shape knobs; paper values are 500, 40 and 2.
    flip_probability:
        Probability of flipping each binary description value, used by the
        Fig. 3 noise-robustness experiment ("corrupted the descriptive
        attributes by randomly flipping every 0 and 1 with a certain
        probability"). 0 gives the clean data.

    Returns
    -------
    Dataset
        Targets ``attr1``/``attr2``; binary descriptions ``attr3``-``attr7``
        where ``attr3``-``attr5`` are the true labels of planted subgroups
        p1-p3 and ``attr6``/``attr7`` are Bernoulli(0.5) noise. Metadata
        carries the planted assignment (``cluster``: 0 background, 1-3
        planted) plus centers/covariances for ground-truth checks.
    """
    if not 0.0 <= flip_probability <= 1.0:
        raise ValueError(f"flip_probability must be in [0, 1], got {flip_probability}")
    rng = as_rng(seed)
    n_clusters = 3
    n = n_background + n_clusters * cluster_size

    targets = np.empty((n, 2))
    cluster_label = np.zeros(n, dtype=int)
    targets[:n_background] = rng.standard_normal((n_background, 2))
    row = n_background
    for k in range(n_clusters):
        block = rng.multivariate_normal(
            cluster_center(k, distance), cluster_covariance(k), size=cluster_size
        )
        targets[row:row + cluster_size] = block
        cluster_label[row:row + cluster_size] = k + 1
        row += cluster_size

    # Shuffle rows so nothing downstream can rely on block ordering.
    order = rng.permutation(n)
    targets = targets[order]
    cluster_label = cluster_label[order]

    labels = np.stack(
        [(cluster_label == k + 1).astype(float) for k in range(n_clusters)], axis=1
    )
    noise = rng.integers(0, 2, size=(n, 2)).astype(float)
    descriptions = np.concatenate([labels, noise], axis=1)

    if flip_probability > 0.0:
        flips = rng.random(descriptions.shape) < flip_probability
        descriptions = np.where(flips, 1.0 - descriptions, descriptions)

    columns = [
        Column(f"attr{j + 3}", AttributeKind.BINARY, descriptions[:, j])
        for j in range(descriptions.shape[1])
    ]
    metadata = {
        "cluster": cluster_label,
        "cluster_centers": np.stack([cluster_center(k, distance) for k in range(3)]),
        "cluster_covariances": np.stack([cluster_covariance(k) for k in range(3)]),
        "flip_probability": flip_probability,
    }
    return Dataset("synthetic", columns, targets, ["attr1", "attr2"], metadata)
