"""Integration tests: the §III-B mammal experiments (Figs. 4-6)."""

import numpy as np
import pytest

from repro.experiments.mammals_exp import run_fig4, run_fig5, run_fig6


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(seed=0)


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(seed=0)


class TestFig6:
    def test_three_patterns(self, fig6):
        assert len(fig6.patterns) == 3

    def test_first_pattern_is_cold_march(self, fig6):
        """Paper Fig. 6a: 'mean temperature in March <= -1.68'."""
        first = fig6.patterns[0]
        assert first.best_region == "cold_march"
        assert first.jaccard_with_region > 0.7
        assert "tmp_mar <=" in first.intention

    def test_all_three_planted_regions_found(self, fig6):
        regions = {p.best_region for p in fig6.patterns}
        assert regions == {"cold_march", "dry_august", "dry_october_warm"}

    def test_region_alignment_strong(self, fig6):
        for pattern in fig6.patterns:
            assert pattern.jaccard_with_region > 0.5

    def test_si_decreasing_over_iterations(self, fig6):
        sis = [p.si for p in fig6.patterns]
        assert sis == sorted(sis, reverse=True)
        assert sis[-1] > 50.0

    def test_maps_render(self, fig6):
        for pattern in fig6.patterns:
            assert "#" in pattern.map_text
        assert "Fig. 6" in fig6.format(with_maps=True)


class TestFig5:
    def test_five_species(self, fig5):
        assert len(fig5.top_species) == 5

    def test_observed_outside_model_ci(self, fig5):
        """Top-ranked species must be dramatically surprising."""
        for record in fig5.top_species:
            lo, hi = record.ci95
            assert record.observed < lo or record.observed > hi

    def test_update_pins_means(self, fig5):
        for before, after in zip(fig5.top_species, fig5.after_update):
            assert after.expected == pytest.approx(before.observed, abs=1e-6)

    def test_mix_of_present_and_absent_surprises(self, fig5):
        """The paper's list mixes boreal (present) and temperate (absent)."""
        signs = {np.sign(r.z) for r in fig5.top_species}
        assert signs == {1.0, -1.0}

    def test_format_renders(self, fig5):
        assert "model 95% CI" in fig5.format()


class TestFig4:
    @pytest.fixture(scope="class")
    def fig4(self):
        return run_fig4(seed=0, n_species=3)

    def test_three_species(self, fig4):
        assert len(fig4.species) == 3

    def test_presence_contrast(self, fig4):
        """Inside/outside prevalence must differ strongly for top species."""
        for species in fig4.species:
            assert abs(species.prevalence_inside - species.prevalence_outside) > 0.4

    def test_maps_have_both_markers(self, fig4):
        for species in fig4.species:
            assert "#" in species.map_text or "." in species.map_text

    def test_format_renders(self, fig4):
        assert "Fig. 4" in fig4.format(with_maps=True)
