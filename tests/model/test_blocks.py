"""Tests for the block partition."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.blocks import BlockPartition


class TestConstruction:
    def test_starts_single_block(self):
        p = BlockPartition(10)
        assert p.n_blocks == 1
        assert p.n_rows == 10
        np.testing.assert_array_equal(p.labels, np.zeros(10, dtype=int))

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            BlockPartition(0)

    def test_labels_readonly(self):
        p = BlockPartition(5)
        with pytest.raises(ValueError):
            p.labels[0] = 3


class TestSplit:
    def test_split_creates_two_blocks(self):
        p = BlockPartition(6)
        mask = np.array([True, True, False, False, True, False])
        created = p.split(mask)
        assert p.n_blocks == 2
        assert created == {0: 1}
        # Inside keeps label 0, outside gets 1.
        np.testing.assert_array_equal(p.labels, [0, 0, 1, 1, 0, 1])

    def test_aligned_split_is_noop(self):
        p = BlockPartition(4)
        mask = np.array([True, True, False, False])
        p.split(mask)
        created = p.split(mask)
        assert created == {}
        assert p.n_blocks == 2

    def test_full_mask_noop(self):
        p = BlockPartition(4)
        assert p.split(np.ones(4, dtype=bool)) == {}
        assert p.n_blocks == 1

    def test_nested_splits(self):
        p = BlockPartition(8)
        p.split(np.array([True] * 4 + [False] * 4))
        created = p.split(np.array([True, True, False, False, True, True, False, False]))
        assert p.n_blocks == 4
        # Every (old mask, new mask) cell is now its own block.
        labels = np.asarray(p.labels)
        cells = {}
        for i, (a, b) in enumerate(
            zip([1, 1, 1, 1, 0, 0, 0, 0], [1, 1, 0, 0, 1, 1, 0, 0])
        ):
            cells.setdefault((a, b), set()).add(labels[i])
        assert all(len(v) == 1 for v in cells.values())
        assert len({next(iter(v)) for v in cells.values()}) == 4

    def test_partition_invariant(self, rng):
        """Labels always form a partition: every row has exactly one label."""
        p = BlockPartition(30)
        for _ in range(5):
            p.split(rng.random(30) < 0.5)
        labels = np.asarray(p.labels)
        assert labels.min() >= 0
        assert labels.max() < p.n_blocks
        assert p.sizes().sum() == 30

    def test_split_respects_previous_blocks(self, rng):
        """After splitting on mask, every block is aligned with that mask."""
        p = BlockPartition(50)
        masks = [rng.random(50) < 0.4 for _ in range(4)]
        for mask in masks:
            p.split(mask)
        for mask in masks:
            assert p.is_aligned(mask)


class TestQueries:
    def test_members(self):
        p = BlockPartition(5)
        p.split(np.array([True, False, True, False, True]))
        np.testing.assert_array_equal(p.members(0), [0, 2, 4])
        np.testing.assert_array_equal(p.members(1), [1, 3])

    def test_members_out_of_range(self):
        with pytest.raises(ModelError):
            BlockPartition(3).members(1)

    def test_counts_in(self):
        p = BlockPartition(6)
        p.split(np.array([True] * 3 + [False] * 3))
        counts = p.counts_in(np.array([True, False, False, True, True, False]))
        np.testing.assert_array_equal(counts, [1, 2])

    def test_blocks_in(self):
        p = BlockPartition(6)
        p.split(np.array([True] * 3 + [False] * 3))
        np.testing.assert_array_equal(
            p.blocks_in(np.array([True, False, False, False, False, False])), [0]
        )

    def test_bad_mask_shape(self):
        p = BlockPartition(4)
        with pytest.raises(ModelError, match="mask"):
            p.counts_in(np.ones(3, dtype=bool))

    def test_bad_mask_dtype(self):
        p = BlockPartition(4)
        with pytest.raises(ModelError, match="mask"):
            p.counts_in(np.ones(4))
