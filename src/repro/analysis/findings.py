"""Lint findings: the one value type everything in :mod:`repro.analysis` trades in.

A :class:`Finding` is a frozen record of one rule violation at one source
location. Its identity for baseline purposes is the :attr:`fingerprint`
— a digest of *(rule, path, source-line text)* rather than the line
number, so grandfathered findings survive unrelated edits that merely
shift code up or down the file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from repro.errors import AnalysisError

__all__ = ["Finding", "REPORT_SCHEMA"]

#: Version stamp on ``sisd lint --json`` reports and baseline files.
REPORT_SCHEMA = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored with forward slashes and relative to the lint
    root whenever possible, so reports are stable across machines.
    ``snippet`` is the stripped text of the flagged line — the basis of
    the line-number-independent :attr:`fingerprint`.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity (baseline matching key)."""
        payload = f"{self.rule}::{self.path}::{self.snippet}".encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:16]

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        """The stable report order: path, then position, then rule."""
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        """Human one-liner: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (what ``--json`` reports carry)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        """Rebuild a finding from its JSON form; malformed input raises."""
        try:
            return cls(
                rule=str(data["rule"]),
                path=str(data["path"]),
                line=int(data["line"]),
                col=int(data["col"]),
                message=str(data["message"]),
                snippet=str(data.get("snippet", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(f"malformed finding document: {exc}") from exc
