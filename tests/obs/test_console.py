"""The scrape-side renderers behind ``sisd top`` and ``sisd admin``.

All pure samples-in/text-out: the same functions the live CLI loop
calls, fed parsed expositions instead of sockets.
"""

from repro.errors import ObsError
from repro.obs.console import (
    _split_url,
    render_dashboard,
    tenant_usage,
    usage_table,
)
from repro.obs.metrics import MetricsRegistry, parse_prometheus

import pytest


def _samples():
    """A small synthetic scrape covering all three dashboard blocks."""
    return {
        "sisd_jobs_submitted_total": [
            ({"tenant": "acme"}, 7.0),
            ({"tenant": "-"}, 3.0),
        ],
        "sisd_jobs_rejected_total": [({"tenant": "acme"}, 2.0)],
        "sisd_jobs_preempted_total": [({"tenant": "zeta"}, 1.0)],
        "sisd_queue_depth": [({}, 4.0)],
        "sisd_beam_phase_seconds_sum": [({"phase": "score"}, 1.0)],
        "sisd_beam_phase_seconds_count": [({"phase": "score"}, 4.0)],
    }


class TestDashboard:
    def test_counters_sum_across_label_sets(self):
        text = render_dashboard(_samples())
        assert "jobs submitted" in text
        assert "10" in text  # 7 + 3 across tenants

    def test_gauge_and_latency_blocks(self):
        text = render_dashboard(_samples())
        assert "queued jobs" in text
        assert "beam phase" in text
        assert "phase=score" in text
        assert "250.00ms" in text  # 1.0s over 4 events

    def test_source_appears_in_the_title(self):
        assert "localhost:8080" in render_dashboard(
            _samples(), source="localhost:8080"
        )

    def test_empty_scrape_renders_a_placeholder(self):
        assert render_dashboard({}) == "(no sisd metrics exposed yet)"

    def test_renders_a_real_exposition(self):
        registry = MetricsRegistry()
        registry.counter(
            "sisd_jobs_submitted_total", "jobs", labels=("tenant",)
        ).labels("t1").inc(2)
        registry.gauge("sisd_queue_depth", "depth").set(1)
        text = render_dashboard(parse_prometheus(registry.render()))
        assert "jobs submitted" in text
        assert "queued jobs" in text

    def test_zero_count_histograms_render_no_row(self):
        samples = {
            "sisd_beam_phase_seconds_sum": [({"phase": "score"}, 0.0)],
            "sisd_beam_phase_seconds_count": [({"phase": "score"}, 0.0)],
        }
        assert render_dashboard(samples) == "(no sisd metrics exposed yet)"


class TestTenantUsage:
    def test_rows_aggregate_and_sort_by_submissions(self):
        rows = tenant_usage(_samples())
        assert rows == [
            ("acme", 7.0, 2.0, 0.0),
            ("-", 3.0, 0.0, 0.0),
            ("zeta", 0.0, 0.0, 1.0),
        ]

    def test_empty_scrape_has_no_rows(self):
        assert tenant_usage({}) == []


class TestUsageTable:
    def test_renders_rows(self):
        text = usage_table(_samples(), source="localhost")
        assert "tenant usage — localhost" in text
        assert "acme" in text

    def test_placeholder_without_submissions(self):
        assert "(no submissions yet)" in usage_table({})


class TestUrls:
    def test_scheme_is_optional(self):
        assert _split_url("http://example.org:8080") == ("example.org", 8080)
        assert _split_url("example.org:8080") == ("example.org", 8080)
        assert _split_url("example.org") == ("example.org", 80)

    def test_unparseable_url_is_a_typed_error(self):
        with pytest.raises(ObsError):
            _split_url("//")
