"""Engine: beam-search wall-clock vs worker count.

Runs the same location beam search on scalability-sized synthetic data
(the §III-E generator scaled 16x) with the serial backend and with
process pools of 2 and 4 workers, reporting the speedup over serial.
Speedup > 1 needs real cores: on a single-core machine the table simply
quantifies the process-pool overhead. The engine's determinism contract
is asserted along the way — every worker count must return the exact
same top subgroup with the exact same scores.
"""

import os

from repro.datasets.synthetic import make_synthetic
from repro.engine.executor import resolve_executor
from repro.report.tables import format_table
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.utils.timer import Stopwatch

WORKERS = (1, 2, 4)


def measure(seed: int = 0):
    dataset = make_synthetic(seed, n_background=8000, cluster_size=640)
    config = SearchConfig()  # paper defaults: beam 40, depth 4

    rows = []
    reference = None
    serial_elapsed = None
    for workers in WORKERS:
        miner = SubgroupDiscovery(
            dataset, config=config, seed=seed, executor=resolve_executor(workers)
        )
        watch = Stopwatch()
        with watch:
            result = miner.search_locations()
        if reference is None:
            reference = result
            serial_elapsed = watch.elapsed
        else:
            # Parallelism must not change what gets mined — bit for bit.
            assert len(result.log) == len(reference.log)
            assert result.best.description == reference.best.description
            assert result.best.score.ic == reference.best.score.ic
        rows.append((workers, watch.elapsed, serial_elapsed / watch.elapsed))
    return rows


def bench_engine_parallel(benchmark, save_result):
    rows = benchmark.pedantic(measure, args=(0,), rounds=1, iterations=1)
    table = format_table(
        ["workers", "beam search (s)", "speedup vs serial"],
        rows,
        floatfmt=".4f",
        title=(
            "Engine: parallel beam search on synthetic x16 "
            f"({os.cpu_count()} core(s) available)"
        ),
    )
    save_result("engine_parallel", table)
    assert len(rows) == len(WORKERS)
