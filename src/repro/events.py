"""Streaming events: watch the mining loop while it runs.

The paper frames mining as a dialogue; this module is the wire the
dialogue travels over. A :class:`MiningObserver` receives

- ``on_candidate`` — every admissible subgroup the beam search scores,
  in generation order (fired by
  :class:`~repro.search.beam.LocationBeamSearch`);
- ``on_iteration`` — each completed mining iteration, the moment it is
  assimilated (fired by :class:`~repro.search.miner.SubgroupDiscovery`
  and by the job runner's single-shot strategies);
- ``on_job`` — a whole job's result (fired by
  :class:`~repro.api.Workspace` and :class:`~repro.engine.service.MiningService`).

Observers are the *synchronous substrate* for the ROADMAP's async/
streaming front-end: an asyncio layer only needs to bridge these
callbacks onto a queue. Inline and session execution fire events live;
the service's process/thread pools cannot ship callbacks across workers,
so they *replay* ``on_iteration`` events when a job's result arrives
(documented on :class:`~repro.engine.service.MiningService`).

Observers must not mutate what they are handed — results are shared with
the mining loop — and should be cheap: ``on_candidate`` fires for every
scored subgroup (hundreds per beam level).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type hints only
    from repro.engine.jobs import JobResult
    from repro.search.results import MiningIteration, ScoredSubgroup


class MiningObserver:
    """Base observer: every hook is a no-op; override what you need."""

    def on_candidate(self, candidate: "ScoredSubgroup") -> None:
        """One scored beam candidate (fires for *every* admissible one)."""

    def on_iteration(self, iteration: "MiningIteration") -> None:
        """One completed (and assimilated) mining iteration."""

    def on_job(self, result: "JobResult") -> None:
        """One whole job finished."""

    def on_job_failed(self, job, error: BaseException) -> None:
        """One job raised instead of mining (fired by the service).

        Every submitted job ends in exactly one of ``on_job`` or
        ``on_job_failed`` (cancellation excepted), so an event-driven
        consumer never waits forever on a failed run.
        """


class CallbackObserver(MiningObserver):
    """Adapter from plain callables to the observer protocol.

    >>> obs = CallbackObserver(on_iteration=lambda it: print(it.location))
    """

    def __init__(
        self,
        *,
        on_candidate: Callable | None = None,
        on_iteration: Callable | None = None,
        on_job: Callable | None = None,
        on_job_failed: Callable | None = None,
    ) -> None:
        self._on_candidate = on_candidate
        self._on_iteration = on_iteration
        self._on_job = on_job
        self._on_job_failed = on_job_failed

    def on_candidate(self, candidate: "ScoredSubgroup") -> None:
        """Forward to the ``on_candidate`` callable, if given."""
        if self._on_candidate is not None:
            self._on_candidate(candidate)

    def on_iteration(self, iteration: "MiningIteration") -> None:
        """Forward to the ``on_iteration`` callable, if given."""
        if self._on_iteration is not None:
            self._on_iteration(iteration)

    def on_job(self, result: "JobResult") -> None:
        """Forward to the ``on_job`` callable, if given."""
        if self._on_job is not None:
            self._on_job(result)

    def on_job_failed(self, job, error: BaseException) -> None:
        """Forward to the ``on_job_failed`` callable, if given."""
        if self._on_job_failed is not None:
            self._on_job_failed(job, error)


class EventLog(MiningObserver):
    """An observer that records everything it sees (handy in tests)."""

    def __init__(self) -> None:
        self.candidates: list = []
        self.iterations: list = []
        self.jobs: list = []
        self.failures: list = []

    def on_candidate(self, candidate: "ScoredSubgroup") -> None:
        """Append the candidate to :attr:`candidates`."""
        self.candidates.append(candidate)

    def on_iteration(self, iteration: "MiningIteration") -> None:
        """Append the iteration to :attr:`iterations`."""
        self.iterations.append(iteration)

    def on_job(self, result: "JobResult") -> None:
        """Append the result to :attr:`jobs`."""
        self.jobs.append(result)

    def on_job_failed(self, job, error: BaseException) -> None:
        """Append ``(job, error)`` to :attr:`failures`."""
        self.failures.append((job, error))

    def clear(self) -> None:
        """Forget all recorded events."""
        self.candidates.clear()
        self.iterations.clear()
        self.jobs.clear()
        self.failures.clear()


class _Broadcast(MiningObserver):
    """Fan one event stream out to several observers, in order."""

    def __init__(self, observers: tuple[MiningObserver, ...]) -> None:
        self._observers = observers

    def on_candidate(self, candidate: "ScoredSubgroup") -> None:
        for observer in self._observers:
            observer.on_candidate(candidate)

    def on_iteration(self, iteration: "MiningIteration") -> None:
        for observer in self._observers:
            observer.on_iteration(iteration)

    def on_job(self, result: "JobResult") -> None:
        for observer in self._observers:
            observer.on_job(result)

    def on_job_failed(self, job, error: BaseException) -> None:
        for observer in self._observers:
            observer.on_job_failed(job, error)


def broadcast(*observers: MiningObserver | None) -> MiningObserver | None:
    """Compose observers; ``None`` entries are dropped.

    Returns ``None`` when nothing remains (so callers can keep their
    fast ``observer is None`` paths), the sole observer when exactly one
    remains, and a broadcasting wrapper otherwise.
    """
    remaining = tuple(obs for obs in observers if obs is not None)
    if not remaining:
        return None
    if len(remaining) == 1:
        return remaining[0]
    return _Broadcast(remaining)
