"""Registry tests."""

import pytest

from repro.datasets.registry import available_datasets, load_dataset
from repro.errors import DataError


class TestRegistry:
    def test_lists_all_five(self):
        assert available_datasets() == [
            "crime", "mammals", "socio", "synthetic", "water",
        ]

    def test_unknown_name(self):
        with pytest.raises(DataError, match="unknown dataset"):
            load_dataset("nope")

    def test_kwargs_forwarded(self):
        ds = load_dataset("synthetic", seed=1, flip_probability=0.5)
        assert ds.metadata["flip_probability"] == 0.5

    def test_seed_determinism(self):
        import numpy as np

        a = load_dataset("water", seed=3)
        b = load_dataset("water", seed=3)
        np.testing.assert_array_equal(a.targets, b.targets)
