"""§III-C German socio-economics case study: Figs. 7 and 8.

- Fig. 7: top location patterns of three iterations. The paper finds
  (a) "Children Pop. <= 14.1" — East Germany plus student cities, Left
  party strong; (b) "Middle-aged Pop. >= 26.9" — large cities, Greens
  strong; (c) "Children Pop. >= 16.4" — roughly the complement of (a),
  Left weak.
- Fig. 8: for pattern 1, the per-party surprisal before/after updating
  (8a), the 2-sparse spread direction — the paper reports weight vector
  (0.5704, 0.8214) on (CDU, SPD) — and the marginal CDF of the projected
  subgroup against the updated model (8c), showing far *less* variance
  than expected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.socio import make_socio
from repro.experiments.common import make_miner, mask_from_indices
from repro.interest.attribution import AttributeSurprisal, attribute_surprisals
from repro.report.series import cdf_series, mixture_normal_cdf_series
from repro.report.tables import format_table


# --------------------------------------------------------------------- #
# Fig. 7
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Fig7Pattern:
    index: int
    intention: str
    size: int
    si: float
    region_shares: dict[str, float]      # composition by planted region
    vote_means: dict[str, float]         # observed vote means inside
    overall_vote_means: dict[str, float]


@dataclass(frozen=True)
class Fig7Result:
    patterns: tuple[Fig7Pattern, ...]

    def format(self) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        parties = list(self.patterns[0].vote_means) if self.patterns else []
        rows = []
        for p in self.patterns:
            east = p.region_shares.get("east", 0.0)
            city = p.region_shares.get("city", 0.0) + p.region_shares.get(
                "student_city", 0.0
            )
            rows.append(
                (
                    p.index,
                    p.intention,
                    p.size,
                    p.si,
                    east,
                    city,
                    *(p.vote_means[party] for party in parties),
                )
            )
        return format_table(
            ["iter", "intention", "n", "SI", "east%", "city%", *parties],
            rows,
            floatfmt=".2f",
            title="Fig. 7: top location patterns on the socio-economics data",
        )


def run_fig7(seed: int = 0, n_iterations: int = 3) -> Fig7Result:
    """Three location-mining iterations with composition diagnostics."""
    dataset = make_socio(seed)
    miner = make_miner(dataset)
    region = np.asarray(dataset.metadata["region"])
    overall = {
        name: float(dataset.targets[:, j].mean())
        for j, name in enumerate(dataset.target_names)
    }

    patterns = []
    for iteration in miner.run(n_iterations, kind="location"):
        location = iteration.location
        mask = mask_from_indices(location.indices, dataset.n_rows)
        shares = {
            kind: float((region[mask] == kind).mean())
            for kind in ("east", "city", "student_city", "west")
        }
        vote_means = {
            name: float(dataset.targets[mask, j].mean())
            for j, name in enumerate(dataset.target_names)
        }
        patterns.append(
            Fig7Pattern(
                index=iteration.index,
                intention=str(location.description),
                size=location.size,
                si=location.si,
                region_shares=shares,
                vote_means=vote_means,
                overall_vote_means=overall,
            )
        )
    return Fig7Result(tuple(patterns))


# --------------------------------------------------------------------- #
# Fig. 8
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Fig8Result:
    intention: str
    surprisals_before: tuple[AttributeSurprisal, ...]  # 8a, ranked by SI
    surprisals_after: tuple[AttributeSurprisal, ...]
    direction: np.ndarray           # 8b: the 2-sparse weight vector
    direction_attributes: tuple[str, str]
    observed_variance: float
    expected_variance: float
    spread_si: float
    cdf_grid: np.ndarray            # 8c series
    cdf_model: np.ndarray
    cdf_data: np.ndarray

    def format(self) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        rows = []
        for before, after in zip(self.surprisals_before, self.surprisals_after):
            lo, hi = before.ci95
            rows.append(
                (
                    before.name,
                    before.observed,
                    before.expected,
                    f"[{lo:.2f}, {hi:.2f}]",
                    after.expected,
                )
            )
        part_a = format_table(
            ["party", "observed", "model mean", "model 95% CI", "updated mean"],
            rows,
            floatfmt=".2f",
            title=f"Fig. 8a: vote surprisals for pattern '{self.intention}'",
        )
        i, j = self.direction_attributes
        nonzero = self.direction[np.abs(self.direction) > 0]
        part_b = (
            f"Fig. 8b: 2-sparse spread direction w = "
            f"({nonzero[0]:+.4f} * {i}, {nonzero[1]:+.4f} * {j}); "
            f"paper: (0.5704, 0.8214) on (CDU, SPD)"
        )
        part_c = (
            f"Fig. 8c: variance along w — observed {self.observed_variance:.3f} "
            f"vs expected {self.expected_variance:.3f} "
            f"(ratio {self.observed_variance / self.expected_variance:.3f}; "
            f"spread SI {self.spread_si:.2f})"
        )
        return "\n".join([part_a, part_b, part_c])


def run_fig8(seed: int = 0, *, n_grid: int = 96) -> Fig8Result:
    """Pattern 1's party surprisals and its 2-sparse spread pattern."""
    dataset = make_socio(seed)
    miner = make_miner(dataset)
    location = miner.find_location()

    before = attribute_surprisals(
        miner.model, location.indices, location.mean, names=dataset.target_names
    )
    miner.assimilate(location)
    after_by_name = {
        record.name: record
        for record in attribute_surprisals(
            miner.model, location.indices, location.mean, names=dataset.target_names
        )
    }
    after = tuple(after_by_name[record.name] for record in before)

    spread = miner.find_spread_for(location, sparsity=2)
    expected_variance = miner.model.expected_spread(
        location.indices, spread.direction, spread.center
    )

    # 8c: CDF of the projected subgroup vs the (updated) model's marginal.
    # The model is far wider than the data along w, so size the grid by the
    # model's scale or its CDF never leaves the [0.1, 0.9] band.
    projections = dataset.targets[location.indices] @ spread.direction
    model_sd = float(np.sqrt(expected_variance))
    grid = np.linspace(
        projections.min() - 3.5 * model_sd,
        projections.max() + 3.5 * model_sd,
        n_grid,
    )
    counts, block_means, block_covs = miner.model.spread_blocks(location.indices)
    model_means = [float(spread.direction @ mu) for mu in block_means]
    model_sds = [
        float(np.sqrt(spread.direction @ cov @ spread.direction))
        for cov in block_covs
    ]
    _, cdf_model = mixture_normal_cdf_series(model_means, model_sds, counts, grid)
    _, cdf_data = cdf_series(projections, grid=grid)

    nonzero = np.flatnonzero(np.abs(spread.direction) > 1e-12)
    direction_attributes = tuple(dataset.target_names[k] for k in nonzero[:2])

    miner.assimilate(spread)
    return Fig8Result(
        intention=str(location.description),
        surprisals_before=tuple(before),
        surprisals_after=after,
        direction=spread.direction,
        direction_attributes=direction_attributes,  # type: ignore[arg-type]
        observed_variance=spread.variance,
        expected_variance=float(expected_variance),
        spread_si=spread.si,
        cdf_grid=grid,
        cdf_model=cdf_model,
        cdf_data=cdf_data,
    )
