"""Framing shared by :mod:`repro.dist` workers and coordinators.

Shard payloads carry arbitrary engine objects (scorers, numpy mask
stacks), so unlike the JSON surface of :mod:`repro.server.wire` the
compute tier speaks pickle over HTTP. That is safe only because workers
are *trusted* peers of the coordinator — the daemon binds to localhost
by default and the README says so out loud. Contexts are
content-addressed (sha256 of the pickled bytes), which is what lets a
repeat job ship nothing: the coordinator sends the digest, and only a
worker that has never seen it asks for the bytes.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any

from repro.errors import EngineError

__all__ = [
    "DIST_SCHEMA",
    "PICKLE_CONTENT_TYPE",
    "digest_of",
    "dump",
    "load",
    "shard_request",
    "tag_job_id",
    "untag_job_id",
]

#: Version stamp carried by every shard envelope; bump on breaking changes.
DIST_SCHEMA = 1

#: Content type of pickled request/response bodies on the compute tier.
PICKLE_CONTENT_TYPE = "application/x-repro-pickle"

#: Shard-reply statuses a worker may answer with.
REPLY_STATUSES = ("ok", "unknown-context", "error")


def dump(obj: Any) -> bytes:
    """Pickle one payload with the highest protocol (arrays stay binary)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def load(payload: bytes) -> Any:
    """Unpickle one payload; raises :class:`EngineError` on garbage."""
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure
        raise EngineError(f"undecodable dist payload: {exc}") from exc


def digest_of(payload: bytes) -> str:
    """Content address of a pickled context (hex sha256)."""
    return hashlib.sha256(payload).hexdigest()


def shard_request(
    digest: str | None,
    fn: Any,
    items: list[Any],
    trace: dict[str, str] | None = None,
) -> dict[str, Any]:
    """The ``POST /shards`` envelope a coordinator sends a worker.

    ``trace`` is the optional wire form of a
    :class:`repro.obs.trace.TraceContext`: the worker parents its shard
    span under it, which is what stitches remote execution into the
    submitting job's trace. Old workers ignore the extra key; absent or
    malformed contexts decode to ``None`` — tracing never fails a shard.
    """
    request: dict[str, Any] = {
        "schema": DIST_SCHEMA,
        "context": digest,
        "fn": fn,
        "items": items,
    }
    if trace is not None:
        request["trace"] = trace
    return request


# --------------------------------------------------------------------- #
# Federated job ids
# --------------------------------------------------------------------- #
#: Separator between a replica-local job id and its replica name. Job
#: ids are ``job-NNNN`` per service, so ids from different replicas
#: collide; the router tags each id with the replica that owns it and
#: the tag itself routes every follow-up request — no routing table.
JOB_TAG = "@"


def tag_job_id(job_id: str, replica: str) -> str:
    """Qualify a replica-local job id with its owning replica's name."""
    return f"{job_id}{JOB_TAG}{replica}"


def untag_job_id(tagged: str) -> tuple[str, str | None]:
    """Split a routed job id into ``(local_id, replica_name | None)``."""
    local, sep, replica = tagged.rpartition(JOB_TAG)
    if not sep:
        return tagged, None
    return local, replica
