"""Property-based tests of the case-weight semantics.

Two invariants define what weights *mean* in the scoring stack:

1. **Unit weights are invisible** — an all-ones weight vector takes the
   weighted code path but must reproduce the unweighted results
   *bit-identically* (the weighted branches are written so every
   intermediate reduces to the same machine operations).
2. **Frequency semantics** — a row with weight ``m`` behaves exactly
   like ``m`` stacked copies of that row, so reweighting is duplication
   without the memory.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.background import BackgroundModel
from repro.model.priors import empirical_prior
from repro.search.beam import LocationICScorer
from repro.stats.statistics import subgroup_cov, subgroup_mean, subgroup_spread


@st.composite
def targets_and_subgroup(draw):
    """Random (n, d) targets plus a non-empty subgroup index array."""
    d = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=6, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    targets = rng.standard_normal((n, d)) * (1.0 + rng.random(d))
    size = draw(st.integers(min_value=2, max_value=n))
    indices = rng.choice(n, size=size, replace=False)
    indices.sort()
    return targets, indices, rng


def _unit_direction(rng, d):
    w = rng.standard_normal(d)
    return w / np.linalg.norm(w)


class TestUnitWeightsBitIdentical:
    """All-ones weights must not change a single bit of any statistic."""

    @given(data=targets_and_subgroup())
    @settings(max_examples=60, deadline=None)
    def test_statistics(self, data):
        targets, indices, rng = data
        ones = np.ones(targets.shape[0])
        assert np.array_equal(
            subgroup_mean(targets, indices),
            subgroup_mean(targets, indices, weights=ones),
        )
        assert np.array_equal(
            subgroup_cov(targets, indices),
            subgroup_cov(targets, indices, weights=ones),
        )
        direction = _unit_direction(rng, targets.shape[1])
        assert subgroup_spread(targets, indices, direction) == subgroup_spread(
            targets, indices, direction, weights=ones
        )

    @given(data=targets_and_subgroup())
    @settings(max_examples=40, deadline=None)
    def test_empirical_prior(self, data):
        targets, _, _ = data
        plain = empirical_prior(targets)
        weighted = empirical_prior(targets, weights=np.ones(targets.shape[0]))
        assert np.array_equal(plain.mean, weighted.mean)
        assert np.array_equal(plain.cov, weighted.cov)

    @given(data=targets_and_subgroup())
    @settings(max_examples=25, deadline=None)
    def test_scorer_ics(self, data):
        targets, indices, _ = data
        n = targets.shape[0]
        ones = np.ones(n)
        plain = LocationICScorer(BackgroundModel.from_targets(targets), targets)
        weighted = LocationICScorer(
            BackgroundModel.from_targets(targets, weights=ones), targets
        )
        mask = np.zeros((1, n), dtype=bool)
        mask[0, indices] = True
        ic_plain, mean_plain = plain.score_masks(mask)
        ic_weighted, mean_weighted = weighted.score_masks(mask)
        assert np.array_equal(ic_plain, ic_weighted)
        assert np.array_equal(mean_plain, mean_weighted)


@st.composite
def targets_and_multiplicities(draw):
    """Random targets, integer row multiplicities, and a subgroup."""
    d = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=5, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    targets = rng.standard_normal((n, d))
    multiplicities = rng.integers(1, 4, size=n)
    size = draw(st.integers(min_value=2, max_value=n))
    indices = rng.choice(n, size=size, replace=False)
    indices.sort()
    return targets, multiplicities, indices, rng


def _duplicate(targets, multiplicities, indices):
    """The physically duplicated dataset and the subgroup mapped onto it."""
    duplicated = np.repeat(targets, multiplicities, axis=0)
    starts = np.concatenate(([0], np.cumsum(multiplicities)[:-1]))
    dup_indices = np.concatenate(
        [np.arange(starts[i], starts[i] + multiplicities[i]) for i in indices]
    )
    return duplicated, dup_indices


class TestDuplicationEquivalence:
    """Weight m on a row == the row repeated m times (Eq. 1/2 weighted)."""

    @given(data=targets_and_multiplicities())
    @settings(max_examples=60, deadline=None)
    def test_statistics(self, data):
        targets, multiplicities, indices, rng = data
        duplicated, dup_indices = _duplicate(targets, multiplicities, indices)
        weights = multiplicities.astype(float)
        np.testing.assert_allclose(
            subgroup_mean(duplicated, dup_indices),
            subgroup_mean(targets, indices, weights=weights),
            rtol=1e-10,
            atol=1e-12,
        )
        np.testing.assert_allclose(
            subgroup_cov(duplicated, dup_indices),
            subgroup_cov(targets, indices, weights=weights),
            rtol=1e-9,
            atol=1e-12,
        )
        direction = _unit_direction(rng, targets.shape[1])
        np.testing.assert_allclose(
            subgroup_spread(duplicated, dup_indices, direction),
            subgroup_spread(targets, indices, direction, weights=weights),
            rtol=1e-9,
            atol=1e-12,
        )

    @given(data=targets_and_multiplicities())
    @settings(max_examples=30, deadline=None)
    def test_empirical_prior(self, data):
        targets, multiplicities, _, _ = data
        duplicated = np.repeat(targets, multiplicities, axis=0)
        from_duplicates = empirical_prior(duplicated)
        from_weights = empirical_prior(
            targets, weights=multiplicities.astype(float)
        )
        np.testing.assert_allclose(
            from_duplicates.mean, from_weights.mean, rtol=1e-10, atol=1e-12
        )
        np.testing.assert_allclose(
            from_duplicates.cov, from_weights.cov, rtol=1e-9, atol=1e-12
        )

    @given(data=targets_and_multiplicities())
    @settings(max_examples=20, deadline=None)
    def test_subgroup_mean_distribution(self, data):
        """The model's predicted subgroup-mean law matches duplication."""
        targets, multiplicities, indices, _ = data
        duplicated, dup_indices = _duplicate(targets, multiplicities, indices)
        weighted_model = BackgroundModel.from_targets(
            targets, weights=multiplicities.astype(float)
        )
        dup_model = BackgroundModel.from_targets(duplicated)
        mask = np.zeros(targets.shape[0], dtype=bool)
        mask[indices] = True
        dup_mask = np.zeros(duplicated.shape[0], dtype=bool)
        dup_mask[dup_indices] = True
        mean_w, cov_w = weighted_model.subgroup_mean_distribution(mask)
        mean_d, cov_d = dup_model.subgroup_mean_distribution(dup_mask)
        np.testing.assert_allclose(mean_d, mean_w, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(cov_d, cov_w, rtol=1e-9, atol=1e-12)
