"""Conjunctive subgroup descriptions (intentions) with a canonical form.

A :class:`Description` is an immutable conjunction of conditions. Its
*canonical form* merges redundant bounds (keep the tightest ``<=`` and
``>=`` per attribute), deduplicates conditions, and sorts them, so that
syntactically different but logically identical intentions compare equal.
Beam search relies on this to avoid re-scoring the same subgroup under
many spellings, and the description length (DL) of the SI measure counts
canonical conditions.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.datasets.schema import Dataset
from repro.errors import LanguageError
from repro.lang.conditions import GE, LE, Condition, EqualsCondition, NumericCondition

#: ``attr <= 1.5`` / ``attr >= -2`` (attribute names may contain spaces
#: but not the operator tokens themselves).
_NUMERIC_RE = re.compile(r"^(?P<attr>.+?)\s*(?P<op><=|>=)\s*(?P<value>\S+)$")
#: ``attr = 'value'`` (the paper's quoted equality rendering).
_EQUALS_RE = re.compile(r"^(?P<attr>.+?)\s*=\s*'(?P<value>.*)'$")


@dataclass(frozen=True)
class Description:
    """An immutable conjunction of :class:`Condition` objects.

    The empty description is the always-true intention covering the full
    data; it renders as ``<all>``.
    """

    conditions: tuple[Condition, ...] = ()

    def __post_init__(self) -> None:
        conditions = tuple(self.conditions)
        for condition in conditions:
            if not isinstance(condition, Condition):
                raise LanguageError(
                    f"expected Condition, got {type(condition).__name__}"
                )
        object.__setattr__(self, "conditions", conditions)

    # ------------------------------------------------------------------ #
    # Basic container behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.conditions)

    def __iter__(self) -> Iterator[Condition]:
        return iter(self.conditions)

    def __str__(self) -> str:
        if not self.conditions:
            return "<all>"
        return " AND ".join(str(c) for c in self.conditions)

    @classmethod
    def parse(cls, text: str) -> "Description":
        """Rebuild a description from its :meth:`__str__` rendering.

        The inverse of ``str(description)``: ``"<all>"`` (or an empty
        string) is the empty description, and conditions are ``AND``-
        joined ``attr <= t`` / ``attr >= t`` inequalities or
        ``attr = 'v'`` equalities (the conjunction splitter is
        quote-aware, so values may contain ``AND`` or operator tokens).
        Equality values that read as finite numbers become numbers —
        the paper renders binary attributes as quoted digits
        (``attr3 = '1'``), so a categorical attribute whose labels
        *look* numeric does not survive this round-trip distinctly;
        label such domains non-numerically. Labels containing a single
        quote are not round-trippable either (the rendering does not
        escape quotes).

        Note that ``__str__`` prints thresholds to 6 significant
        digits, so parsing is exact for thresholds representable at
        that precision and otherwise returns the printed (rounded)
        threshold. Malformed text raises
        :class:`~repro.errors.LanguageError`.
        """
        text = text.strip()
        if not text or text == "<all>":
            return cls()
        return cls(
            tuple(
                _parse_condition(part.strip())
                for part in _split_conjunction(text)
            )
        )

    @property
    def attributes(self) -> set[str]:
        """Names of all attributes the description conditions on."""
        return {c.attribute for c in self.conditions}

    def with_condition(self, condition: Condition) -> "Description":
        """A new description with one more conjunct (not canonicalized)."""
        return Description(self.conditions + (condition,))

    # ------------------------------------------------------------------ #
    # Canonical form
    # ------------------------------------------------------------------ #
    def canonical(self) -> "Description":
        """Sorted, deduplicated, bound-merged equivalent description.

        - several ``attr <= t`` conjuncts collapse to the smallest ``t``;
        - several ``attr >= t`` conjuncts collapse to the largest ``t``;
        - duplicate equality conditions collapse to one.

        Contradictions (empty numeric interval, two different equality
        values on one attribute) are *kept* — the description simply has
        an empty extension; :meth:`is_contradictory` detects them.
        """
        upper: dict[str, NumericCondition] = {}
        lower: dict[str, NumericCondition] = {}
        equals: dict[tuple[str, str], EqualsCondition] = {}
        for condition in self.conditions:
            if isinstance(condition, NumericCondition):
                book = upper if condition.op == LE else lower
                best = book.get(condition.attribute)
                if best is None:
                    book[condition.attribute] = condition
                elif condition.op == LE and condition.threshold < best.threshold:
                    book[condition.attribute] = condition
                elif condition.op == GE and condition.threshold > best.threshold:
                    book[condition.attribute] = condition
            elif isinstance(condition, EqualsCondition):
                equals.setdefault((condition.attribute, str(condition.value)), condition)
            else:  # pragma: no cover - future condition types
                raise LanguageError(
                    f"cannot canonicalize condition type {type(condition).__name__}"
                )
        merged: list[Condition] = list(upper.values()) + list(lower.values())
        merged.extend(equals.values())
        merged.sort(key=lambda c: c.sort_key())
        return Description(tuple(merged))

    def is_contradictory(self) -> bool:
        """True if the canonical form provably has an empty extension."""
        canon = self.canonical()
        lower: dict[str, float] = {}
        upper: dict[str, float] = {}
        seen_equals: dict[str, str] = {}
        for condition in canon.conditions:
            if isinstance(condition, NumericCondition):
                if condition.op == LE:
                    upper[condition.attribute] = condition.threshold
                else:
                    lower[condition.attribute] = condition.threshold
            elif isinstance(condition, EqualsCondition):
                value = str(condition.value)
                if seen_equals.setdefault(condition.attribute, value) != value:
                    return True
        return any(
            attribute in upper and lower[attribute] > upper[attribute]
            for attribute in lower
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def matches(self, dataset: Dataset) -> np.ndarray:
        """Boolean extension mask over the dataset's rows."""
        mask = np.ones(dataset.n_rows, dtype=bool)
        for condition in self.conditions:
            mask &= condition.mask(dataset)
            if not mask.any():
                break
        return mask

    def extension(self, dataset: Dataset) -> np.ndarray:
        """Sorted row indices of the subgroup extension."""
        return np.flatnonzero(self.matches(dataset))

    def coverage(self, dataset: Dataset) -> float:
        """Fraction of rows the description covers."""
        return float(self.matches(dataset).mean())


def _split_conjunction(text: str) -> list[str]:
    """Split rendered conjuncts on ``" AND "``, quote-aware.

    A separator inside an equality's quoted value (``country =
    'Trinidad AND Tobago'``) must not split: only positions where the
    preceding segment holds a balanced (even) number of single quotes
    are real conjunction joints.
    """
    parts: list[str] = []
    start = 0
    pos = text.find(" AND ")
    while pos != -1:
        if text.count("'", start, pos) % 2 == 0:
            parts.append(text[start:pos])
            start = pos + len(" AND ")
        pos = text.find(" AND ", pos + len(" AND "))
    parts.append(text[start:])
    return parts


def _parse_condition(text: str) -> Condition:
    """One rendered condition back into its object form.

    Equality is matched first: its quoted value may legitimately
    contain operator tokens (``attr = 'a <= b'``), while a numeric
    rendering never contains ``= '``.
    """
    match = _EQUALS_RE.match(text)
    if match is not None:
        raw = match.group("value")
        try:
            number = float(raw)
        except ValueError:
            value: object = raw
        else:
            # Binary attributes render as quoted finite numbers; a
            # non-finite spelling like 'nan' can only be a label.
            value = number if math.isfinite(number) else raw
        return EqualsCondition(match.group("attr"), value)
    match = _NUMERIC_RE.match(text)
    if match is not None and match.group("op") in (LE, GE):
        try:
            threshold = float(match.group("value"))
        except ValueError:
            raise LanguageError(
                f"cannot parse numeric threshold in condition {text!r}"
            ) from None
        return NumericCondition(match.group("attr"), match.group("op"), threshold)
    raise LanguageError(
        f"cannot parse condition {text!r}; expected \"attr <= t\", "
        f"\"attr >= t\" or \"attr = 'v'\""
    )


def conjunction(conditions: Iterable[Condition]) -> Description:
    """Convenience constructor: canonical description from any iterable."""
    return Description(tuple(conditions)).canonical()
