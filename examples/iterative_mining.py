"""Iterative mining mechanics: how the belief state evolves.

A close-up of the FORSIED machinery on the synthetic data: the SI of
every candidate pattern before and after each assimilation, the block
structure of the background model, and a demonstration that refitting
from scratch reproduces the incrementally updated model (the Table II
computation).

This example deliberately drives the :class:`repro.SubgroupDiscovery`
substrate directly — it inspects the miner's model internals between
steps. Everyday mining goes through the front door instead; see
``quickstart.py`` (:class:`repro.Workspace` + :class:`repro.MiningSpec`).

Run with::

    python examples/iterative_mining.py
"""

import numpy as np

from repro import SubgroupDiscovery, load_dataset
from repro.lang import Description, EqualsCondition
from repro.utils.timer import Stopwatch


def main() -> None:
    dataset = load_dataset("synthetic", seed=0)
    miner = SubgroupDiscovery(dataset, seed=0)

    tracked = [
        Description((EqualsCondition(f"attr{j}", 1.0),)) for j in (3, 4, 5, 6)
    ]

    def si_row(label: str) -> None:
        cells = "  ".join(
            f"{str(d):12s}={miner.score_description(d).si:8.2f}" for d in tracked
        )
        print(f"{label:22s} {cells}")

    print("SI of the candidate intentions as the belief state evolves")
    print("(attr3-5 are planted subgroups; attr6 is noise):")
    si_row("initial beliefs")
    for k in range(3):
        iteration = miner.step(kind="spread")
        si_row(f"after {iteration.location.description}")

    print()
    print(f"background model now has {miner.model.n_blocks} parameter blocks "
          f"(one per planted cluster + the rest), "
          f"{len(miner.model.constraints)} constraints assimilated")
    print(f"max constraint residual: {miner.model.max_residual():.2e}")

    # The Table II computation: refit the same belief state from scratch.
    refit_model = miner.model.copy()
    watch = Stopwatch()
    with watch:
        sweeps = refit_model.refit(list(miner.model.constraints))
    drift = float(
        np.abs(refit_model.point_means() - miner.model.point_means()).max()
    )
    print()
    print(f"refit from prior: {sweeps} coordinate-descent sweep(s) "
          f"in {watch.elapsed*1000:.1f} ms; max parameter drift vs the "
          f"incremental model: {drift:.2e}")


if __name__ == "__main__":
    main()
