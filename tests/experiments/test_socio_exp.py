"""Integration tests: the §III-C socio-economics experiments (Figs. 7-8)."""

import numpy as np
import pytest

from repro.experiments.socio_exp import run_fig7, run_fig8


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(seed=0)


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(seed=0)


class TestFig7:
    def test_three_patterns(self, fig7):
        assert len(fig7.patterns) == 3

    def test_first_pattern_is_east(self, fig7):
        """Paper: 'Children Pop. <= 14.1' covering East Germany."""
        first = fig7.patterns[0]
        assert first.region_shares["east"] > 0.9
        assert "children_pop <=" in first.intention

    def test_first_pattern_left_elevated(self, fig7):
        first = fig7.patterns[0]
        assert first.vote_means["left_2009"] > first.overall_vote_means["left_2009"] + 10
        for party in ("cdu_2009", "spd_2009", "fdp_2009", "green_2009"):
            assert first.vote_means[party] < first.overall_vote_means[party]

    def test_second_pattern_is_cities_with_green(self, fig7):
        second = fig7.patterns[1]
        city_share = second.region_shares["city"] + second.region_shares["student_city"]
        assert city_share > 0.8
        assert second.vote_means["green_2009"] > second.overall_vote_means["green_2009"] + 4

    def test_third_pattern_complement_left_unpopular(self, fig7):
        third = fig7.patterns[2]
        assert third.region_shares["east"] < 0.1
        assert third.vote_means["left_2009"] < third.overall_vote_means["left_2009"] - 3

    def test_format_renders(self, fig7):
        assert "Fig. 7" in fig7.format()


class TestFig8:
    def test_left_most_surprising_party(self, fig8):
        """Fig. 8a is ranked by SI; the Left tops it."""
        assert fig8.surprisals_before[0].name == "left_2009"

    def test_all_parties_outside_ci(self, fig8):
        for record in fig8.surprisals_before:
            lo, hi = record.ci95
            assert record.observed < lo or record.observed > hi

    def test_update_pins_means(self, fig8):
        for before, after in zip(fig8.surprisals_before, fig8.surprisals_after):
            assert after.expected == pytest.approx(before.observed, abs=1e-6)

    def test_direction_on_cdu_spd_pair(self, fig8):
        """Paper: weight vector (0.5704, 0.8214) on (CDU, SPD)."""
        assert set(fig8.direction_attributes) == {"cdu_2009", "spd_2009"}

    def test_direction_close_to_paper_vector(self, fig8):
        nonzero = fig8.direction[np.abs(fig8.direction) > 1e-12]
        paper = np.array([0.5704, 0.8214])
        cosine = abs(float(nonzero @ paper))
        assert cosine > 0.99

    def test_variance_much_smaller_than_expected(self, fig8):
        """Fig. 8c: the subgroup is far tighter along w than expected."""
        assert fig8.observed_variance < 0.2 * fig8.expected_variance
        assert fig8.spread_si > 10.0

    def test_cdf_series_consistent(self, fig8):
        assert fig8.cdf_grid.shape == fig8.cdf_model.shape == fig8.cdf_data.shape
        assert np.all(np.diff(fig8.cdf_model) >= -1e-12)
        # The data CDF is much steeper: it rises from 0.1 to 0.9 over a
        # shorter span than the model's.
        def span(cdf, grid):
            lo = grid[np.searchsorted(cdf, 0.1)]
            hi = grid[np.searchsorted(cdf, 0.9)]
            return hi - lo
        assert span(fig8.cdf_data, fig8.cdf_grid) < 0.7 * span(
            fig8.cdf_model, fig8.cdf_grid
        )

    def test_format_renders(self, fig8):
        text = fig8.format()
        assert "Fig. 8b" in text
        assert "0.5704" in text  # mentions the paper's reference vector
