"""Name-based access to the paper's datasets.

``load_dataset("socio", seed=7)`` is what the CLI, the experiments and the
benchmarks use, so that every entry point names datasets the same way.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.schema import Dataset
from repro.datasets.crime import make_crime
from repro.datasets.mammals import make_mammals
from repro.datasets.socio import make_socio
from repro.datasets.synthetic import make_synthetic
from repro.datasets.water import make_water
from repro.errors import DataError

_REGISTRY: dict[str, Callable[..., Dataset]] = {
    "synthetic": make_synthetic,
    "crime": make_crime,
    "mammals": make_mammals,
    "socio": make_socio,
    "water": make_water,
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`, sorted."""
    return sorted(_REGISTRY)


def load_dataset(name: str, seed: int = 0, **kwargs) -> Dataset:
    """Generate the named dataset with the given seed.

    Extra keyword arguments are forwarded to the generator (e.g.
    ``flip_probability`` for ``synthetic``).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise DataError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        ) from None
    return factory(seed, **kwargs)
