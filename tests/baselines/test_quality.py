"""Tests for the classical quality measures."""

import numpy as np
import pytest

from repro.baselines.quality import (
    DispersionCorrectedQuality,
    MeanShiftQuality,
    WRAccQuality,
)
from repro.errors import ModelError


@pytest.fixture()
def planted(rng):
    targets = rng.standard_normal(100)
    targets[:20] += 3.0
    return targets


class TestMeanShift:
    def test_planted_beats_random(self, planted):
        quality = MeanShiftQuality(planted)
        mask = np.zeros(100, dtype=bool)
        mask[:20] = True
        random_mask = np.zeros(100, dtype=bool)
        random_mask[40:60] = True
        assert quality(mask) > quality(random_mask) + 2.0

    def test_univariate_formula(self, rng):
        targets = rng.standard_normal(50)
        quality = MeanShiftQuality(targets)
        mask = np.zeros(50, dtype=bool)
        mask[:10] = True
        shift = targets[:10].mean() - targets.mean()
        sigma = targets.std()
        expected = np.sqrt(10) * abs(shift) / sigma
        assert quality(mask) == pytest.approx(expected, rel=1e-6)

    def test_multivariate_supported(self, rng):
        targets = rng.standard_normal((50, 3))
        quality = MeanShiftQuality(targets)
        mask = np.zeros(50, dtype=bool)
        mask[:10] = True
        assert quality(mask) >= 0.0

    def test_empty_mask_rejected(self, planted):
        with pytest.raises(ModelError, match="empty"):
            MeanShiftQuality(planted)(np.zeros(100, dtype=bool))

    def test_wrong_mask_shape(self, planted):
        with pytest.raises(ModelError, match="mask"):
            MeanShiftQuality(planted)(np.ones(10, dtype=bool))


class TestWRAcc:
    def test_formula(self, planted):
        quality = WRAccQuality(planted)
        mask = np.zeros(100, dtype=bool)
        mask[:20] = True
        positive = planted > planted.mean()
        expected = 0.2 * (positive[mask].mean() - positive.mean())
        assert quality(mask) == pytest.approx(expected)

    def test_multitarget_rejected(self, rng):
        with pytest.raises(ModelError, match="single target"):
            WRAccQuality(rng.standard_normal((10, 2)))

    def test_custom_threshold(self, planted):
        quality = WRAccQuality(planted, threshold=2.0)
        assert quality.threshold == 2.0

    def test_bounded_by_quarter(self, planted, rng):
        quality = WRAccQuality(planted)
        for _ in range(20):
            mask = rng.random(100) < rng.random()
            if mask.any():
                assert abs(quality(mask)) <= 0.25 + 1e-9


class TestDispersionCorrected:
    def test_tight_subgroup_beats_loose(self, rng):
        targets = rng.standard_normal(100) * 0.1
        targets[:20] += 2.0                      # tight displaced subgroup
        targets[20:40] += 2.0 + rng.standard_normal(20) * 3.0  # noisy one
        quality = DispersionCorrectedQuality(targets)
        tight = np.zeros(100, dtype=bool)
        tight[:20] = True
        loose = np.zeros(100, dtype=bool)
        loose[20:40] = True
        assert quality(tight) > quality(loose)

    def test_negative_shift_scores_zero(self, planted):
        quality = DispersionCorrectedQuality(planted)
        mask = planted < planted.mean() - 1.0
        assert quality(mask) == 0.0

    def test_multitarget_rejected(self, rng):
        with pytest.raises(ModelError, match="single target"):
            DispersionCorrectedQuality(rng.standard_normal((10, 2)))

    def test_invalid_params(self, planted):
        with pytest.raises(ModelError):
            DispersionCorrectedQuality(planted, coverage_power=-1.0)
