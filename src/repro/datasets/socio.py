"""Synthetic stand-in for the German socio-economics dataset.

The paper's case study (§III-C, Figs. 7-8) uses socio-economic records of
412 German administrative districts: 13 description attributes (age and
workforce distributions) and 5 targets (2009 federal-election vote shares
of CDU/CSU, SPD, FDP, Greens, Left). The original KDD-IDEA data is not
available offline; this generator reproduces its shape and plants the
three structures the experiments measure:

- An *East* block (~21% of districts) with a low share of children and a
  strongly elevated Left vote at the expense of all other parties
  (pattern 1: "children_pop <= ~14"). Three student-city districts
  (Heidelberg/Passau/Wuerzburg analogs) also have few children, matching
  the paper's observation that they join the subgroup.
- A *big-city* block with a high middle-aged share and elevated Green
  vote at the expense of the Left (pattern 2: "middleaged_pop >= ~27").
- Inside the East block, CDU and SPD vote shares co-vary along the
  direction ~(0.57, 0.82) with far *less* variance than the background
  expects (the parties "battle for the same voters") — the Fig. 8 spread
  pattern with weight vector (0.5704, 0.8214).

Vote shares are percentages; the five parties sum to roughly 90 with the
remainder representing minor parties.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.utils.rng import as_rng

PARTIES = ("cdu_2009", "spd_2009", "fdp_2009", "green_2009", "left_2009")

AGE_ATTRIBUTES = (
    "children_pop",    # share < 18
    "young_pop",       # 18-29
    "middleaged_pop",  # 30-49
    "old_pop",         # 50-64
    "elderly_pop",     # 65+
)

WORKFORCE_ATTRIBUTES = (
    "agriculture_wf",
    "production_wf",
    "construction_wf",
    "trade_wf",
    "transport_wf",
    "finance_wf",
    "service_wf",
    "public_wf",
)

#: Real-sounding district names for map-flavoured examples; the remainder
#: of the 412 districts get procedural names.
EAST_NAMED = (
    "Leipzig", "Dresden", "Chemnitz", "Erfurt", "Suhl", "Schwerin",
    "Neubrandenburg", "Nordvorpommern", "Wittenberg", "Wismar",
)
CITY_NAMED = (
    "Berlin", "Munich", "Hamburg", "Cologne", "Frankfurt am Main", "Bremen",
    "Mannheim", "Erlangen", "Osnabrueck", "Paderborn", "Giessen", "Dortmund",
    "Aachen", "Konstanz", "Darmstadt",
)
STUDENT_CITY_NAMED = ("Heidelberg", "Passau", "Wuerzburg")

#: The planted low-variance direction of the Fig. 8 spread pattern, on the
#: (CDU, SPD) target pair.
SPREAD_DIRECTION = np.array([0.5704, 0.8214])


def _vote_profile(region: str) -> np.ndarray:
    """Mean vote shares (CDU, SPD, FDP, Green, Left) by district type."""
    profiles = {
        # Roughly the real 2009 patterns: Left strong in the East, Greens
        # strong in large cities, FDP strongest in the West.
        "east": np.array([29.0, 17.5, 9.5, 6.0, 27.0]),
        "city": np.array([27.5, 23.0, 12.0, 18.0, 8.0]),
        "student_city": np.array([28.0, 20.0, 13.0, 17.0, 9.0]),
        "west": np.array([35.5, 24.5, 15.0, 10.0, 5.0]),
    }
    return profiles[region]


def _age_profile(region: str, rng: np.random.Generator, size: int) -> np.ndarray:
    """(size, 5) age-share matrix for one region type (percentages)."""
    if region == "east":
        means = np.array([12.8, 12.0, 26.0, 22.0, 27.2])
        spread = np.array([0.9, 1.0, 1.0, 1.0, 1.2])
    elif region == "city":
        means = np.array([15.0, 15.5, 28.6, 20.0, 20.9])
        spread = np.array([1.0, 1.2, 1.1, 0.9, 1.1])
    elif region == "student_city":
        means = np.array([13.2, 19.5, 27.4, 18.5, 21.4])
        spread = np.array([0.7, 1.3, 1.0, 0.9, 1.0])
    else:  # west
        means = np.array([17.3, 12.5, 25.2, 21.5, 23.5])
        spread = np.array([1.1, 1.0, 1.0, 0.9, 1.2])
    ages = means + spread * rng.standard_normal((size, means.shape[0]))
    return np.clip(ages, 4.0, None)


def _workforce_profile(region: str, rng: np.random.Generator, size: int) -> np.ndarray:
    """(size, 8) workforce-share matrix for one region type (percentages).

    Regional differences are kept mild relative to the noise so that the
    *age* attributes carry the separable signal, as in the paper, where
    all three top intentions condition on age shares.
    """
    if region == "east":
        means = np.array([3.0, 21.5, 6.8, 13.5, 5.8, 7.5, 26.5, 15.3])
    elif region in ("city", "student_city"):
        means = np.array([0.8, 18.5, 5.0, 14.8, 6.3, 12.0, 29.5, 13.1])
    else:  # west
        means = np.array([2.6, 22.5, 6.4, 14.2, 5.6, 9.5, 26.5, 12.7])
    wf = means + rng.standard_normal((size, means.shape[0])) * 2.0
    return np.clip(wf, 0.2, None)


def make_socio(
    seed: int | np.random.Generator = 0,
    *,
    n_rows: int = 412,
    n_east: int = 87,
    n_city: int = 45,
) -> Dataset:
    """Generate the German socio-economics stand-in.

    Returns a dataset with 13 numeric description attributes (5 age + 8
    workforce shares) and 5 vote-share targets. Metadata: ``region`` label
    per district (``east``/``city``/``student_city``/``west``), district
    names, and approximate lat/lon for map rendering.
    """
    n_student = len(STUDENT_CITY_NAMED)
    n_west = n_rows - n_east - n_city - n_student
    if n_west <= 0:
        raise ValueError("n_rows too small for the requested east/city blocks")
    rng = as_rng(seed)

    regions = (
        ["east"] * n_east + ["city"] * n_city
        + ["student_city"] * n_student + ["west"] * n_west
    )

    ages_parts, wf_parts, votes_parts = [], [], []
    for region, size in (
        ("east", n_east), ("city", n_city),
        ("student_city", n_student), ("west", n_west),
    ):
        ages_parts.append(_age_profile(region, rng, size))
        wf_parts.append(_workforce_profile(region, rng, size))
        base = _vote_profile(region)
        if region == "east":
            # Planted spread structure: CDU/SPD battle for the same voters.
            # Their noise is injected along d = (-0.8214, 0.5704) — the
            # direction orthogonal to SPREAD_DIRECTION — plus only a tiny
            # isotropic component, so the variance *along*
            # SPREAD_DIRECTION is far smaller than the background model
            # (fitted on the whole data) expects. The other parties keep
            # ordinary within-block variability so no other pair offers a
            # comparably surprising low-variance direction.
            votes = base + rng.standard_normal((size, 5)) * np.array(
                [0.35, 0.35, 1.4, 1.8, 2.2]
            )
            swing = rng.standard_normal(size) * 3.0
            votes[:, 0] += -SPREAD_DIRECTION[1] * swing   # CDU
            votes[:, 1] += SPREAD_DIRECTION[0] * swing    # SPD
        else:
            votes = base + rng.standard_normal((size, 5)) * np.array(
                [2.2, 2.0, 1.4, 1.3, 1.0]
            )
        votes_parts.append(votes)

    ages = np.concatenate(ages_parts)
    workforce = np.concatenate(wf_parts)
    votes = np.clip(np.concatenate(votes_parts), 0.5, None)

    # District names: a few real anchors per region plus procedural fill.
    names: list[str] = []
    east_fill = iter(range(10_000))
    for idx, region in enumerate(regions):
        if region == "east" and idx < len(EAST_NAMED):
            names.append(EAST_NAMED[idx])
        elif region == "city" and idx - n_east < len(CITY_NAMED):
            names.append(CITY_NAMED[idx - n_east])
        elif region == "student_city":
            names.append(STUDENT_CITY_NAMED[idx - n_east - n_city])
        else:
            names.append(f"district_{next(east_fill):03d}")

    # Approximate geography: East districts sit in the north-east box.
    lat = np.where(
        np.array(regions) == "east",
        rng.uniform(50.2, 54.4, n_rows),
        rng.uniform(47.4, 54.6, n_rows),
    )
    lon = np.where(
        np.array(regions) == "east",
        rng.uniform(11.8, 14.9, n_rows),
        rng.uniform(6.0, 11.6, n_rows),
    )

    columns = [
        Column(name, AttributeKind.NUMERIC, ages[:, j])
        for j, name in enumerate(AGE_ATTRIBUTES)
    ]
    columns.extend(
        Column(name, AttributeKind.NUMERIC, workforce[:, j])
        for j, name in enumerate(WORKFORCE_ATTRIBUTES)
    )
    metadata = {
        "region": np.array(regions, dtype=object),
        "district": np.array(names, dtype=object),
        "lat": lat,
        "lon": lon,
        "spread_direction": SPREAD_DIRECTION.copy(),
    }
    return Dataset("socio", columns, votes, list(PARTIES), metadata)
