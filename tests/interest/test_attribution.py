"""Tests for per-attribute surprisal (Figs. 5/8a/10 machinery)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.interest.attribution import attribute_surprisals
from repro.model.background import BackgroundModel
from repro.model.patterns import LocationConstraint
from repro.stats.statistics import subgroup_mean


@pytest.fixture()
def setup(rng):
    targets = rng.standard_normal((60, 3))
    targets[:15, 0] += 4.0   # attribute 0 strongly displaced
    targets[:15, 1] += 1.0   # attribute 1 mildly displaced
    model = BackgroundModel.from_targets(targets)
    return targets, model


class TestAttributeSurprisals:
    def test_ranked_by_ic(self, setup):
        targets, model = setup
        idx = np.arange(15)
        records = attribute_surprisals(model, idx, subgroup_mean(targets, idx))
        ics = [r.ic for r in records]
        assert ics == sorted(ics, reverse=True)

    def test_strongest_attribute_first(self, setup):
        targets, model = setup
        idx = np.arange(15)
        records = attribute_surprisals(
            model, idx, subgroup_mean(targets, idx), names=["a", "b", "c"]
        )
        assert records[0].name == "a"

    def test_ci_contains_expected(self, setup):
        targets, model = setup
        idx = np.arange(15)
        for record in attribute_surprisals(model, idx, subgroup_mean(targets, idx)):
            lo, hi = record.ci95
            assert lo < record.expected < hi

    def test_z_sign_matches_direction(self, setup):
        targets, model = setup
        idx = np.arange(15)
        records = {
            r.index: r
            for r in attribute_surprisals(model, idx, subgroup_mean(targets, idx))
        }
        assert records[0].z > 0  # planted positive shift

    def test_after_assimilation_expected_equals_observed(self, setup):
        targets, model = setup
        idx = np.arange(15)
        observed = subgroup_mean(targets, idx)
        model.assimilate(LocationConstraint.from_data(targets, idx))
        for record in attribute_surprisals(model, idx, observed):
            assert record.expected == pytest.approx(record.observed, abs=1e-9)
            assert abs(record.z) < 1e-6

    def test_default_names(self, setup):
        targets, model = setup
        records = attribute_surprisals(
            model, np.arange(15), subgroup_mean(targets, np.arange(15))
        )
        assert {r.name for r in records} == {"target_0", "target_1", "target_2"}

    def test_name_count_checked(self, setup):
        targets, model = setup
        with pytest.raises(ModelError, match="names"):
            attribute_surprisals(
                model, np.arange(15), subgroup_mean(targets, np.arange(15)),
                names=["only_one"],
            )

    def test_univariate_ic_formula(self, setup):
        """IC_j = -log N(obs_j; mu_j, sd_j^2)."""
        from scipy import stats as sps

        targets, model = setup
        idx = np.arange(15)
        observed = subgroup_mean(targets, idx)
        mu, cov = model.subgroup_mean_distribution(idx)
        records = {r.index: r for r in attribute_surprisals(model, idx, observed)}
        for j in range(3):
            expected = -sps.norm(mu[j], np.sqrt(cov[j, j])).logpdf(observed[j])
            assert records[j].ic == pytest.approx(expected, rel=1e-9)
