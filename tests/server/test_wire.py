"""Wire-schema goldens: every document round-trips through JSON exactly.

The client asserts bit-identical results after a network hop, so these
tests push each wire form through a real ``json.dumps``/``loads`` cycle
(not just dict equality) and compare floats with ``==`` — exact, no
tolerance.
"""

import json

import numpy as np
import pytest

from repro.engine.jobs import JobResult, MiningJob
from repro.errors import ReproError
from repro.events import SchedulerEvent
from repro.interest.si import PatternScore
from repro.lang.conditions import NumericCondition
from repro.lang.description import Description
from repro.search.config import SearchConfig
from repro.search.results import (
    LocationPatternResult,
    MiningIteration,
    ScoredSubgroup,
    SpreadPatternResult,
)
from repro.server import wire


def _roundtrip(document: dict) -> dict:
    """A genuine JSON hop — what actually crosses the network."""
    return json.loads(json.dumps(document, allow_nan=False))


def _description() -> Description:
    return Description((NumericCondition("x1", "<=", 1.0 / 3.0),))


def _iteration(index: int = 1, with_spread: bool = True) -> MiningIteration:
    description = _description()
    location = LocationPatternResult(
        description=description,
        indices=np.array([0, 2, 5], dtype=np.int64),
        mean=np.array([0.1, 2.0 / 3.0]),
        score=PatternScore(ic=10.0 / 3.0, dl=1.7),
        coverage=0.3,
    )
    spread = None
    if with_spread:
        spread = SpreadPatternResult(
            description=description,
            indices=np.array([0, 2], dtype=np.int64),
            direction=np.array([1.0 / 7.0, -0.5]),
            variance=0.0123,
            center=np.array([0.0, 0.25]),
            score=PatternScore(ic=2.5, dl=0.5),
        )
    return MiningIteration(index=index, location=location, spread=spread)


def _job() -> MiningJob:
    return MiningJob(
        dataset="synthetic",
        config=SearchConfig(beam_width=6, max_depth=2, top_k=10),
        n_iterations=2,
        priority=3,
        deadline=60.0,
    )


def _result() -> JobResult:
    return JobResult(
        job=_job(),
        iterations=(_iteration(1), _iteration(2, with_spread=False)),
        elapsed_seconds=1.0 / 3.0,
    )


def _assert_iterations_equal(a: MiningIteration, b: MiningIteration) -> None:
    assert a.index == b.index
    assert str(a.location.description) == str(b.location.description)
    np.testing.assert_array_equal(a.location.indices, b.location.indices)
    np.testing.assert_array_equal(a.location.mean, b.location.mean)
    assert a.location.score.ic == b.location.score.ic  # exact
    assert a.location.score.dl == b.location.score.dl
    assert a.location.coverage == b.location.coverage
    assert (a.spread is None) == (b.spread is None)
    if a.spread is not None:
        np.testing.assert_array_equal(a.spread.direction, b.spread.direction)
        assert a.spread.variance == b.spread.variance
        assert a.spread.score.ic == b.spread.score.ic


class TestPayloadRoundTrips:
    def test_iteration_round_trips_exactly(self):
        original = _iteration()
        rebuilt = wire.iteration_from_wire(
            _roundtrip(wire.iteration_to_wire(original))
        )
        _assert_iterations_equal(original, rebuilt)

    def test_iteration_without_spread(self):
        original = _iteration(with_spread=False)
        rebuilt = wire.iteration_from_wire(
            _roundtrip(wire.iteration_to_wire(original))
        )
        assert rebuilt.spread is None
        _assert_iterations_equal(original, rebuilt)

    def test_job_result_round_trips_exactly(self):
        original = _result()
        rebuilt = wire.job_result_from_wire(
            _roundtrip(wire.job_result_to_wire(original))
        )
        assert rebuilt.job == original.job
        assert rebuilt.elapsed_seconds == original.elapsed_seconds
        assert len(rebuilt.iterations) == 2
        for a, b in zip(original.iterations, rebuilt.iterations):
            _assert_iterations_equal(a, b)

    def test_scheduler_event_round_trips(self):
        original = SchedulerEvent(
            kind="coalesced",
            job_id="job-0007",
            job=_job(),
            pending=4,
            detail="onto job-0003",
        )
        rebuilt = wire.scheduler_event_from_wire(
            _roundtrip(wire.scheduler_event_to_wire(original))
        )
        assert rebuilt.kind == original.kind
        assert rebuilt.job_id == original.job_id
        assert rebuilt.pending == original.pending
        assert rebuilt.detail == original.detail
        assert rebuilt.job == original.job

    def test_candidate_summary_is_render_ready(self):
        candidate = ScoredSubgroup(
            description=_description(),
            indices=np.array([1, 2, 3], dtype=np.int64),
            observed_mean=np.array([0.5]),
            score=PatternScore(ic=4.0, dl=2.0),
        )
        document = _roundtrip(wire.candidate_to_wire(candidate))
        assert document == {
            "description": str(candidate.description),
            "size": 3,
            "si": 2.0,
            "ic": 4.0,
            "dl": 2.0,
        }


class TestEventEnvelopes:
    def test_iteration_event_golden_shape(self):
        document = _roundtrip(wire.iteration_event("job-0001", _iteration()))
        assert document["schema"] == wire.WIRE_SCHEMA
        assert document["type"] == "iteration"
        assert document["job_id"] == "job-0001"
        assert document["iteration"]["index"] == 1
        assert document["iteration"]["location"]["type"] == "location_pattern"
        assert document["iteration"]["spread"]["type"] == "spread_pattern"

    @pytest.mark.parametrize(
        "build",
        [
            lambda: wire.iteration_event("job-0001", _iteration()),
            lambda: wire.job_event("job-0002", _result()),
            lambda: wire.schedule_event(
                SchedulerEvent("queued", "job-0003", _job(), pending=1)
            ),
            lambda: wire.job_failed_event(
                "job-0004", _job(), RuntimeError("boom")
            ),
        ],
    )
    def test_event_from_wire_materializes(self, build):
        event = wire.event_from_wire(_roundtrip(build()), seq=17)
        assert event.seq == 17
        assert event.type in wire.EVENT_TYPES
        assert event.job_id.startswith("job-")
        if event.type == "iteration":
            _assert_iterations_equal(event.data, _iteration())
        elif event.type == "job":
            assert event.data.job == _job()
        elif event.type == "schedule":
            assert event.data.kind == "queued"
        elif event.type == "job_failed":
            assert event.data["error"] == {
                "type": "RuntimeError",
                "message": "boom",
            }

    def test_unknown_event_type_is_loud(self):
        with pytest.raises(ReproError):
            wire.event_from_wire({"schema": wire.WIRE_SCHEMA, "type": "nope"})

    def test_wrong_schema_is_loud(self):
        with pytest.raises(ReproError):
            wire.event_from_wire({"schema": 999, "type": "iteration"})

    def test_job_state_document(self):
        job = _job()
        document = _roundtrip(wire.job_state_to_wire("job-0009", "running", job))
        assert document["job_id"] == "job-0009"
        assert document["status"] == "running"
        assert document["fingerprint"] == job.fingerprint()
        assert document["priority"] == 3
        assert document["deadline"] == 60.0
