"""Tests for search result records."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.interest.si import PatternScore
from repro.lang.conditions import EqualsCondition
from repro.lang.description import Description
from repro.model.patterns import LocationConstraint, SpreadConstraint
from repro.search.results import (
    LocationPatternResult,
    MiningIteration,
    ResultSet,
    ScoredSubgroup,
    SpreadPatternResult,
)


def description():
    return Description((EqualsCondition("a", 1.0),))


class TestScoredSubgroup:
    def test_properties(self):
        entry = ScoredSubgroup(
            description=description(),
            indices=np.array([1, 3, 5]),
            observed_mean=np.array([0.5]),
            score=PatternScore(ic=11.0, dl=1.1),
        )
        assert entry.size == 3
        assert entry.si == pytest.approx(10.0)
        assert "SI=10.00" in str(entry)


class TestLocationPatternResult:
    def test_constraint_conversion(self):
        result = LocationPatternResult(
            description=description(),
            indices=np.array([0, 2]),
            mean=np.array([1.5]),
            score=PatternScore(ic=5.0, dl=1.1),
            coverage=0.1,
        )
        constraint = result.constraint()
        assert isinstance(constraint, LocationConstraint)
        np.testing.assert_array_equal(constraint.indices, [0, 2])
        np.testing.assert_array_equal(constraint.mean, [1.5])

    def test_str_mentions_coverage(self):
        result = LocationPatternResult(
            description=description(),
            indices=np.arange(5),
            mean=np.array([0.0]),
            score=PatternScore(ic=5.0, dl=1.1),
            coverage=0.25,
        )
        assert "25.0%" in str(result)


class TestSpreadPatternResult:
    def test_constraint_conversion(self):
        result = SpreadPatternResult(
            description=description(),
            indices=np.array([0, 1, 2]),
            direction=np.array([1.0, 0.0]),
            variance=0.5,
            center=np.array([0.0, 0.0]),
            score=PatternScore(ic=3.0, dl=2.1),
        )
        constraint = result.constraint()
        assert isinstance(constraint, SpreadConstraint)
        assert constraint.variance == 0.5

    def test_str_shows_direction(self):
        result = SpreadPatternResult(
            description=description(),
            indices=np.arange(3),
            direction=np.array([0.6, -0.8]),
            variance=0.5,
            center=np.zeros(2),
            score=PatternScore(ic=3.0, dl=2.1),
        )
        assert "+0.600" in str(result)
        assert "-0.800" in str(result)


def _iteration(index=1, with_spread=False):
    indices = np.array([0, 2])
    location = LocationPatternResult(
        description=description(),
        indices=indices,
        mean=np.array([1.5]),
        score=PatternScore(ic=5.0, dl=1.1),
        coverage=0.2,
    )
    spread = None
    if with_spread:
        spread = SpreadPatternResult(
            description=description(),
            indices=indices,
            direction=np.array([1.0]),
            variance=0.5,
            center=np.array([1.5]),
            score=PatternScore(ic=3.0, dl=2.1),
        )
    return MiningIteration(index=index, location=location, spread=spread)


class _FakeWeightedDataset:
    def __init__(self, weights):
        self.weights = weights


class TestResultSet:
    def test_rows_flatten_location_and_spread(self):
        results = ResultSet([_iteration(1, with_spread=True), _iteration(2)])
        rows = results.rows()
        assert [r["kind"] for r in rows] == ["location", "spread", "location"]
        assert rows[0]["size"] == 2
        assert rows[0]["si"] == pytest.approx(5.0 / 1.1)
        assert rows[1]["variance"] == 0.5
        assert len(results) == 2
        assert all(isinstance(i, MiningIteration) for i in results)

    def test_unweighted_coverages_coincide(self):
        rows = ResultSet([_iteration()]).rows()
        assert rows[0]["weighted_coverage"] == rows[0]["coverage"]

    def test_weighted_coverage_uses_case_weights(self):
        # Rows 0 and 2 carry weight 3 of a total 10: 30% of the weighted
        # population versus the 20% row coverage recorded by the search.
        dataset = _FakeWeightedDataset(np.array([2.0, 3.0, 1.0, 4.0]))
        rows = ResultSet([_iteration()], dataset=dataset).rows()
        assert rows[0]["coverage"] == pytest.approx(0.2)
        assert rows[0]["weighted_coverage"] == pytest.approx(0.3)

    def test_from_result_lifts_job_results(self):
        class _FakeJobResult:
            iterations = (_iteration(),)

        results = ResultSet.from_result(_FakeJobResult())
        assert len(results) == 1

    def test_rejects_non_iterations(self):
        with pytest.raises(TypeError, match="MiningIteration"):
            ResultSet(["nope"])

    def test_to_dataframe_needs_pandas(self):
        try:
            import pandas  # noqa: F401
        except ImportError:
            with pytest.raises(DataError, match=r"sisd\[dataframe\]"):
                ResultSet([_iteration()]).to_dataframe()
        else:
            frame = ResultSet([_iteration(1, with_spread=True)]).to_dataframe()
            assert list(frame["kind"]) == ["location", "spread"]
