"""The shipped tree passes its own gates: ``sisd lint src/`` is clean.

This is the test that keeps the linter honest in both directions — the
rules must fire (proven by the fixture tests) *and* the code this repo
actually ships must satisfy them. A new violation anywhere in ``src/``
fails this test locally, before CI ever sees it.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import RULES, LintEngine

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


class TestSelfCheck:
    def test_shipped_tree_is_clean(self):
        engine = LintEngine(root=REPO_ROOT)
        report = engine.lint([SRC])
        assert report.files > 50, "src/ collection looks wrong"
        messages = [finding.format() for finding in report.findings]
        assert report.clean, "sisd lint src/ found:\n" + "\n".join(messages)

    def test_every_rule_is_documented(self):
        for rule_id in RULES:
            rule = RULES.get(rule_id)
            assert rule.summary().startswith(rule_id), (
                f"{rule_id}: docstring must open with its id"
            )
            assert len(rule.explain().splitlines()) > 2, (
                f"{rule_id}: --explain needs a real paragraph, not a stub"
            )

    def test_cli_entry_point_exits_zero_on_src(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(SRC)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestTypeGate:
    @pytest.mark.skipif(
        importlib.util.find_spec("mypy") is None,
        reason="mypy not installed (CI installs it)",
    )
    def test_typed_modules_pass_mypy(self):
        result = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
