"""Engine-level caching: stable fingerprints and the dataset cache.

A parameter sweep mines one dataset under many configs, and the service
deduplicates repeated job submissions; both reuse points key their
:class:`~repro.utils.cache.LRUCache` (re-exported here) by
:func:`fingerprint` digests of the JSON-canonical spec, so equal specs
hit regardless of dict ordering or tuple-vs-list spelling.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from typing import Any

import numpy as np

from repro.errors import EngineError
from repro.utils.cache import CacheStats, LRUCache

__all__ = [
    "CacheStats",
    "LRUCache",
    "fingerprint",
    "dataset_fingerprint",
    "DATASET_CACHE",
    "load_dataset_cached",
]


# --------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------- #
def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure (sorted, list-normal)."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _canonical(obj.tolist())
    if isinstance(obj, np.generic):
        return _canonical(obj.item())
    if isinstance(obj, float) and not math.isfinite(obj):
        # json.dumps would happily emit the non-JSON tokens NaN/Infinity
        # (allow_nan defaults to True), silently breaking the canonical
        # contract — and NaN != NaN makes such specs compare (and hence
        # collide) unpredictably. Reject loudly instead.
        raise EngineError(
            f"cannot fingerprint non-finite float {obj!r}: fingerprints "
            f"are JSON-canonical and JSON has no NaN/Infinity"
        )
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise EngineError(f"cannot fingerprint value of type {type(obj).__name__}")


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``obj``.

    Equal specs fingerprint equally no matter how they were spelled:
    dict key order is irrelevant, and tuples equal their list twins.
    Non-finite floats are rejected with :class:`EngineError` — JSON has
    no NaN/Infinity, so they cannot be canonicalized (``allow_nan=False``
    backstops the same contract at the serializer).
    """
    payload = json.dumps(
        _canonical(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dataset_fingerprint(name: str, seed: int = 0, kwargs: dict | None = None) -> str:
    """Cache key of one generated dataset."""
    return fingerprint({"dataset": name, "seed": seed, "kwargs": kwargs or {}})


#: Process-wide dataset cache used by the job runner by default.
DATASET_CACHE = LRUCache(maxsize=16)

#: Cache-miss sentinel: ``None`` must stay a cacheable value.
_MISS = object()

#: Per-key load locks so concurrent service threads asking for the same
#: dataset generate it once instead of stampeding; keys are dataset
#: fingerprints, of which a process sees a handful, so the table is not
#: pruned.
_LOAD_LOCKS: dict[str, threading.Lock] = {}
_LOAD_LOCKS_GUARD = threading.Lock()


def _load_lock(key: str) -> threading.Lock:
    with _LOAD_LOCKS_GUARD:
        lock = _LOAD_LOCKS.get(key)
        if lock is None:
            lock = _LOAD_LOCKS[key] = threading.Lock()
        return lock


def load_dataset_cached(
    name: str, seed: int = 0, *, cache: LRUCache | None = None, **kwargs
):
    """:func:`repro.datasets.load_dataset` behind an LRU cache.

    Datasets are immutable, so sharing one instance across jobs (and
    across service worker threads) is safe. A distinct miss sentinel —
    not ``None`` — marks absence, and a per-key lock serializes the
    first load so a burst of service threads requesting the same
    dataset generates it exactly once (stampede protection); distinct
    datasets still load concurrently.
    """
    from repro.datasets.registry import load_dataset

    cache = DATASET_CACHE if cache is None else cache
    key = dataset_fingerprint(name, seed, kwargs)
    dataset = cache.get(key, _MISS)
    if dataset is not _MISS:
        return dataset
    with _load_lock(key):
        dataset = cache.get(key, _MISS)
        if dataset is _MISS:
            dataset = load_dataset(name, seed=seed, **kwargs)
            cache.put(key, dataset)
    return dataset
