"""Atomic conditions on description attributes.

Two condition families, matching §II-A of the paper and the Cortana
search settings of §III ("descriptions on numerical metadata are based on
>= and <= relations"):

- :class:`NumericCondition` — ``attribute <= t`` or ``attribute >= t``
  for numeric and ordinal attributes;
- :class:`EqualsCondition` — ``attribute == v`` for categorical and
  binary attributes.

Conditions are immutable and hashable so they can be deduplicated, used
as cache keys for their row masks, and stored in canonical descriptions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.datasets.schema import AttributeKind, Dataset
from repro.errors import LanguageError

#: Operators allowed in numeric conditions.
LE = "<="
GE = ">="


class Condition(abc.ABC):
    """A single test on one description attribute."""

    attribute: str

    @abc.abstractmethod
    def mask(self, dataset: Dataset) -> np.ndarray:
        """Boolean row mask of the data points satisfying the condition."""

    @abc.abstractmethod
    def sort_key(self) -> tuple:
        """Total order used by canonicalization (attribute-major)."""

    def __str__(self) -> str:  # pragma: no cover - delegated to subclasses
        raise NotImplementedError


@dataclass(frozen=True)
class NumericCondition(Condition):
    """``attribute <= threshold`` or ``attribute >= threshold``."""

    attribute: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in (LE, GE):
            raise LanguageError(f"numeric op must be '<=' or '>=', got {self.op!r}")
        threshold = float(self.threshold)
        if not np.isfinite(threshold):
            raise LanguageError(f"threshold must be finite, got {threshold}")
        object.__setattr__(self, "threshold", threshold)

    def mask(self, dataset: Dataset) -> np.ndarray:
        column = dataset.column(self.attribute)
        if not column.kind.is_orderable:
            raise LanguageError(
                f"numeric condition on {column.kind.value} attribute {self.attribute!r}"
            )
        if self.op == LE:
            return column.values <= self.threshold
        return column.values >= self.threshold

    def sort_key(self) -> tuple:
        return (self.attribute, 0, self.op, self.threshold)

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.threshold:.6g}"


@dataclass(frozen=True)
class EqualsCondition(Condition):
    """``attribute == value`` for categorical/binary attributes.

    For binary attributes the value is stored as a float (0.0/1.0) and
    rendered in the paper's quoted style, e.g. ``attr3 = '1'``.
    """

    attribute: str
    value: object

    def __post_init__(self) -> None:
        value = self.value
        if isinstance(value, (int, float, np.integer, np.floating)):
            value = float(value)
            if not np.isfinite(value):
                raise LanguageError(f"value must be finite, got {value}")
        else:
            value = str(value)
        object.__setattr__(self, "value", value)

    def mask(self, dataset: Dataset) -> np.ndarray:
        column = dataset.column(self.attribute)
        if column.kind is AttributeKind.BINARY:
            return column.values == float(self.value)
        if column.kind is AttributeKind.CATEGORICAL:
            return column.values == str(self.value)
        raise LanguageError(
            f"equality condition on {column.kind.value} attribute {self.attribute!r}"
        )

    def sort_key(self) -> tuple:
        return (self.attribute, 1, "==", str(self.value))

    def __str__(self) -> str:
        if isinstance(self.value, float):
            rendered = f"{self.value:g}"
        else:
            rendered = str(self.value)
        return f"{self.attribute} = '{rendered}'"
