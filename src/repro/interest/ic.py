"""Information Content of location and spread patterns.

The IC of a pattern is the negative log probability (density) of its
statistic under the background distribution — the number of nats the
user gains by learning it. Location patterns have a Gaussian marginal
(Eq. 13); spread patterns use the chi-squared mixture approximation
(Eq. 19 with the ``log alpha`` correction, see DESIGN.md §2).

ICs here are in *nats* (natural log), like the paper's Matlab code; the
unit only rescales SI values uniformly, so rankings are unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.model.background import BackgroundModel
from repro.model.gaussian import mvn_logpdf
from repro.stats.chi2mix import Chi2Mixture
from repro.utils.validation import check_unit_vector, check_vector


def location_ic(
    model: BackgroundModel,
    indices,
    observed_mean: np.ndarray,
) -> float:
    """Eq. 13: IC of a location pattern.

    ``f_I(Y)`` is normal with mean ``mu_I`` and covariance
    ``Sigma_I = sum Sigma_i / |I|^2`` under the model; the IC is its
    negative log density at the observed subgroup mean. It grows both
    with the surprise of the mean displacement and with the subgroup
    size (larger subgroups pin the statistic more sharply).
    """
    observed_mean = check_vector(observed_mean, "observed_mean", size=model.dim)
    mu, cov = model.subgroup_mean_distribution(indices)
    return -mvn_logpdf(observed_mean, mu, cov)


def spread_ic(
    model: BackgroundModel,
    indices,
    direction: np.ndarray,
    observed_variance: float,
    center: np.ndarray,
) -> float:
    """Eq. 19: IC of a spread pattern along unit ``direction``.

    With the location pattern already assimilated, each subgroup point
    contributes ``a_i = w' Sigma_i w / |I|`` times a chi-squared(1)
    variable to ``g_I^w``; the Zhang approximation of that mixture gives
    the density whose negative log is returned.

    If the model means inside the subgroup differ from ``center`` (the
    paper's overlapping-patterns caveat, footnote 3), the chi-squares are
    really non-central; following the paper we approximate with the
    central form regardless.
    """
    direction = check_unit_vector(direction, "direction")
    if direction.shape[0] != model.dim:
        raise ModelError(
            f"direction has dim {direction.shape[0]}, model has {model.dim}"
        )
    if not observed_variance > 0.0:
        raise ModelError(
            f"observed variance must be positive, got {observed_variance}"
        )
    counts, _means, covs = model.spread_blocks(indices)
    size = float(counts.sum())
    coefficients = np.array([float(direction @ cov @ direction) for cov in covs]) / size
    mixture = Chi2Mixture(coefficients, weights=counts)
    return -float(mixture.logpdf(observed_variance))
