"""The ``sisd lint`` command: the contract checks as a CI-ready gate.

Exit codes are the CI contract:

- ``0`` — clean (or every finding pragma-silenced/baselined),
- ``1`` — at least one new finding,
- ``2`` — usage or environment error (unknown rule, unreadable
  baseline, ``--changed`` without git).

``--json`` output is stable-ordered (path, line, col, rule) so two runs
over the same tree diff cleanly; it is what CI uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.base import RULES
from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import LintEngine, changed_files
from repro.analysis.findings import REPORT_SCHEMA
from repro.errors import AnalysisError

__all__ = ["add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to a parser (used by the ``sisd`` CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_output",
        help="machine-readable report on stdout (stable-ordered; what CI "
        "archives as an artifact)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="grandfather findings recorded in FILE (fingerprint-matched, "
        "line-number independent); only new findings fail the run",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="record the current findings into FILE and exit 0 (the "
        "adopt-a-rule escape hatch; see the README policy)",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="lint only files changed vs. the git REF (default HEAD) plus "
        "untracked files — the sub-second pre-commit path",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print RULE's full documentation and exit",
    )
    parser.add_argument(
        "--rules", action="store_true", dest="list_rules",
        help="list the registered rules and exit",
    )


def _explain(rule_id: str) -> int:
    rule = RULES.get(rule_id)  # raises AnalysisError listing known ids
    print(rule.explain())
    return 0


def _list_rules() -> int:
    for rule_id in RULES:
        rule = RULES.get(rule_id)
        print(f"{rule_id:8s} {rule.summary()}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``sisd lint`` from parsed arguments; returns the exit code."""
    try:
        return _run(args)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    if args.explain is not None:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()

    selected = None
    if args.select is not None:
        selected = [token.strip() for token in args.select.split(",") if token.strip()]
    engine = LintEngine(selected)

    paths: Sequence[str] = args.paths
    if args.changed is not None:
        changed = changed_files(args.changed)
        requested = engine.collect(paths)
        wanted = {path.resolve() for path in requested}
        paths = [str(path) for path in changed if path.resolve() in wanted]
        if not paths:
            return _report(args, engine, findings=[], suppressed=0, files=0,
                           grandfathered=0)

    report = engine.lint(paths)
    findings = report.findings
    grandfathered = 0
    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(
            f"baseline with {len(findings)} finding(s) written to "
            f"{args.write_baseline}"
        )
        return 0
    if args.baseline is not None:
        findings, grandfathered = apply_baseline(
            findings, load_baseline(args.baseline)
        )
    return _report(
        args,
        engine,
        findings=findings,
        suppressed=report.suppressed,
        files=report.files,
        grandfathered=grandfathered,
    )


def _report(args, engine, *, findings, suppressed, files, grandfathered) -> int:
    if args.json_output:
        document = {
            "schema": REPORT_SCHEMA,
            "files": files,
            "suppressed": suppressed,
            "grandfathered": grandfathered,
            "findings": [finding.to_dict() for finding in findings],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        notes = []
        if suppressed:
            notes.append(f"{suppressed} pragma-suppressed")
        if grandfathered:
            notes.append(f"{grandfathered} baselined")
        detail = f" ({', '.join(notes)})" if notes else ""
        print(
            f"{len(findings)} finding(s) across {files} file(s){detail}"
        )
    return 1 if findings else 0
