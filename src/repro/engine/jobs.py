"""Declarative mining jobs and the deterministic multi-job runner.

A :class:`MiningJob` is the *what* of a mining run — dataset reference,
target selection, prior, search configuration, iteration count — with no
execution state, so it round-trips through JSON (``repro.persist``) and
fingerprints stably for caching. :func:`run_jobs` is the *how*: it fans
a batch of jobs out over an :class:`~repro.engine.executor.Executor` and
returns results in submission order, which makes parameter sweeps and
per-target fan-outs (many datasets × many configs) one call.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import uuid
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.engine.cache import (
    BeliefCache,
    LRUCache,
    fingerprint,
    load_dataset_cached,
)
from repro.engine.executor import Executor, SerialExecutor, resolve_executor
from repro.errors import EngineError, JobPreempted
from repro.events import MiningObserver
from repro.interest.dl import DLParams
from repro.model.priors import Prior
from repro.obs import clock
from repro.obs.trace import TraceContext, activate
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.search.results import LocationPatternResult, MiningIteration

#: Pattern kinds a job may request, mirroring ``SubgroupDiscovery.step``.
JOB_KINDS = ("location", "spread")

#: Search strategies the job runner can execute. ``"beam"`` is the
#: paper's iterative subjective mining loop; ``"branch_bound"`` and
#: ``"quality_beam"`` are single-shot searches (one location pattern,
#: no belief-state iteration).
JOB_STRATEGIES = ("beam", "branch_bound", "quality_beam")

#: Sentinel distinguishing "deadline not passed" from an explicit None.
_UNSET_DEADLINE = object()


@dataclass(frozen=True, eq=True)
class MiningJob:
    """One self-contained mining run, specified declaratively.

    .. note::
        As a *public entry point* prefer :class:`repro.spec.MiningSpec`
        with :class:`repro.api.Workspace` — a spec converts losslessly
        to a job (:meth:`repro.spec.MiningSpec.to_job`) and back
        (:meth:`repro.spec.MiningSpec.from_job`). ``MiningJob`` remains
        the engine's execution unit.

    Attributes
    ----------
    dataset:
        Registry name understood by :func:`repro.datasets.load_dataset`.
    name:
        Human label for reports; defaults to ``dataset/kind`` plus a
        fingerprint prefix. Two jobs differing only in ``name`` are the
        same work (same :meth:`fingerprint`).
    dataset_seed / dataset_kwargs:
        Forwarded to the dataset generator.
    targets:
        Optional subset of target attributes to model.
    weights:
        Optional per-row case weights (one positive finite number per
        dataset row; frequency semantics — weight 2 ≡ the row twice).
        Applied to the loaded dataset before mining; fingerprint-relevant
        but omitted from :meth:`spec` when ``None`` so pre-weights
        fingerprints stay stable. The beam strategy only; the single-shot
        strategies reject weights.
    prior:
        Optional explicit background prior as ``{"mean": [...],
        "cov": [[...]]}``; ``None`` uses the empirical prior.
    kind / sparsity / n_iterations / seed:
        Mining-loop parameters, as in :class:`SubgroupDiscovery`.
    config:
        Beam-search settings.
    gamma / eta:
        Description-length weights.
    strategy:
        ``"beam"`` (default, the paper's iterative loop),
        ``"branch_bound"`` (provably optimal single location pattern of
        one target, empirical prior), or ``"quality_beam"`` (classical
        objective measure driving the same beam). The single-shot
        strategies require ``kind="location"`` and ``n_iterations=1``.
    measure:
        Interestingness measure; ``"si"`` for the subjective strategies,
        a :data:`repro.registry.MEASURES` key (e.g. ``"mean_shift"``)
        for ``"quality_beam"``.
    priority:
        Scheduling weight on a :class:`~repro.engine.service.MiningService`
        queue — higher runs first (default 0; ties broken by earliest
        deadline, then arrival order). Like ``name``, priority changes
        *when* the work runs, never *what* it computes, so it is
        excluded from :meth:`spec` and :meth:`fingerprint`.
    deadline:
        Optional queue-time budget in seconds. A job that has not been
        dispatched within ``deadline`` seconds of submission expires
        (terminal ``EXPIRED`` state; ``result()`` raises
        :class:`~repro.errors.DeadlineExpired`) instead of running work
        whose answer can no longer be useful. ``None`` (default) never
        expires. Excluded from the fingerprint, like ``priority``.
    """

    dataset: str
    name: str = ""
    dataset_seed: int = 0
    dataset_kwargs: dict = field(default_factory=dict)
    targets: tuple[str, ...] | None = None
    weights: tuple[float, ...] | None = None
    prior: dict | None = None
    kind: str = "location"
    sparsity: int | None = None
    n_iterations: int = 1
    seed: int = 0
    config: SearchConfig = SearchConfig()
    gamma: float = 0.1
    eta: float = 1.0
    strategy: str = "beam"
    measure: str = "si"
    priority: int = 0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if not self.dataset:
            raise EngineError("job needs a dataset name")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise EngineError(f"priority must be an int, got {self.priority!r}")
        if self.deadline is not None:
            try:
                deadline = float(self.deadline)
            except (TypeError, ValueError):
                raise EngineError(
                    f"deadline must be a number of seconds or None, "
                    f"got {self.deadline!r}"
                ) from None
            if not (deadline >= 0):  # also rejects NaN
                raise EngineError(
                    f"deadline must be >= 0 seconds or None, got {self.deadline!r}"
                )
            object.__setattr__(self, "deadline", deadline)
        if self.kind not in JOB_KINDS:
            raise EngineError(
                f"kind must be one of {JOB_KINDS}, got {self.kind!r}"
            )
        if self.n_iterations < 1:
            raise EngineError(
                f"n_iterations must be >= 1, got {self.n_iterations}"
            )
        if self.targets is not None:
            object.__setattr__(self, "targets", tuple(self.targets))
        if self.weights is not None:
            try:
                weights = tuple(float(w) for w in self.weights)
            except (TypeError, ValueError):
                raise EngineError(
                    f"weights must be a sequence of numbers, got {self.weights!r}"
                ) from None
            if not weights:
                raise EngineError("weights must be non-empty or None")
            if any(not np.isfinite(w) or w <= 0.0 for w in weights):
                raise EngineError("weights must be positive finite numbers")
            object.__setattr__(self, "weights", weights)
        if self.prior is not None and not (
            isinstance(self.prior, dict) and {"mean", "cov"} <= set(self.prior)
        ):
            raise EngineError("prior must be a dict with 'mean' and 'cov'")
        self._validate_strategy()
        if not self.name:
            object.__setattr__(
                self,
                "name",
                f"{self.dataset}/{self.kind}#{self.fingerprint()[:8]}",
            )

    def _validate_strategy(self) -> None:
        """Cross-field rules tying strategy, measure, and loop shape."""
        if self.strategy not in JOB_STRATEGIES:
            raise EngineError(
                f"strategy must be one of {JOB_STRATEGIES}, got {self.strategy!r}"
            )
        if self.strategy in ("beam", "branch_bound") and self.measure != "si":
            raise EngineError(
                f"strategy {self.strategy!r} scores with the subjective 'si' "
                f"measure; use strategy='quality_beam' for {self.measure!r}"
            )
        if self.strategy == "beam":
            return
        if self.strategy == "quality_beam":
            if self.measure == "si":
                raise EngineError(
                    "quality_beam needs a classical measure (e.g. 'mean_shift'); "
                    "use strategy='beam' for 'si'"
                )
            # Validate the measure eagerly (matching the spec layer) so a
            # typo'd batch entry fails at load time, not mid-fan-out.
            from repro.registry import MEASURES

            MEASURES.get(self.measure)
        if self.kind != "location":
            raise EngineError(
                f"strategy {self.strategy!r} mines location patterns only"
            )
        if self.n_iterations != 1:
            raise EngineError(
                f"strategy {self.strategy!r} is single-shot (no belief-state "
                f"iteration); n_iterations must be 1, got {self.n_iterations}"
            )
        if self.weights is not None:
            # The single-shot searches score with unweighted statistics;
            # silently dropping the weights would mislabel the results.
            raise EngineError(
                f"strategy {self.strategy!r} does not support case weights"
            )
        if self.prior is not None:
            # branch_bound builds its own fresh model and quality_beam
            # scores its result SI against the empirical model — neither
            # can honor a stated prior, so reject instead of ignoring it.
            raise EngineError(
                f"strategy {self.strategy!r} always uses the empirical prior"
            )

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def __hash__(self) -> int:
        # The generated dataclass hash would choke on the dict fields;
        # hashing the spec digest keeps frozen jobs usable in sets and
        # stays consistent with __eq__ (equal jobs share a fingerprint).
        return hash(self.fingerprint())

    def spec(self) -> dict:
        """The name-free canonical spec (what the job computes).

        ``weights`` appears only when set: pre-weights specs — and every
        fingerprint, cache key, and golden derived from them — stay
        byte-identical.
        """
        document = {
            "dataset": self.dataset,
            "dataset_seed": self.dataset_seed,
            "dataset_kwargs": self.dataset_kwargs,
            "targets": list(self.targets) if self.targets is not None else None,
            "prior": self.prior,
            "kind": self.kind,
            "sparsity": self.sparsity,
            "n_iterations": self.n_iterations,
            "seed": self.seed,
            "config": self.config.to_dict(),
            "gamma": self.gamma,
            "eta": self.eta,
            "strategy": self.strategy,
            "measure": self.measure,
        }
        if self.weights is not None:
            document["weights"] = list(self.weights)
        return document

    def fingerprint(self) -> str:
        """Stable digest of the spec; equal work ⇒ equal fingerprint.

        Memoized on the (frozen) instance: hot paths — service
        submission, cache keys, the server's job-listing endpoint —
        call this repeatedly, and the canonical-JSON walk is not free.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = fingerprint(self.spec())
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def with_name(self, name: str) -> "MiningJob":
        """The same work under a different label."""
        return replace(self, name=name)

    def with_schedule(
        self, *, priority: int | None = None, deadline: float | None = _UNSET_DEADLINE
    ) -> "MiningJob":
        """The same work under different scheduling terms.

        Omitted arguments keep the current values; pass ``deadline=None``
        explicitly to remove an existing deadline.
        """
        changes: dict = {}
        if priority is not None:
            changes["priority"] = priority
        if deadline is not _UNSET_DEADLINE:
            changes["deadline"] = deadline
        return replace(self, **changes) if changes else self

    def dl_params(self) -> DLParams:
        """The job's description-length weights as a DLParams."""
        return DLParams(gamma=self.gamma, eta=self.eta)

    def build_prior(self) -> Prior | None:
        """Materialize the explicit prior, or None for empirical."""
        if self.prior is None:
            return None
        return Prior(
            np.asarray(self.prior["mean"], dtype=float),
            np.asarray(self.prior["cov"], dtype=float),
        )


@dataclass(frozen=True)
class JobResult:
    """What one job mined, plus how long it took."""

    job: MiningJob
    iterations: tuple[MiningIteration, ...]
    elapsed_seconds: float

    def format(self) -> str:
        """Human-readable per-job report, one pattern per line."""
        lines = [
            f"[{self.job.name}] {self.job.dataset} ×{self.job.n_iterations} "
            f"({self.elapsed_seconds:.2f}s)"
        ]
        for iteration in self.iterations:
            lines.append(f"  {iteration.index}. {iteration.location}")
            if iteration.spread is not None:
                lines.append(f"     {iteration.spread}")
        return "\n".join(lines)


@dataclass(frozen=True)
class JobFailure:
    """A job that raised instead of mining (``run_jobs`` isolation)."""

    job: MiningJob
    error: str

    def format(self) -> str:
        """Human-readable one-line failure report."""
        return f"[{self.job.name}] FAILED: {self.error}"


def _single_shot_iteration(job: MiningJob, dataset) -> MiningIteration:
    """Run a non-iterative strategy; one location pattern, index 1.

    ``branch_bound`` returns the provably optimal location pattern of a
    single target (already SI-scored); ``quality_beam`` mines with a
    classical :data:`repro.registry.MEASURES` measure, then scores the
    winner's SI under a fresh empirical model so its result record is
    comparable with the subjective strategies (the setup of the paper's
    §IV comparison).
    """
    from repro.registry import MEASURES

    narrowed = (
        dataset.with_targets(list(job.targets)) if job.targets is not None else dataset
    )
    if job.strategy == "branch_bound":
        from repro.search.branch_bound import find_optimal_location

        if narrowed.n_targets != 1:
            raise EngineError(
                f"branch_bound needs exactly one target attribute; "
                f"{job.dataset!r} has {narrowed.n_targets} "
                f"({', '.join(narrowed.target_names)}) — select one via "
                f"targets=('name',) (the spec's dataset section, or "
                f"--targets on the CLI)"
            )
        result = find_optimal_location(
            narrowed, config=job.config, dl_params=job.dl_params()
        )
        best = result.best
        if best is None:
            raise EngineError(
                "branch-and-bound found no admissible subgroup; relax "
                "min_coverage or max_coverage_fraction"
            )
        observed = best.observed_mean
        score = best.score
    else:  # quality_beam
        from repro.baselines.beam import QualityBeamSearch
        from repro.interest.si import score_location
        from repro.lang.refinement import RefinementOperator
        from repro.model.background import BackgroundModel

        operator = RefinementOperator(
            narrowed,
            n_split_points=job.config.n_split_points,
            strategy=job.config.split_strategy,
            attributes=job.config.attributes,
        )
        quality = MEASURES.get(job.measure)(narrowed.targets)
        search = QualityBeamSearch(operator, quality, config=job.config)
        outcome = search.run()
        best = outcome.best
        if best is None:
            raise EngineError(
                f"quality beam ({job.measure}) found no admissible subgroup"
            )
        mask = np.zeros(narrowed.n_rows, dtype=bool)
        mask[best.indices] = True
        observed = narrowed.targets[mask].mean(axis=0)
        score = score_location(
            BackgroundModel.from_targets(narrowed.targets),
            mask,
            observed,
            len(best.description),
            params=job.dl_params(),
        )
    location = LocationPatternResult(
        description=best.description,
        indices=best.indices,
        mean=observed,
        score=score,
        coverage=best.indices.shape[0] / narrowed.n_rows,
    )
    return MiningIteration(index=1, location=location)


def run_job(
    job: MiningJob,
    *,
    executor: Executor | None = None,
    dataset_cache: LRUCache | None = None,
    observer: MiningObserver | None = None,
    belief_cache: BeliefCache | None = None,
    should_yield=None,
) -> JobResult:
    """Execute one job start-to-finish and return its result.

    ``executor`` parallelizes *inside* the job (beam levels, spread
    restarts); leave it serial when the jobs themselves are fanned out.
    The single-shot strategies are sequential algorithms and ignore it.
    ``observer`` receives candidate/iteration events live (beam
    strategy) or the single iteration of a single-shot strategy.
    ``belief_cache`` lets the beam strategy's iterative loop replay
    belief-state prefixes it shares with earlier runs (see
    :class:`~repro.engine.cache.BeliefCache`); the single-shot
    strategies have no belief state and ignore it.
    ``should_yield`` (a zero-argument callable) enables cooperative
    preemption of the beam strategy: it is polled *between* iterations,
    and a truthy answer raises :class:`~repro.errors.JobPreempted`.
    Completed iterations are already in the belief cache at that point,
    so a re-run replays them for free — preempting a job only ever
    costs the iteration in flight.
    """
    dataset = load_dataset_cached(
        job.dataset,
        seed=job.dataset_seed,
        cache=dataset_cache,
        **job.dataset_kwargs,
    )
    if job.weights is not None:
        if len(job.weights) != dataset.n_rows:
            raise EngineError(
                f"job carries {len(job.weights)} weights but dataset "
                f"{job.dataset!r} has {dataset.n_rows} rows"
            )
        # A fresh derived dataset: the cached (shared) instance is never
        # mutated, so unweighted jobs keep hitting the same object.
        dataset = dataset.with_weights(np.asarray(job.weights, dtype=float))
    started = clock.perf_counter()
    if job.strategy == "beam":
        miner = SubgroupDiscovery(
            dataset,
            targets=list(job.targets) if job.targets is not None else None,
            prior=job.build_prior(),
            config=job.config,
            dl_params=job.dl_params(),
            seed=job.seed,
            executor=executor or SerialExecutor(),
            observer=observer,
            belief_cache=belief_cache,
        )
        if should_yield is None:
            iterations = miner.run(
                job.n_iterations, kind=job.kind, sparsity=job.sparsity
            )
        else:
            # Drive the loop step-by-step so the scheduler can reclaim
            # the worker at iteration boundaries. The first iteration
            # always runs: a job that yields before doing any work could
            # starve forever under a persistently contended pool.
            iterations = []
            for n in range(job.n_iterations):
                if n > 0 and should_yield():
                    raise JobPreempted(
                        f"job {job.name!r} preempted after "
                        f"{n}/{job.n_iterations} iterations"
                    )
                iterations.append(miner.step(kind=job.kind, sparsity=job.sparsity))
    else:
        iterations = [_single_shot_iteration(job, dataset)]
        if observer is not None:
            observer.on_iteration(iterations[0])
    return JobResult(
        job=job,
        iterations=tuple(iterations),
        elapsed_seconds=clock.perf_counter() - started,
    )


def _run_job_task(job: MiningJob) -> JobResult:
    """Module-level job entry point so process pools can import it."""
    return run_job(job)


class FileYieldFlag:
    """A preemption flag that crosses process boundaries.

    The thread backend preempts with a ``threading.Event``; a process
    pool cannot share one. This flag signals through the existence of a
    marker file instead: :meth:`set` touches it, :meth:`is_set` is one
    ``os.path.exists`` — cheap enough to poll at iteration boundaries —
    and the object pickles by value (it is just a path), so it rides
    into a worker process alongside the job. The *scheduler* owns the
    file's lifetime: :meth:`dispose` unlinks it once the task ends,
    whatever the outcome.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path or os.path.join(
            tempfile.gettempdir(), f"repro-yield-{uuid.uuid4().hex}.flag"
        )

    def set(self) -> None:
        """Request preemption (idempotent)."""
        with open(self.path, "wb"):
            pass

    def is_set(self) -> bool:
        """True once preemption was requested (a cheap stat call)."""
        return os.path.exists(self.path)

    def dispose(self) -> None:
        """Remove the marker file (idempotent; missing is fine)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - temp-dir races are benign
            pass


def run_job_with_workers(
    job: MiningJob,
    workers: int | None,
    start_method: str | None = None,
    shared_memory: bool = False,
    belief_cache: BeliefCache | None = None,
    observer: MiningObserver | None = None,
    yield_event=None,
    belief_handle=None,
    trace=None,
    dist_workers=None,
) -> JobResult:
    """:func:`run_job` with the executor resolved from a worker count.

    Module-level and picklable, so a service pool can honor a spec's
    ``executor.workers`` (plus ``start_method`` and ``shared_memory``)
    inside its worker processes (nested pools are legal; the determinism
    contract keeps the results identical at any count over any
    transport). The executor is closed afterwards so a shared-memory
    run's persistent pool never outlives its job. ``belief_cache`` and
    ``observer`` are in-process state: the service's thread/serial
    backends thread theirs through here (observer callbacks then fire
    from the worker thread), while its process backend leaves them
    ``None`` — it can instead ship a picklable ``belief_handle``
    (:meth:`repro.engine.cache.BeliefCache.handle`) that each worker
    process resolves into its own cache over the shared on-disk spill.
    ``yield_event`` is the preemption flag, polled between iterations
    (see :func:`run_job`): a ``threading.Event`` from the thread
    backend, or a :class:`FileYieldFlag` from the process backend —
    anything with a cheap ``is_set()`` works.
    ``trace`` is an optional :class:`~repro.obs.trace.TraceContext` (or
    its wire-dict form, which is how the service's process backend ships
    it): it is activated for the duration of the run so engine-internal
    phase spans attach to the submitting job's trace. It never reaches
    the miner's inputs — results are bit-identical with or without it.
    ``dist_workers`` (a sequence of worker-daemon URLs) routes the run
    through a :class:`~repro.dist.DistExecutor` instead of a local pool,
    so a submitted job's trace extends across the remote shards.
    """
    if belief_cache is None and belief_handle is not None:
        belief_cache = belief_handle.resolve()
    ctx = trace if isinstance(trace, TraceContext) else TraceContext.from_wire(trace)
    executor = resolve_executor(
        workers,
        start_method=start_method,
        shared_memory=shared_memory,
        dist_workers=dist_workers,
    )
    scope = activate(ctx) if ctx is not None else contextlib.nullcontext()
    try:
        with scope:
            return run_job(
                job,
                executor=executor,
                belief_cache=belief_cache,
                observer=observer,
                should_yield=yield_event.is_set if yield_event is not None else None,
            )
    finally:
        executor.close()


def _run_job_isolated(job: MiningJob) -> JobResult | JobFailure:
    """Like :func:`_run_job_task`, but a raising job becomes a record."""
    try:
        return run_job(job)
    except Exception as exc:
        return JobFailure(job=job, error=f"{type(exc).__name__}: {exc}")


def run_jobs(
    jobs: Iterable[MiningJob],
    *,
    workers: int | None = None,
    executor: Executor | None = None,
    return_failures: bool = False,
) -> list:
    """Run a batch of jobs, returning results in submission order.

    Jobs are independent, so execution order is irrelevant to the output:
    the same batch produces the same patterns at any worker count. Pass
    either a ``workers`` count or an explicit ``executor``.

    By default the first failing job raises and the batch's other
    results are lost; with ``return_failures=True`` each failing job
    yields a :class:`JobFailure` in its slot instead, so one bad spec
    cannot discard forty good results.
    """
    batch: Sequence[MiningJob] = list(jobs)
    for job in batch:
        if not isinstance(job, MiningJob):
            raise EngineError(f"expected MiningJob, got {type(job).__name__}")
    if not batch:
        return []
    task = _run_job_isolated if return_failures else _run_job_task
    if executor is None:
        executor = resolve_executor(workers)
    if executor.parallelism <= 1:
        # Serial path shares one dataset cache across the whole batch.
        return [task(job) for job in batch]
    return executor.map(task, batch)
