"""Fig. 3: SI of the true descriptions under label-flip distortion.

The paper's claim: the planted patterns remain recoverable up to a flip
probability of ~0.22 (partially to 0.25), against a flat random-subgroup
baseline.
"""

from repro.experiments.synthetic_exp import run_fig3


def bench_fig3_noise_robustness(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig3, args=(0,), kwargs={"n_baseline_draws": 50},
        rounds=1, iterations=1,
    )
    save_result(
        "fig03_noise_robustness",
        result.format()
        + f"\nrecovery threshold: {result.recovery_threshold():.3f} "
        "(paper: ~0.22, partial to 0.25)",
    )
    assert 0.10 <= result.recovery_threshold() <= 0.33
