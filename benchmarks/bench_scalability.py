"""Scalability (§III-E): runtime is linear in the number of data points.

The paper: "for both algorithms, the runtime is linear in the number of
data points". We scale the synthetic generator and time (a) one beam
search and (b) one location+spread model update, asserting sub-quadratic
growth (timer noise makes exact linearity too strict to assert).
"""

import numpy as np

from repro.datasets.synthetic import make_synthetic
from repro.model.background import BackgroundModel
from repro.model.patterns import LocationConstraint, SpreadConstraint
from repro.report.tables import format_table
from repro.search.miner import SubgroupDiscovery
from repro.utils.timer import Stopwatch

SCALES = (1, 2, 4, 8)


def measure(seed: int = 0):
    rows = []
    for scale in SCALES:
        dataset = make_synthetic(
            seed, n_background=500 * scale, cluster_size=40 * scale
        )
        n = dataset.n_rows

        search_watch = Stopwatch()
        with search_watch:
            SubgroupDiscovery(dataset, seed=seed).search_locations()

        model = BackgroundModel.from_targets(dataset.targets)
        idx = np.arange(40 * scale)
        update_watch = Stopwatch()
        with update_watch:
            model.assimilate(LocationConstraint.from_data(dataset.targets, idx))
            model.assimilate(
                SpreadConstraint.from_data(
                    dataset.targets, idx, np.array([1.0, 0.0])
                )
            )
        rows.append((n, search_watch.elapsed, update_watch.elapsed))
    return rows


def bench_scalability(benchmark, save_result):
    rows = benchmark.pedantic(measure, args=(0,), rounds=1, iterations=1)
    table = format_table(
        ["n rows", "beam search (s)", "model update (s)"],
        rows,
        floatfmt=".4f",
        title="Scalability: runtime vs number of data points",
    )
    save_result("scalability", table)
    # 8x the data must cost far less than 64x the time (sub-quadratic).
    n_ratio = rows[-1][0] / rows[0][0]
    time_ratio = rows[-1][1] / max(rows[0][1], 1e-9)
    assert time_ratio < n_ratio**2
