"""End-to-end tests of the full mining pipeline across datasets."""

import numpy as np
import pytest

from repro.experiments.common import jaccard, mask_from_indices
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery


class TestSyntheticEndToEnd:
    def test_three_spread_iterations_recover_planted_clusters(
        self, synthetic_dataset
    ):
        miner = SubgroupDiscovery(synthetic_dataset, seed=0)
        iterations = miner.run(3, kind="spread")
        cluster = np.asarray(synthetic_dataset.metadata["cluster"])
        matched = set()
        for iteration in iterations:
            found = mask_from_indices(
                iteration.location.indices, synthetic_dataset.n_rows
            )
            scores = {k: jaccard(found, cluster == k) for k in (1, 2, 3)}
            best = max(scores, key=scores.get)
            assert scores[best] > 0.9
            matched.add(best)
        assert matched == {1, 2, 3}

    def test_model_residuals_stay_tiny_through_iterations(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset, seed=0)
        miner.run(3, kind="spread")
        # Planted clusters are disjoint, so all six constraints still hold.
        assert miner.model.max_residual() < 1e-6

    def test_fourth_iteration_is_much_less_interesting(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset, seed=0)
        iterations = miner.run(4, kind="location")
        sis = [it.location.si for it in iterations]
        assert sis[3] < 0.3 * sis[0]

    def test_block_growth_bounded(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset, seed=0)
        miner.run(3, kind="spread")
        # Three disjoint extensions, two constraints each: 4 blocks.
        assert miner.model.n_blocks <= 4


class TestCrossDatasetSmoke:
    """One mining step must work on every bundled dataset."""

    @pytest.mark.parametrize(
        "fixture_name",
        ["crime_dataset", "socio_dataset", "water_dataset"],
    )
    def test_one_location_step(self, request, fixture_name):
        dataset = request.getfixturevalue(fixture_name)
        miner = SubgroupDiscovery(dataset, seed=0)
        iteration = miner.step()
        assert iteration.location.si > 0
        assert 0 < iteration.location.size < dataset.n_rows

    def test_spread_step_socio(self, socio_dataset):
        miner = SubgroupDiscovery(socio_dataset, seed=0)
        iteration = miner.step(kind="spread", sparsity=2)
        assert iteration.spread is not None
        assert (np.abs(iteration.spread.direction) > 1e-12).sum() == 2

    def test_spread_step_water(self, water_dataset):
        miner = SubgroupDiscovery(water_dataset, seed=0)
        iteration = miner.step(kind="spread")
        assert iteration.spread is not None
        assert np.linalg.norm(iteration.spread.direction) == pytest.approx(1.0)


class TestTimeBudget:
    def test_budgeted_search_still_returns(self, crime_dataset):
        config = SearchConfig(time_budget_seconds=1.0)
        miner = SubgroupDiscovery(crime_dataset, config=config, seed=0)
        result = miner.search_locations()
        # Depth 1 finishes within the budget; the search may stop early
        # but must return a usable log.
        assert result.best is not None


class TestRefitMatchesIncrementalMining:
    def test_refit_reproduces_mined_state(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset, seed=0)
        miner.run(2, kind="spread")
        refitted = miner.model.copy()
        refitted.refit(list(miner.model.constraints))
        np.testing.assert_allclose(
            refitted.point_means(), miner.model.point_means(), atol=1e-7
        )
