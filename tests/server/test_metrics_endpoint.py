"""The server's observability surface: /metrics, /health, and the CLIs.

Satellite acceptance for the observability PR: EventHub slow-consumer
drops and SSE resume gaps are visible through the scraped metrics, the
``GET /metrics`` endpoint serves valid Prometheus text whose counters
only go up, and ``sisd top`` / ``sisd admin`` work against a live
server.
"""

import asyncio
import json
from http.client import HTTPConnection
from urllib.parse import urlsplit

import pytest

from repro import cli
from repro.errors import ObsError
from repro.obs.console import fetch_text, post_json, scrape
from repro.obs.instruments import METRICS, SSE_RESUME_GAPS
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, parse_prometheus
from repro.server.hub import EventHub
from repro.spec import MiningSpec


def fast_spec(**overrides):
    kwargs = dict(n_iterations=1, beam_width=6, max_depth=2, top_k=10)
    kwargs.update(overrides)
    return MiningSpec.build("synthetic", **kwargs)


def _metric_total(samples, name):
    return sum(value for _, value in samples.get(name, ()))


class TestEventHubMetrics:
    def test_slow_consumer_drops_surface_in_the_scrape(self):
        async def main():
            hub = EventHub(queue_maxsize=2)
            hub.bind(asyncio.get_running_loop())
            sub = hub.subscribe()  # never drained: the slow consumer
            for i in range(10):
                hub.publish({"n": i})
            # Fan-out runs as loop callbacks; yield once so the already-
            # scheduled deliveries (and their drops) all land.
            await asyncio.sleep(0)
            stats = hub.stats()
            samples = parse_prometheus(METRICS.render())
            hub.close()
            sub.close()
            return stats, samples

        stats, samples = asyncio.run(main())
        assert stats["dropped"] == 8  # 10 published into a queue of 2
        assert _metric_total(samples, "sisd_events_dropped") == 8.0
        assert _metric_total(samples, "sisd_events_published") == 10.0

    def test_resume_gap_counts_once_per_stale_reconnect(self):
        async def main():
            hub = EventHub(history=3)
            hub.bind(asyncio.get_running_loop())
            for i in range(10):
                hub.publish({"n": i})
            before = SSE_RESUME_GAPS.value
            fresh = hub.subscribe(since=9)  # newest retained: no gap
            assert SSE_RESUME_GAPS.value == before
            stale = hub.subscribe(since=2)  # events 3..7 already dropped
            assert SSE_RESUME_GAPS.value == before + 1
            lost_all = hub.subscribe(since=None)
            assert SSE_RESUME_GAPS.value == before + 1
            for sub in (fresh, stale, lost_all):
                sub.close()
            hub.close()

        asyncio.run(main())

    def test_closed_hub_stops_collecting(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            hub.publish({"n": 0})
            hub.close()
            # The collector is deregistered: rendering consults the
            # remaining collectors only and must not raise.
            METRICS.render()

        asyncio.run(main())


class TestMetricsEndpoint:
    def test_serves_prometheus_text_without_credentials(self, server_handle):
        parts = urlsplit(server_handle.url)
        conn = HTTPConnection(parts.hostname, parts.port, timeout=10)
        try:
            conn.request("GET", "/metrics")  # no Authorization header
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            assert response.status == 200
            assert response.getheader("Content-Type") == PROMETHEUS_CONTENT_TYPE
        finally:
            conn.close()
        samples = parse_prometheus(body)  # parses cleanly end to end
        assert "sisd_http_requests_total" in samples
        assert "sisd_queue_depth" in samples

    def test_families_present_and_counters_monotone(self, remote, server_handle):
        remote.mine(fast_spec(seed=11))
        first = scrape(server_handle.url)
        for family in (
            "sisd_jobs_submitted_total",
            "sisd_jobs_finished_total",
            "sisd_http_requests_total",
            "sisd_events_published",
            "sisd_queue_depth",
            "sisd_result_cache_hit_ratio",
        ):
            assert family in first, f"family {family} missing from /metrics"
        assert _metric_total(first, "sisd_jobs_submitted_total") >= 1.0
        remote.mine(fast_spec(seed=12))
        second = scrape(server_handle.url)
        for family in (
            "sisd_jobs_submitted_total",
            "sisd_jobs_finished_total",
            "sisd_http_requests_total",
        ):
            assert _metric_total(second, family) >= _metric_total(
                first, family
            ), f"counter {family} went down between scrapes"

    def test_job_routes_collapse_ids(self, remote, server_handle):
        remote.mine(fast_spec(seed=13))
        samples = scrape(server_handle.url)
        routes = {
            labels["route"]
            for labels, _ in samples["sisd_http_requests_total"]
        }
        assert "/jobs" in routes
        assert any(route.startswith("/jobs/{id}") for route in routes)
        assert not any("job-" in route for route in routes)

    def test_health_advertises_the_observability_surface(self, server_handle):
        document = json.loads(fetch_text(server_handle.url, "/health"))
        observability = document["observability"]
        assert observability["metrics"] == "/metrics"
        assert observability["spans_retained"] >= 0


class TestAdminEndpoints:
    def test_compact_without_a_store_is_a_conflict(self, server_handle):
        with pytest.raises(ObsError, match="409"):
            post_json(server_handle.url, "/admin/compact")


class TestConsoleClis:
    def test_sisd_top_once_renders_a_frame(self, remote, server_handle, capsys):
        remote.mine(fast_spec(seed=14))
        assert cli.main(["top", server_handle.url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "sisd top" in out
        assert "jobs submitted" in out

    def test_sisd_admin_usage_renders_tenants(self, server_handle, capsys):
        assert cli.main(["admin", "usage", server_handle.url]) == 0
        assert "tenant usage" in capsys.readouterr().out
