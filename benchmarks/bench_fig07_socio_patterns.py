"""Fig. 7: the top three location patterns on the socio-economics data.

Paper: (a) few children -> East + student cities, Left strong;
(b) many middle-aged -> big cities, Greens strong; (c) many children ->
complement of (a), Left weak.
"""

from repro.experiments.socio_exp import run_fig7


def bench_fig7_socio_patterns(benchmark, save_result):
    result = benchmark.pedantic(run_fig7, args=(0,), rounds=3, iterations=1)
    save_result("fig07_socio_patterns", result.format())
    first = result.patterns[0]
    assert first.region_shares["east"] > 0.9
    assert first.vote_means["left_2009"] > first.overall_vote_means["left_2009"] + 10
