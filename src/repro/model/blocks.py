"""Coarsest partition of rows by update history.

Footnote 2 of the paper: two data points have identical background
parameters iff they have been inside exactly the same set of assimilated
pattern extensions. The number of distinct parameter pairs therefore
stays small (at most ``2^t`` after ``t`` patterns, in practice close to
``t + 1``), and every model computation can be done per *block* instead
of per point. :class:`BlockPartition` maintains that partition.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class BlockPartition:
    """Partition of ``range(n)`` refined by successive boolean masks.

    Blocks are identified by integer labels ``0..n_blocks-1``. The
    partition starts as a single block 0 covering all rows; each
    :meth:`split` refines it against a mask so that afterwards every
    block lies entirely inside or entirely outside the mask.
    """

    #: The per-row label array scales with the dataset; the engine's
    #: shared-memory transport (:func:`repro.engine.shm.publish`) may
    #: ship it as a zero-copy segment instead of pickled bytes.
    __shm_arrays__ = ("_labels",)

    def __init__(self, n_rows: int) -> None:
        if n_rows <= 0:
            raise ModelError(f"n_rows must be positive, got {n_rows}")
        self._labels = np.zeros(n_rows, dtype=np.int64)
        self._n_blocks = 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return int(self._labels.shape[0])

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def labels(self) -> np.ndarray:
        """Read-only view of the per-row block labels."""
        view = self._labels.view()
        view.setflags(write=False)
        return view

    def members(self, block: int) -> np.ndarray:
        """Row indices belonging to ``block``."""
        self._check_block(block)
        return np.flatnonzero(self._labels == block)

    def sizes(self) -> np.ndarray:
        """Array of block sizes, indexed by block label."""
        return np.bincount(self._labels, minlength=self._n_blocks)

    def counts_in(self, mask: np.ndarray) -> np.ndarray:
        """Per-block number of rows inside the boolean ``mask``."""
        mask = self._check_mask(mask)
        return np.bincount(self._labels[mask], minlength=self._n_blocks)

    def blocks_in(self, mask: np.ndarray) -> np.ndarray:
        """Labels of blocks with at least one row inside ``mask``."""
        mask = self._check_mask(mask)
        return np.unique(self._labels[mask])

    def is_aligned(self, mask: np.ndarray) -> bool:
        """True if every block is entirely inside or outside ``mask``."""
        mask = self._check_mask(mask)
        counts = self.counts_in(mask)
        sizes = self.sizes()
        return bool(np.all((counts == 0) | (counts == sizes)))

    # ------------------------------------------------------------------ #
    # Refinement
    # ------------------------------------------------------------------ #
    def split(self, mask: np.ndarray) -> dict[int, int]:
        """Refine the partition against ``mask``.

        Every block straddling the mask boundary is split in two: rows
        inside the mask keep the old label; rows outside get a fresh
        label. Keeping the inside part on the old label means callers
        that are about to update "the blocks inside the extension" can
        reuse labels obtained before the split.

        Returns
        -------
        dict[int, int]
            Mapping ``old_label -> new_label`` for the *outside* halves
            of blocks that were split; the new block must inherit (copy)
            the old block's parameters.
        """
        mask = self._check_mask(mask)
        sizes = self.sizes()
        counts = self.counts_in(mask)
        created: dict[int, int] = {}
        for block in np.flatnonzero((counts > 0) & (counts < sizes)):
            new_label = self._n_blocks
            outside = (~mask) & (self._labels == block)
            self._labels[outside] = new_label
            self._n_blocks += 1
            created[int(block)] = new_label
        return created

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    def _check_block(self, block: int) -> None:
        if not 0 <= block < self._n_blocks:
            raise ModelError(f"block {block} out of range [0, {self._n_blocks})")

    def _check_mask(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self.n_rows,):
            raise ModelError(
                f"mask must be a boolean array of shape ({self.n_rows},), "
                f"got dtype {mask.dtype} shape {mask.shape}"
            )
        return mask
