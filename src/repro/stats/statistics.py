"""The pattern statistics of §II-A: subgroup location and spread.

Eq. 1: ``f_I(Y) = sum_{i in I} y_i / |I|`` — the subgroup mean vector.
Eq. 2: ``g_I^w(Y) = sum_{i in I} ((y_i - yhat_I)' w)^2 / |I|`` — the
spread around the *empirical* subgroup mean along a unit direction
``w``. Note the normalization by ``|I|`` (not ``|I| - 1``): the paper's
statistic is the mean squared projection, and the model updates and the
chi-squared machinery all assume exactly that normalization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.utils.validation import check_unit_vector


def _subgroup(targets: np.ndarray, indices) -> np.ndarray:
    targets = np.asarray(targets, dtype=float)
    if targets.ndim == 1:
        targets = targets[:, None]
    arr = np.asarray(indices)
    if arr.dtype == bool:
        if arr.shape[0] != targets.shape[0]:
            raise ModelError("boolean mask length does not match targets")
        sub = targets[arr]
    else:
        sub = targets[arr.astype(np.int64)]
    if sub.shape[0] == 0:
        raise ModelError("subgroup is empty")
    return sub


def subgroup_mean(targets: np.ndarray, indices) -> np.ndarray:
    """Eq. 1: the location statistic ``f_I`` evaluated on the data."""
    return _subgroup(targets, indices).mean(axis=0)


def subgroup_cov(targets: np.ndarray, indices) -> np.ndarray:
    """Empirical covariance of the subgroup (1/|I| normalization).

    This is the matrix ``S`` with ``g_I^w = w' S w``; the spread search
    optimizes ``w`` against it.
    """
    sub = _subgroup(targets, indices)
    centered = sub - sub.mean(axis=0)
    return (centered.T @ centered) / sub.shape[0]


def subgroup_spread(
    targets: np.ndarray,
    indices,
    direction: np.ndarray,
    *,
    center: np.ndarray | None = None,
) -> float:
    """Eq. 2: the spread statistic ``g_I^w`` evaluated on the data.

    ``center`` defaults to the empirical subgroup mean (the paper's
    definition); passing it explicitly supports evaluating the statistic
    a pattern was originally communicated with.
    """
    sub = _subgroup(targets, indices)
    direction = check_unit_vector(direction, "direction")
    if direction.shape[0] != sub.shape[1]:
        raise ModelError(
            f"direction has dim {direction.shape[0]}, targets have {sub.shape[1]}"
        )
    if center is None:
        center = sub.mean(axis=0)
    projections = (sub - np.asarray(center, dtype=float)) @ direction
    return float(np.mean(projections**2))
