"""Integration test: the Fig. 1 running example."""

import numpy as np
import pytest

from repro.experiments.crime_example import run_fig1


@pytest.fixture(scope="module")
def fig1():
    return run_fig1(seed=0)


class TestFig1:
    def test_pattern_is_pct_illeg_upper_tail(self, fig1):
        """The paper's top pattern: PctIlleg >= 0.39."""
        assert "pct_illeg >=" in fig1.intention

    def test_coverage_close_to_paper(self, fig1):
        assert 0.12 <= fig1.coverage <= 0.30  # paper: 20.5%

    def test_means_close_to_paper(self, fig1):
        assert 0.20 <= fig1.overall_mean <= 0.30   # paper: 0.24
        assert 0.42 <= fig1.subgroup_mean <= 0.62  # paper: 0.53
        assert fig1.subgroup_mean > 1.7 * fig1.overall_mean

    def test_si_strongly_positive(self, fig1):
        assert fig1.si > 50.0

    def test_density_series_shapes(self, fig1):
        assert fig1.grid.shape == fig1.density_full.shape
        assert fig1.grid.shape == fig1.density_within_subgroup.shape

    def test_share_is_coverage_scaled(self, fig1):
        np.testing.assert_allclose(
            fig1.density_subgroup_share,
            fig1.coverage * fig1.density_within_subgroup,
            rtol=1e-9,
        )

    def test_subgroup_density_shifted_right(self, fig1):
        mode_full = fig1.grid[np.argmax(fig1.density_full)]
        mode_subgroup = fig1.grid[np.argmax(fig1.density_within_subgroup)]
        assert mode_subgroup > mode_full

    def test_format_renders(self, fig1):
        text = fig1.format()
        assert "coverage" in text
        assert "paper" in text
