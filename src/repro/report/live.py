"""Render mining events as they happen (the CLI's streaming printer).

:class:`LiveReporter` is a :class:`~repro.events.MiningObserver` that
writes each finished iteration — and optionally every scored candidate —
to a text stream the moment the event fires. Attached to
:meth:`repro.api.Workspace.stream` it turns the terminal into a live
view of the mining dialogue; anything file-like works, so it also
doubles as a plain-text event log.
"""

from __future__ import annotations

import sys
from typing import IO

from repro.events import MiningObserver


class LiveReporter(MiningObserver):
    """Print iterations (and optionally candidates) as they arrive.

    Parameters
    ----------
    stream:
        Where to write; defaults to ``sys.stdout`` (resolved at event
        time, so pytest's capture and late redirections both work).
    candidates:
        Also print a one-line entry per scored beam candidate — very
        chatty (hundreds of lines per level); off by default.
    """

    def __init__(self, stream: IO | None = None, *, candidates: bool = False) -> None:
        self._stream = stream
        self.candidates = candidates

    def _out(self) -> IO:
        return self._stream if self._stream is not None else sys.stdout

    def on_candidate(self, candidate) -> None:
        """One line per scored candidate, when ``candidates`` is on."""
        if self.candidates:
            print(f"  ? {candidate}", file=self._out())

    def on_iteration(self, iteration) -> None:
        """The CLI's per-iteration block, printed as the step finishes."""
        out = self._out()
        print(f"--- iteration {iteration.index} ---", file=out)
        print(iteration.location, file=out)
        if iteration.spread is not None:
            print(iteration.spread, file=out)

    def on_job(self, result) -> None:
        """One closing line with the job name and wall-clock time."""
        print(
            f"[{result.job.name}] done in {result.elapsed_seconds:.2f}s",
            file=self._out(),
        )

    def on_job_failed(self, job, error) -> None:
        """One closing line naming the job and what went wrong."""
        print(
            f"[{job.name}] FAILED: {type(error).__name__}: {error}",
            file=self._out(),
        )

    def on_schedule(self, event) -> None:
        """One line per scheduling decision of a service queue."""
        print(f"~ {event} [{event.pending} pending]", file=self._out())
