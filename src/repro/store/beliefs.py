"""Content-addressed on-disk spill of belief-prefix cache entries.

The paper's mining loop is sequential — each shown pattern updates the
background model — so the :class:`~repro.engine.cache.BeliefCache`
chain-hash keys identify one *belief state reached by one exact
history*. That makes the entries perfect content-addressed objects: the
key already commits to the bytes, so an entry file can be written once,
never rewritten, and shared by every process that derives the same key.

:class:`BeliefStore` persists :class:`~repro.engine.cache.CachedStep`
entries as single files::

    <root>/<key[:2]>/<key>.blf

    magic "SISDBLF1" | u64 header length | JSON header | pad | arrays

The JSON header holds the step document with every numpy array replaced
by an ``{"__array__": i}`` reference into an array directory
(dtype/shape/offset), and the raw array bytes follow 64-byte aligned —
so :meth:`get` reads the header and **memory-maps** each array payload
(``numpy.memmap``, read-only) instead of copying it onto the heap.
Warm prefixes over large datasets load at page-cache speed, and N
worker processes replaying the same prefix share one physical copy.

Writes are atomic (temp file + ``os.replace``) and idempotent: two
processes racing to store the same key both win, bit-identically.

:class:`BeliefStoreHandle` is the picklable face of a store directory:
the service ships it to process-backend workers, and each worker
resolves it (once per process) into a fresh
:class:`~repro.engine.cache.BeliefCache` spilling to the shared
directory — which is how warm prefixes cross the process boundary that
the in-memory cache cannot.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.engine.cache import CachedStep
from repro.errors import EngineError
from repro.interest.si import PatternScore
from repro.model.patterns import LocationConstraint, SpreadConstraint
from repro.persist import description_from_dict, description_to_dict
from repro.search.results import (
    LocationPatternResult,
    MiningIteration,
    SpreadPatternResult,
)

__all__ = ["BeliefStore", "BeliefStoreHandle"]

_MAGIC = b"SISDBLF1"
_ALIGN = 64
_SCHEMA = 1


# --------------------------------------------------------------------- #
# Array-preserving (de)serialization of CachedStep
#
# repro.persist's result/constraint codecs turn arrays into JSON lists —
# exactly what the mmap path must avoid. These mirrors keep the same
# document shapes but swap every ndarray for a directory reference.
# --------------------------------------------------------------------- #
class _ArrayDirectory:
    """Collects arrays during encoding, hands out ``__array__`` refs."""

    def __init__(self) -> None:
        self.arrays: list[np.ndarray] = []

    def ref(self, value) -> dict:
        self.arrays.append(np.ascontiguousarray(value))
        return {"__array__": len(self.arrays) - 1}


def _location_doc(result: LocationPatternResult, arrays: _ArrayDirectory) -> dict:
    return {
        "description": description_to_dict(result.description),
        "indices": arrays.ref(result.indices),
        "mean": arrays.ref(result.mean),
        "ic": result.score.ic,
        "dl": result.score.dl,
        "coverage": result.coverage,
    }


def _spread_doc(result: SpreadPatternResult, arrays: _ArrayDirectory) -> dict:
    return {
        "description": description_to_dict(result.description),
        "indices": arrays.ref(result.indices),
        "direction": arrays.ref(result.direction),
        "variance": result.variance,
        "center": arrays.ref(result.center),
        "ic": result.score.ic,
        "dl": result.score.dl,
    }


def _constraint_doc(constraint, arrays: _ArrayDirectory) -> dict:
    if isinstance(constraint, LocationConstraint):
        return {
            "type": "location",
            "indices": arrays.ref(constraint.indices),
            "mean": arrays.ref(constraint.mean),
        }
    if isinstance(constraint, SpreadConstraint):
        return {
            "type": "spread",
            "indices": arrays.ref(constraint.indices),
            "direction": arrays.ref(constraint.direction),
            "variance": constraint.variance,
            "center": arrays.ref(constraint.center),
        }
    raise EngineError(
        f"cannot spill constraint type {type(constraint).__name__}"
    )


def _encode_entry(entry: CachedStep) -> tuple[dict, list[np.ndarray]]:
    arrays = _ArrayDirectory()
    iteration = entry.iteration
    doc = {
        "iteration": {
            "index": iteration.index,
            "location": _location_doc(iteration.location, arrays),
            "spread": (
                _spread_doc(iteration.spread, arrays)
                if iteration.spread is not None
                else None
            ),
        },
        "constraints": [
            _constraint_doc(constraint, arrays) for constraint in entry.constraints
        ],
        "rng_state": entry.rng_state,
    }
    return doc, arrays.arrays


def _decode_entry(doc: dict, arrays: list[np.ndarray]) -> CachedStep:
    def arr(node: dict) -> np.ndarray:
        return np.asarray(arrays[node["__array__"]])

    def location(data: dict) -> LocationPatternResult:
        return LocationPatternResult(
            description=description_from_dict(data["description"]),
            indices=arr(data["indices"]),
            mean=arr(data["mean"]),
            score=PatternScore(ic=float(data["ic"]), dl=float(data["dl"])),
            coverage=float(data["coverage"]),
        )

    def spread(data: dict) -> SpreadPatternResult:
        return SpreadPatternResult(
            description=description_from_dict(data["description"]),
            indices=arr(data["indices"]),
            direction=arr(data["direction"]),
            variance=float(data["variance"]),
            center=arr(data["center"]),
            score=PatternScore(ic=float(data["ic"]), dl=float(data["dl"])),
        )

    def constraint(data: dict):
        if data["type"] == "location":
            return LocationConstraint(arr(data["indices"]), arr(data["mean"]))
        if data["type"] == "spread":
            return SpreadConstraint(
                arr(data["indices"]),
                arr(data["direction"]),
                float(data["variance"]),
                arr(data["center"]),
            )
        raise EngineError(f"unknown spilled constraint type {data['type']!r}")

    it = doc["iteration"]
    iteration = MiningIteration(
        index=int(it["index"]),
        location=location(it["location"]),
        spread=spread(it["spread"]) if it["spread"] is not None else None,
    )
    return CachedStep(
        iteration=iteration,
        constraints=tuple(constraint(c) for c in doc["constraints"]),
        rng_state=doc["rng_state"],
    )


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #
@dataclass
class BeliefStoreStats:
    """Counters of one store's disk traffic."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0


class BeliefStore:
    """Content-addressed directory of spilled belief-cache entries.

    Give one to :class:`~repro.engine.cache.BeliefCache` as its
    ``spill`` and warm prefixes survive process restarts: every ``put``
    is written through to disk, every in-memory miss falls back to a
    (mmap-backed) disk read.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = BeliefStoreStats()
        self._lock = threading.Lock()

    def _path(self, key: str) -> Path:
        key = str(key)
        if not key or any(ch in key for ch in "/\\."):
            raise EngineError(f"invalid belief store key {key!r}")
        return self.root / key[:2] / f"{key}.blf"

    # ------------------------------ write ----------------------------- #
    def put(self, key: str, entry: CachedStep) -> None:
        """Write one entry; already-present keys are left untouched.

        Content addressing makes the skip safe: an existing file under
        this key holds the same bytes any writer would produce.
        """
        path = self._path(key)
        if path.exists():
            return
        doc, arrays = _encode_entry(entry)
        directory = []
        offset = 0
        blobs: list[bytes] = []
        for array in arrays:
            pad = (-offset) % _ALIGN
            offset += pad
            blobs.append(b"\x00" * pad)
            payload = array.tobytes()
            directory.append(
                {
                    "dtype": array.dtype.str,
                    "shape": list(array.shape),
                    "offset": offset,
                    "nbytes": len(payload),
                }
            )
            blobs.append(payload)
            offset += len(payload)
        header = json.dumps(
            {"schema": _SCHEMA, "doc": doc, "arrays": directory},
            separators=(",", ":"),
            allow_nan=False,
        ).encode("utf-8")
        prefix_len = len(_MAGIC) + 8 + len(header)
        lead_pad = (-prefix_len) % _ALIGN
        # Array offsets are relative to the end of the padded header, so
        # the header can state them before knowing its own length.
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_MAGIC)
                fh.write(len(header).to_bytes(8, "little"))
                fh.write(header)
                fh.write(b"\x00" * lead_pad)
                for blob in blobs:
                    fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self.stats.stores += 1

    # ------------------------------ read ------------------------------ #
    def get(self, key: str) -> CachedStep | None:
        """Load one entry (arrays memory-mapped read-only), or None."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                magic = fh.read(len(_MAGIC))
                if magic != _MAGIC:
                    raise EngineError(f"{path}: not a belief store entry")
                header_len = int.from_bytes(fh.read(8), "little")
                header = json.loads(fh.read(header_len).decode("utf-8"))
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except (OSError, ValueError, EngineError):
            # A torn or foreign file under a content-addressed key:
            # treat as a miss (the entry will be re-mined and the file
            # overwritten by a future atomic put of the same key).
            with self._lock:
                self.stats.errors += 1
                self.stats.misses += 1
            return None
        if header.get("schema") != _SCHEMA:
            with self._lock:
                self.stats.errors += 1
                self.stats.misses += 1
            return None
        base = len(_MAGIC) + 8 + header_len
        base += (-base) % _ALIGN
        try:
            arrays = [
                np.memmap(
                    path,
                    dtype=np.dtype(meta["dtype"]),
                    mode="r",
                    offset=base + meta["offset"],
                    shape=tuple(meta["shape"]),
                )
                for meta in header["arrays"]
            ]
            entry = _decode_entry(header["doc"], arrays)
        except (OSError, ValueError, KeyError, TypeError, EngineError):
            with self._lock:
                self.stats.errors += 1
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
        return entry

    # --------------------------- bookkeeping -------------------------- #
    def keys(self) -> list[str]:
        """Every spilled key currently on disk."""
        return sorted(p.stem for p in self.root.glob("*/*.blf"))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.blf"))

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def handle(self) -> "BeliefStoreHandle":
        """A picklable reference workers can resolve into a warm cache."""
        return BeliefStoreHandle(str(self.root))


#: Per-process resolved caches, keyed by store root: every job a worker
#: process runs shares one in-memory LRU over the same spill directory.
_RESOLVED: dict[str, "object"] = {}
_RESOLVED_LOCK = threading.Lock()


@dataclass(frozen=True)
class BeliefStoreHandle:
    """Picklable pointer to a :class:`BeliefStore` directory.

    Crossing a process boundary costs one short string; the worker side
    calls :meth:`resolve` to get a process-local
    :class:`~repro.engine.cache.BeliefCache` spilling to the shared
    directory (memoized per directory, so repeated jobs in one worker
    keep their in-memory LRU warm).
    """

    root: str
    maxsize: int = 256

    def resolve(self):
        """Materialise the shared per-root cache this handle points at."""
        from repro.engine.cache import BeliefCache

        key = str(Path(self.root).resolve())
        with _RESOLVED_LOCK:
            cache = _RESOLVED.get(key)
            if cache is None:
                cache = BeliefCache(self.maxsize, spill=BeliefStore(self.root))
                _RESOLVED[key] = cache
        return cache
