"""Integration tests: the Table II runtime harness (reduced sizes)."""

import pytest

from repro.experiments.runtime_exp import run_table2


@pytest.fixture(scope="module")
def table2():
    # Reduced iteration count keeps the suite fast; the shape claims below
    # are already visible at this scale.
    return run_table2(seed=0, n_iterations=6, mammals_max_iter=4)


class TestTable2:
    def test_all_columns_present(self, table2):
        assert set(table2.location_seconds) == {"GSE", "WQ", "Cr", "Ma"}
        assert set(table2.spread_seconds) == {"GSE", "WQ", "Cr"}  # no Ma column

    def test_mammals_truncated(self, table2):
        assert len(table2.location_seconds["Ma"]) == 4
        assert len(table2.location_seconds["GSE"]) == 6

    def test_refit_time_grows_with_patterns(self, table2):
        """More assimilated patterns -> slower refit (the paper's trend)."""
        for label, series in table2.location_seconds.items():
            assert series[-1] > series[0], label

    def test_mammals_location_slowest(self, table2):
        """d_y = 124 dominates the location refit cost."""
        k = 3  # compare at iteration 4 (index 3), available for all
        ma = table2.location_seconds["Ma"][k]
        others = [
            table2.location_seconds[label][k] for label in ("GSE", "WQ", "Cr")
        ]
        assert ma > max(others)

    def test_init_time_recorded(self, table2):
        assert set(table2.init_seconds) == {"GSE", "WQ", "Cr", "Ma"}
        assert all(v >= 0.0 for v in table2.init_seconds.values())

    def test_format_renders(self, table2):
        text = table2.format()
        assert "Table II" in text
        assert "init" in text
        assert "-" in text  # the truncated Mammals cells
