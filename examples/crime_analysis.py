"""The paper's running example: violent crime demographics (Fig. 1, §I).

Mines the Communities-and-Crime stand-in for the single most
subjectively interesting location pattern, prints the Fig. 1 density
curves as an ASCII chart, and then shows what *iterative* mining adds:
the second pattern is informative *given* the first.

Run with::

    python examples/crime_analysis.py
"""

import numpy as np

from repro import MiningSpec, build_miner, load_dataset
from repro.report.ascii import render_series
from repro.report.series import kde_series


def main() -> None:
    dataset = load_dataset("crime", seed=0)
    miner = build_miner(MiningSpec.build("crime"))

    print("Mining the most subjectively interesting pattern "
          f"({dataset.n_descriptions} attributes, {dataset.n_rows} districts)...")
    first = miner.find_location()
    crime = dataset.targets[:, 0]
    subgroup = crime[first.indices]

    print()
    print(f"top pattern : {first.description}")
    print(f"coverage    : {first.coverage:.1%}   (paper: 20.5%)")
    print(f"crime mean  : {subgroup.mean():.3f} in subgroup vs "
          f"{crime.mean():.3f} overall   (paper: 0.53 vs 0.24)")
    print(f"SI          : {first.si:.1f}")

    grid = np.linspace(0.0, 1.0, 96)
    _, full_density = kde_series(crime, grid=grid)
    _, subgroup_density = kde_series(subgroup, grid=grid, weight=first.coverage)
    print()
    print("Fig. 1 - crime-rate densities (x = violent crimes per pop):")
    print(render_series(
        grid,
        {"full data": full_density, "subgroup share": subgroup_density},
        width=72, height=10,
    ))

    # Iterative step: assimilate and ask again.
    miner.assimilate(first)
    second = miner.find_location()
    print()
    print("After assimilating the first pattern, the next most informative is:")
    print(f"  {second.description}  (SI {second.si:.1f})")
    print("  - informative *beyond* what the first pattern already told us.")


if __name__ == "__main__":
    main()
