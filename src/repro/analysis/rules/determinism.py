"""Determinism rules: nothing wall-clock or hash-ordered near a fingerprint.

The repo's headline guarantee is that re-mining the same ``MiningSpec``
anywhere — serial, thread, process, shm, distributed — reproduces the
same SI scores to the bit. That only holds if the modules computing
fingerprints, cache keys, and shard merges never consult a source of
run-to-run variation. These rules fire inside the critical-path modules
(:data:`CRITICAL_PATHS`) plus any file carrying a ``# sisd: critical``
marker.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.base import LintRule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile, scope_statements

__all__ = ["CRITICAL_PATHS", "INSTRUMENTED_PATHS"]

#: Modules whose output feeds fingerprints, cache keys, or shard merges.
#: New cache-keyed modules belong on this list (or carry the
#: ``# sisd: critical`` file marker) the moment they exist.
CRITICAL_PATHS = (
    "repro/spec.py",
    "repro/persist.py",
    "repro/engine/cache.py",
    "repro/engine/jobs.py",
    "repro/dist/executor.py",
    "repro/dist/ring.py",
)


class _CriticalRule(LintRule):
    """Shared applicability: critical-path modules + marked files."""

    applies_to = CRITICAL_PATHS

    def applies(self, source: SourceFile) -> bool:
        """Critical modules only: the path list plus the file marker."""
        return source.marked_critical or super().applies(source)


#: Calls that read the wall clock (vary run to run by construction).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule
class WallClockRule(_CriticalRule):
    """DET001: no wall-clock reads in fingerprint/cache/merge-critical modules.

    ``time.time()`` or ``datetime.now()`` flowing into a fingerprint,
    cache key, or merged result makes two runs of the same spec produce
    different digests — the belief cache stops hitting and the
    bit-identical contract breaks silently. Durations belong to
    ``time.monotonic()`` (never part of results); timestamps belong at
    the presentation layer, outside these modules.
    """

    rule_id = "DET001"
    title = "wall-clock read in a determinism-critical module"

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``source``."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                qual = source.qualname(node.func)
                if qual in _WALL_CLOCK:
                    yield self.finding(
                        source,
                        node,
                        f"{qual}() varies run to run; use time.monotonic() "
                        f"for durations or move timestamps out of the "
                        f"fingerprint path",
                    )


#: Module-level (implicitly seeded) RNG entry points.
_GLOBAL_RANDOM = frozenset(
    f"random.{name}"
    for name in (
        "random",
        "randint",
        "randrange",
        "uniform",
        "gauss",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "getrandbits",
    )
)
_GLOBAL_NP_RANDOM = frozenset(
    f"numpy.random.{name}"
    for name in (
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
    )
)


@register_rule
class UnseededRandomRule(_CriticalRule):
    """DET002: no global-RNG calls in determinism-critical modules.

    ``random.random()`` and the legacy ``np.random.*`` functions draw
    from process-global state seeded by whoever ran first — results then
    depend on import order, thread interleaving, and worker reuse. Use
    an explicitly seeded instance (``random.Random(seed)``,
    ``np.random.default_rng(seed)``) threaded through the call chain,
    the way :mod:`repro.utils.rng` already does.
    """

    rule_id = "DET002"
    title = "global/unseeded RNG in a determinism-critical module"

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``source``."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = source.qualname(node.func)
            if qual in _GLOBAL_RANDOM or qual in _GLOBAL_NP_RANDOM:
                yield self.finding(
                    source,
                    node,
                    f"{qual}() draws from the process-global RNG; pass an "
                    f"explicitly seeded Random/Generator instance instead",
                )
            elif qual == "numpy.random.default_rng" and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    source,
                    node,
                    "default_rng() without a seed is entropy-seeded; pass "
                    "the spec's seed explicitly",
                )


def _setish_names(scope: ast.AST) -> set[str]:
    """Names assigned only set-valued expressions within ``scope``."""
    setish: set[str] = set()
    tainted: set[str] = set()
    for node in scope_statements(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if _is_set_expr(node.value, ()):
                    setish.add(target.id)
                else:
                    tainted.add(target.id)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            target = node.target
            if isinstance(target, ast.Name):
                tainted.add(target.id)
    return setish - tainted


def _is_set_expr(node: ast.AST, setish_names: tuple[str, ...] | set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in setish_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, setish_names) or _is_set_expr(
            node.right, setish_names
        )
    return False


@register_rule
class SetIterationRule(_CriticalRule):
    """DET003: no bare set iteration in determinism-critical modules.

    Iterating a ``set`` yields hash order, which changes across
    processes (string hash randomization) and across runs — a loop over
    a set that feeds a fingerprint, cache key, or merged result list is
    a portability bug waiting to fire. Wrap the set in ``sorted(...)``
    to pin the order (dicts are insertion-ordered and stay allowed).
    """

    rule_id = "DET003"
    title = "unordered set iteration in a determinism-critical module"

    _MESSAGE = (
        "iteration order over a set is hash-dependent; wrap it in "
        "sorted(...) before it can feed a fingerprint or merge"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``source``."""
        for scope in source.scopes():
            if isinstance(scope, ast.Lambda):
                continue
            names = _setish_names(scope)
            yield from self._check_scope(source, scope, names)

    def _check_scope(
        self, source: SourceFile, scope: ast.AST, names: set[str]
    ) -> Iterator[Finding]:
        for node in scope_statements(scope):
            iter_expr: ast.AST | None = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr = node.iter
            elif isinstance(node, ast.comprehension):
                iter_expr = node.iter
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("list", "tuple", "enumerate") and node.args:
                    iter_expr = node.args[0]
            if iter_expr is None or not _is_set_expr(iter_expr, names):
                continue
            if self._order_pinned(source, node):
                continue
            yield self.finding(source, iter_expr, self._MESSAGE)

    @staticmethod
    def _order_pinned(source: SourceFile, node: ast.AST) -> bool:
        """True when an enclosing call pins the order (sorted/min/max...)."""
        for ancestor in source.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                return False
            if isinstance(ancestor, ast.Call) and isinstance(
                ancestor.func, ast.Name
            ):
                if ancestor.func.id in ("sorted", "min", "max", "sum", "len"):
                    return True
        return False


#: Modules whose clock reads must route through :mod:`repro.obs.clock`.
#: These are the instrumented tiers: their timers feed metrics and trace
#: spans, and tests pin them with ``clock.fixed(...)`` — a direct
#: ``time.*`` read there is invisible to that seam. A newly instrumented
#: module belongs on this list the moment it grows its first timer.
INSTRUMENTED_PATHS = (
    "repro/obs/",
    "repro/search/beam.py",
    "repro/search/miner.py",
    "repro/engine/service.py",
    "repro/engine/jobs.py",
    "repro/dist/executor.py",
    "repro/dist/worker.py",
    "repro/dist/router.py",
    "repro/server/app.py",
    "repro/server/hub.py",
)

#: Clock reads the seam wraps. ``time.sleep`` is deliberately absent:
#: sleeping is pacing, not measurement, and stays allowed.
_CLOCK_READS = frozenset(
    f"time.{name}"
    for name in (
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    )
)

#: Seam function replacing each direct read (the finding's suggestion).
_SEAM_FOR = {
    "time.time": "clock.wall_time",
    "time.time_ns": "clock.wall_time",
    "time.monotonic": "clock.monotonic",
    "time.monotonic_ns": "clock.monotonic",
}


@register_rule
class ClockSeamRule(LintRule):
    """DET004: instrumented modules read clocks via the repro.obs.clock seam.

    The instrumented tiers (beam phases, scheduler, dist shards, server)
    time themselves into metrics and trace spans, and their tests pin
    time with ``repro.obs.clock.fixed(...)``. A direct ``time.*`` read
    in one of those modules bypasses the seam: the timer works in
    production but cannot be frozen in tests, and mixed clock bases
    (seam here, raw read there) produce negative or skewed durations.
    Route reads through ``clock.monotonic()`` / ``clock.perf_counter()``
    / ``clock.wall_time()`` instead. ``time.sleep`` is pacing, not
    measurement, and stays allowed; the seam module itself is the one
    place raw reads belong.
    """

    rule_id = "DET004"
    title = "direct clock read bypassing the repro.obs.clock seam"
    applies_to = INSTRUMENTED_PATHS

    def applies(self, source: SourceFile) -> bool:
        """Instrumented modules, minus the seam module itself."""
        if source.display_path.endswith("repro/obs/clock.py"):
            return False
        return super().applies(source)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``source``."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                qual = source.qualname(node.func)
                if qual in _CLOCK_READS:
                    seam = _SEAM_FOR.get(qual, "clock.perf_counter")
                    yield self.finding(
                        source,
                        node,
                        f"{qual}() bypasses the repro.obs.clock seam in an "
                        f"instrumented module; call {seam}() so tests can "
                        f"pin time with clock.fixed(...)",
                    )
