"""Tests for the Zhang (2005) chi-squared mixture approximation."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import ModelError
from repro.stats.chi2mix import Chi2Mixture


class TestCoefficients:
    def test_uniform_coefficients_exact(self):
        """All a_i equal: the approximation is EXACT, g = a * chi2(n)."""
        mixture = Chi2Mixture(np.full(7, 0.5))
        assert mixture.alpha == pytest.approx(0.5)
        assert mixture.beta == pytest.approx(0.0, abs=1e-12)
        assert mixture.dof == pytest.approx(7.0)

    def test_weights_equal_repetition(self):
        a = np.array([0.2, 0.7])
        repeated = Chi2Mixture(np.array([0.2, 0.2, 0.2, 0.7]))
        weighted = Chi2Mixture(a, weights=np.array([3.0, 1.0]))
        assert weighted.alpha == pytest.approx(repeated.alpha)
        assert weighted.beta == pytest.approx(repeated.beta)
        assert weighted.dof == pytest.approx(repeated.dof)

    def test_cumulant_matching(self, rng):
        """alpha/beta/m match the mixture's first three cumulants."""
        a = np.abs(rng.standard_normal(6)) + 0.05
        w = rng.integers(1, 10, 6).astype(float)
        mixture = Chi2Mixture(a, weights=w)
        # Approximation side: alpha*chi2(m) + beta.
        assert mixture.alpha * mixture.dof + mixture.beta == pytest.approx(
            mixture.mean
        )
        assert 2 * mixture.alpha**2 * mixture.dof == pytest.approx(mixture.variance)
        assert 8 * mixture.alpha**3 * mixture.dof == pytest.approx(
            mixture.third_cumulant
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError, match="positive"):
            Chi2Mixture(np.array([0.5, 0.0]))

    def test_rejects_empty(self):
        with pytest.raises(ModelError, match="non-empty"):
            Chi2Mixture(np.array([]))

    def test_rejects_bad_weights(self):
        with pytest.raises(ModelError, match="shape"):
            Chi2Mixture(np.array([1.0]), weights=np.array([1.0, 2.0]))


class TestDistribution:
    def test_uniform_matches_scipy_chi2(self):
        a = 0.8
        n = 5
        mixture = Chi2Mixture(np.full(n, a))
        xs = np.linspace(0.1, 10.0, 25)
        expected = sps.chi2.logpdf(xs / a, n) - np.log(a)
        np.testing.assert_allclose(mixture.logpdf(xs), expected, rtol=1e-9)
        np.testing.assert_allclose(
            mixture.cdf(xs), sps.chi2.cdf(xs / a, n), rtol=1e-9
        )

    def test_pdf_integrates_to_one(self, rng):
        a = np.abs(rng.standard_normal(4)) + 0.1
        mixture = Chi2Mixture(a)
        grid = np.linspace(mixture.beta + 1e-9, mixture.mean + 30 * np.sqrt(mixture.variance), 20001)
        integral = np.trapezoid(mixture.pdf(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_ppf_inverts_cdf(self, rng):
        a = np.abs(rng.standard_normal(3)) + 0.2
        mixture = Chi2Mixture(a)
        for q in (0.1, 0.5, 0.9):
            assert mixture.cdf(mixture.ppf(q)) == pytest.approx(q, abs=1e-9)

    def test_below_support_clamped_finite(self):
        mixture = Chi2Mixture(np.array([0.3, 0.9]))
        value = mixture.logpdf(mixture.beta - 1.0)
        assert np.isfinite(value)

    def test_approximation_close_to_monte_carlo(self, rng):
        """KS distance between approx CDF and exact samples is small."""
        a = np.array([0.1, 0.5, 1.0, 2.0])
        w = np.array([5, 10, 3, 2], dtype=float)
        mixture = Chi2Mixture(a, weights=w)
        samples = mixture.sample(rng, 4000)
        grid = np.quantile(samples, np.linspace(0.02, 0.98, 49))
        empirical = np.searchsorted(np.sort(samples), grid) / samples.size
        approx = mixture.cdf(grid)
        assert np.abs(empirical - approx).max() < 0.03

    def test_scalar_in_scalar_out(self):
        mixture = Chi2Mixture(np.array([1.0, 2.0]))
        assert isinstance(mixture.logpdf(3.0), float)
        assert isinstance(mixture.cdf(3.0), float)


class TestFractionalWeightSampling:
    """Regression: ``sample()`` used to floor fractional weights via
    ``astype(int)``, silently truncating the weighted block counts a
    case-weighted subgroup produces (weight 2.9 sampled as 2)."""

    def test_fractional_weight_moments(self):
        rng = np.random.default_rng(7)
        mixture = Chi2Mixture(np.array([1.0]), weights=np.array([2.5]))
        samples = mixture.sample(rng, 60_000)
        # sum of w i.i.d. chi2(1) = chi2(w): mean w, variance 2w — exact
        # for any real w > 0, not just integers.
        assert samples.mean() == pytest.approx(2.5, rel=0.02)
        assert samples.var() == pytest.approx(5.0, rel=0.05)

    def test_fractional_weights_match_mixture_moments(self):
        rng = np.random.default_rng(3)
        a = np.array([0.4, 1.3])
        w = np.array([2.7, 5.2])
        mixture = Chi2Mixture(a, weights=w)
        samples = mixture.sample(rng, 80_000)
        assert samples.mean() == pytest.approx(mixture.mean, rel=0.02)
        assert samples.var() == pytest.approx(mixture.variance, rel=0.05)

    def test_sub_unit_weight_not_floored_to_nothing(self):
        """weight 0.9 used to floor to 0 repetitions — a zero sample."""
        rng = np.random.default_rng(11)
        mixture = Chi2Mixture(np.array([1.0]), weights=np.array([0.9]))
        samples = mixture.sample(rng, 20_000)
        assert samples.mean() == pytest.approx(0.9, rel=0.05)

    def test_integral_weights_keep_exact_repeat_path(self):
        """Integer weights must reproduce the historical draw bit-for-bit."""
        a = np.array([0.2, 0.7])
        w = np.array([3.0, 2.0])
        mixture = Chi2Mixture(a, weights=w)
        sampled = mixture.sample(np.random.default_rng(5), 50)
        reps = np.repeat(a, w.astype(int))
        rng = np.random.default_rng(5)
        expected = rng.chisquare(1.0, size=(50, reps.shape[0])) @ reps
        np.testing.assert_array_equal(sampled, expected)
