"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestDatasets:
    def test_lists_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("crime", "mammals", "socio", "synthetic", "water"):
            assert name in out


class TestExperimentsListing:
    def test_lists_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "table2" in out

    def test_registry_covers_all_paper_artifacts(self):
        expected = {f"fig{k}" for k in range(1, 11)} | {"table1", "table2"}
        assert set(EXPERIMENTS) == expected


class TestMine:
    def test_mine_synthetic(self, capsys):
        code = main(
            ["mine", "synthetic", "--iterations", "2", "--kind", "spread"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "iteration 1" in out
        assert "location:" in out
        assert "spread:" in out

    def test_mine_location_only(self, capsys):
        assert main(["mine", "synthetic", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "spread:" not in out

    def test_unknown_dataset_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["mine", "nope"])

    def test_custom_gamma(self, capsys):
        assert main(["mine", "synthetic", "--iterations", "1", "--gamma", "1.0"]) == 0


class TestExperimentCommand:
    def test_run_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "sisd" in capsys.readouterr().out
