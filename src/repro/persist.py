"""JSON persistence for descriptions, constraints, models and results.

Iterative mining is a dialogue: the belief state accumulates everything
the user has been shown. This module serializes that state — so a
session can be saved, resumed, or shipped next to a paper — as plain
JSON (numpy arrays become lists; no pickle, no code execution on load).

Round-trips covered: conditions/descriptions, pattern constraints, the
Gaussian background model (prior + blocks + constraints), and the result
records of the searches.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.interest.si import PatternScore
from repro.lang.conditions import Condition, EqualsCondition, NumericCondition
from repro.lang.description import Description
from repro.model.background import BackgroundModel
from repro.model.blocks import BlockPartition
from repro.model.patterns import (
    LocationConstraint,
    PatternConstraint,
    SpreadConstraint,
)
from repro.model.priors import Prior
from repro.search.results import (
    LocationPatternResult,
    ScoredSubgroup,
    SpreadPatternResult,
)

#: Schema version embedded in every document; bump on breaking changes.
SCHEMA_VERSION = 1


# --------------------------------------------------------------------- #
# Conditions and descriptions
# --------------------------------------------------------------------- #
def condition_to_dict(condition: Condition) -> dict:
    """Serialize one condition to a JSON-safe dict."""
    if isinstance(condition, NumericCondition):
        return {
            "type": "numeric",
            "attribute": condition.attribute,
            "op": condition.op,
            "threshold": condition.threshold,
        }
    if isinstance(condition, EqualsCondition):
        value = condition.value
        return {
            "type": "equals",
            "attribute": condition.attribute,
            "value": value,
            "value_kind": "number" if isinstance(value, float) else "string",
        }
    raise ReproError(f"cannot serialize condition type {type(condition).__name__}")


def condition_from_dict(data: dict) -> Condition:
    """Rebuild a condition from its serialized form."""
    kind = data.get("type")
    if kind == "numeric":
        return NumericCondition(data["attribute"], data["op"], data["threshold"])
    if kind == "equals":
        value = data["value"]
        if data.get("value_kind") == "number":
            value = float(value)
        return EqualsCondition(data["attribute"], value)
    raise ReproError(f"unknown condition type {kind!r}")


def description_to_dict(description: Description) -> dict:
    """Serialize a conjunctive description."""
    return {"conditions": [condition_to_dict(c) for c in description.conditions]}


def description_from_dict(data: dict) -> Description:
    """Rebuild a description from its serialized form."""
    return Description(
        tuple(condition_from_dict(c) for c in data["conditions"])
    )


# --------------------------------------------------------------------- #
# Pattern constraints
# --------------------------------------------------------------------- #
def constraint_to_dict(constraint: PatternConstraint) -> dict:
    """Serialize a location/spread pattern constraint."""
    if isinstance(constraint, LocationConstraint):
        return {
            "type": "location",
            "indices": constraint.indices.tolist(),
            "mean": constraint.mean.tolist(),
        }
    if isinstance(constraint, SpreadConstraint):
        return {
            "type": "spread",
            "indices": constraint.indices.tolist(),
            "direction": constraint.direction.tolist(),
            "variance": constraint.variance,
            "center": constraint.center.tolist(),
        }
    raise ReproError(f"cannot serialize constraint type {type(constraint).__name__}")


def constraint_from_dict(data: dict) -> PatternConstraint:
    """Rebuild a pattern constraint from its serialized form."""
    kind = data.get("type")
    if kind == "location":
        return LocationConstraint(
            np.asarray(data["indices"], dtype=np.int64),
            np.asarray(data["mean"], dtype=float),
        )
    if kind == "spread":
        return SpreadConstraint(
            np.asarray(data["indices"], dtype=np.int64),
            np.asarray(data["direction"], dtype=float),
            float(data["variance"]),
            np.asarray(data["center"], dtype=float),
        )
    raise ReproError(f"unknown constraint type {kind!r}")


# --------------------------------------------------------------------- #
# Background model
# --------------------------------------------------------------------- #
def model_to_dict(model: BackgroundModel) -> dict:
    """Serialize a background model (prior, blocks, constraints)."""
    return {
        "schema": SCHEMA_VERSION,
        "n_rows": model.n_rows,
        "prior": {
            "mean": model.prior.mean.tolist(),
            "cov": model.prior.cov.tolist(),
        },
        "labels": np.asarray(model.labels).tolist(),
        "blocks": [
            {
                "mean": model.block_mean(b).tolist(),
                "cov": model.block_cov(b).tolist(),
            }
            for b in range(model.n_blocks)
        ],
        "constraints": [constraint_to_dict(c) for c in model.constraints],
    }


def model_from_dict(data: dict) -> BackgroundModel:
    """Rebuild a background model; validates schema and block labels."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported model schema {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    prior = Prior(
        np.asarray(data["prior"]["mean"], dtype=float),
        np.asarray(data["prior"]["cov"], dtype=float),
    )
    model = BackgroundModel(int(data["n_rows"]), prior)
    labels = np.asarray(data["labels"], dtype=np.int64)
    if labels.shape != (model.n_rows,):
        raise ReproError("labels shape does not match n_rows")
    blocks = data["blocks"]
    if labels.max(initial=0) >= len(blocks):
        raise ReproError("labels reference a missing block")
    partition = BlockPartition(model.n_rows)
    partition._labels[:] = labels
    partition._n_blocks = len(blocks)
    model._partition = partition
    model._means = [np.asarray(b["mean"], dtype=float) for b in blocks]
    model._covs = [np.asarray(b["cov"], dtype=float) for b in blocks]
    model._constraints = [constraint_from_dict(c) for c in data["constraints"]]
    return model


# --------------------------------------------------------------------- #
# Result records
# --------------------------------------------------------------------- #
def result_to_dict(result) -> dict:
    """Serialize a search/mining result record."""
    if isinstance(result, ScoredSubgroup):
        return {
            "type": "scored_subgroup",
            "description": description_to_dict(result.description),
            "indices": result.indices.tolist(),
            "observed_mean": result.observed_mean.tolist(),
            "ic": result.score.ic,
            "dl": result.score.dl,
        }
    if isinstance(result, LocationPatternResult):
        return {
            "type": "location_pattern",
            "description": description_to_dict(result.description),
            "indices": result.indices.tolist(),
            "mean": result.mean.tolist(),
            "ic": result.score.ic,
            "dl": result.score.dl,
            "coverage": result.coverage,
        }
    if isinstance(result, SpreadPatternResult):
        return {
            "type": "spread_pattern",
            "description": description_to_dict(result.description),
            "indices": result.indices.tolist(),
            "direction": result.direction.tolist(),
            "variance": result.variance,
            "center": result.center.tolist(),
            "ic": result.score.ic,
            "dl": result.score.dl,
        }
    raise ReproError(f"cannot serialize result type {type(result).__name__}")


def result_from_dict(data: dict):
    """Rebuild a search/mining result record from its serialized form."""
    kind = data.get("type")
    score = PatternScore(ic=float(data["ic"]), dl=float(data["dl"]))
    if kind == "scored_subgroup":
        return ScoredSubgroup(
            description=description_from_dict(data["description"]),
            indices=np.asarray(data["indices"], dtype=np.int64),
            observed_mean=np.asarray(data["observed_mean"], dtype=float),
            score=score,
        )
    if kind == "location_pattern":
        return LocationPatternResult(
            description=description_from_dict(data["description"]),
            indices=np.asarray(data["indices"], dtype=np.int64),
            mean=np.asarray(data["mean"], dtype=float),
            score=score,
            coverage=float(data["coverage"]),
        )
    if kind == "spread_pattern":
        return SpreadPatternResult(
            description=description_from_dict(data["description"]),
            indices=np.asarray(data["indices"], dtype=np.int64),
            direction=np.asarray(data["direction"], dtype=float),
            variance=float(data["variance"]),
            center=np.asarray(data["center"], dtype=float),
            score=score,
        )
    raise ReproError(f"unknown result type {kind!r}")


# --------------------------------------------------------------------- #
# File helpers
# --------------------------------------------------------------------- #
def save_json(document: dict, path: str | Path) -> Path:
    """Write a serialized document to disk (pretty-printed)."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: str | Path) -> dict:
    """Read a serialized document from disk."""
    return json.loads(Path(path).read_text())


def save_model(model: BackgroundModel, path: str | Path) -> Path:
    """One-call model save."""
    return save_json(model_to_dict(model), path)


def load_model(path: str | Path) -> BackgroundModel:
    """One-call model load."""
    return model_from_dict(load_json(path))
