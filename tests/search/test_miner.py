"""Tests for the SubgroupDiscovery facade."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.interest.dl import DLParams
from repro.lang.conditions import EqualsCondition
from repro.lang.description import Description
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery


class TestFindLocation:
    def test_finds_planted_subgroup(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset)
        pattern = miner.find_location()
        assert len(pattern.description) == 1
        condition = pattern.description.conditions[0]
        assert condition.attribute in ("attr3", "attr4", "attr5")
        assert pattern.size == 40
        assert pattern.si > 30.0

    def test_search_does_not_mutate_model(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset)
        miner.find_location()
        assert miner.model.n_blocks == 1
        assert len(miner.model.constraints) == 0

    def test_target_subset(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset, targets=["attr1"])
        assert miner.model.dim == 1
        pattern = miner.find_location()
        assert pattern.mean.shape == (1,)

    def test_impossible_coverage_raises(self, synthetic_dataset):
        config = SearchConfig(min_coverage=1000)
        miner = SubgroupDiscovery(synthetic_dataset, config=config)
        with pytest.raises(SearchError, match="no admissible"):
            miner.find_location()


class TestStep:
    def test_location_step_assimilates(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset)
        iteration = miner.step()
        assert iteration.index == 1
        assert iteration.spread is None
        assert len(miner.model.constraints) == 1
        assert miner.history == [iteration]

    def test_spread_step_two_constraints(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset)
        iteration = miner.step(kind="spread")
        assert iteration.spread is not None
        assert len(miner.model.constraints) == 2
        np.testing.assert_array_equal(
            iteration.spread.indices, iteration.location.indices
        )

    def test_invalid_kind(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset)
        with pytest.raises(SearchError, match="kind"):
            miner.step(kind="both")

    def test_iterations_find_distinct_subgroups(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset)
        iterations = miner.run(3, kind="location")
        attrs = {
            it.location.description.conditions[0].attribute for it in iterations
        }
        assert attrs == {"attr3", "attr4", "attr5"}

    def test_run_validates_count(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset)
        with pytest.raises(SearchError):
            miner.run(0)


class TestScoreDescription:
    def test_si_drops_after_assimilation(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset)
        description = Description((EqualsCondition("attr3", 1.0),))
        before = miner.score_description(description).si
        location = miner.find_location()
        miner.assimilate(location)
        after = miner.score_description(description).si
        if location.description.canonical() == description.canonical():
            assert after < 1.0 < before
        else:
            # Different planted cluster assimilated: attr3 unaffected.
            assert after == pytest.approx(before, rel=1e-6)

    def test_empty_extension_rejected(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset)
        impossible = Description(
            (EqualsCondition("attr3", 1.0), EqualsCondition("attr3", 0.0))
        )
        with pytest.raises(SearchError, match="empty"):
            miner.score_description(impossible)

    def test_canonicalizes_before_counting_conditions(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset)
        redundant = Description(
            (EqualsCondition("attr3", 1.0), EqualsCondition("attr3", 1.0))
        )
        entry = miner.score_description(redundant)
        assert entry.score.dl == pytest.approx(1.1)  # one canonical condition


class TestDeterminism:
    def test_same_seed_same_results(self, synthetic_dataset):
        a = SubgroupDiscovery(synthetic_dataset, seed=5).step(kind="spread")
        b = SubgroupDiscovery(synthetic_dataset, seed=5).step(kind="spread")
        assert str(a.location.description) == str(b.location.description)
        np.testing.assert_allclose(a.spread.direction, b.spread.direction)

    def test_custom_dl_params_used(self, synthetic_dataset):
        miner = SubgroupDiscovery(synthetic_dataset, dl_params=DLParams(gamma=1.0))
        pattern = miner.find_location()
        assert pattern.score.dl == pytest.approx(1.0 * len(pattern.description) + 1.0)
