"""Tests for the LRU cache and spec fingerprints."""

import numpy as np
import pytest

from repro.engine.cache import (
    LRUCache,
    dataset_fingerprint,
    fingerprint,
    load_dataset_cached,
)
from repro.errors import EngineError


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 7) == 7

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_stats_count_hits_misses_evictions(self):
        cache = LRUCache(1)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts "a"
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestFingerprint:
    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_tuple_equals_list(self):
        assert fingerprint((1, 2, 3)) == fingerprint([1, 2, 3])

    def test_numpy_scalars_and_arrays_normalize(self):
        assert fingerprint(np.int64(3)) == fingerprint(3)
        assert fingerprint(np.array([1.0, 2.0])) == fingerprint([1.0, 2.0])

    def test_distinguishes_values(self):
        assert fingerprint({"seed": 0}) != fingerprint({"seed": 1})

    def test_rejects_unserializable(self):
        with pytest.raises(EngineError):
            fingerprint(object())

    def test_dataset_fingerprint_includes_kwargs(self):
        assert dataset_fingerprint("synthetic", 0) != dataset_fingerprint(
            "synthetic", 0, {"flip_probability": 0.1}
        )


class TestLoadDatasetCached:
    def test_second_load_is_a_hit(self):
        cache = LRUCache(4)
        first = load_dataset_cached("synthetic", seed=0, cache=cache)
        second = load_dataset_cached("synthetic", seed=0, cache=cache)
        assert first is second
        assert cache.stats.hits == 1

    def test_different_seed_is_a_miss(self):
        cache = LRUCache(4)
        first = load_dataset_cached("synthetic", seed=0, cache=cache)
        other = load_dataset_cached("synthetic", seed=1, cache=cache)
        assert first is not other
        assert len(cache) == 2


class TestFingerprintNonFinite:
    """Regression: NaN/Inf are not JSON; they must fail loudly, not
    serialize as the non-canonical NaN/Infinity tokens."""

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf")]
    )
    def test_bare_non_finite_float_rejected(self, value):
        with pytest.raises(EngineError, match="non-finite"):
            fingerprint(value)

    def test_nested_non_finite_rejected(self):
        with pytest.raises(EngineError, match="non-finite"):
            fingerprint({"config": {"gamma": float("nan")}})
        with pytest.raises(EngineError, match="non-finite"):
            fingerprint([1.0, (2.0, float("inf"))])

    def test_numpy_non_finite_rejected(self):
        with pytest.raises(EngineError, match="non-finite"):
            fingerprint(np.float64("nan"))
        with pytest.raises(EngineError, match="non-finite"):
            fingerprint(np.array([1.0, np.inf]))

    def test_finite_floats_still_fingerprint(self):
        assert fingerprint(1.5) == fingerprint(1.5)
        assert fingerprint(np.float64(2.5)) == fingerprint(2.5)


class TestLoadDatasetCachedConcurrency:
    """Regression: concurrent misses must load a dataset exactly once."""

    def test_thread_hammer_loads_once(self, monkeypatch):
        import threading
        import time

        import repro.datasets.registry as registry

        calls = []
        real_load = registry.load_dataset

        def slow_load(name, seed=0, **kwargs):
            calls.append(threading.get_ident())
            time.sleep(0.05)  # widen the stampede window
            return real_load(name, seed=seed, **kwargs)

        monkeypatch.setattr(registry, "load_dataset", slow_load)
        cache = LRUCache(4)
        n_threads = 12
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads
        errors = []

        def hammer(slot):
            try:
                barrier.wait()
                results[slot] = load_dataset_cached(
                    "synthetic", seed=123, cache=cache
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(slot,))
            for slot in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(calls) == 1, f"stampede: dataset loaded {len(calls)} times"
        assert all(result is results[0] for result in results)

    def test_distinct_keys_do_not_serialize_on_one_lock(self, monkeypatch):
        import repro.datasets.registry as registry

        calls = []
        real_load = registry.load_dataset

        def counting_load(name, seed=0, **kwargs):
            calls.append(seed)
            return real_load(name, seed=seed, **kwargs)

        monkeypatch.setattr(registry, "load_dataset", counting_load)
        cache = LRUCache(4)
        load_dataset_cached("synthetic", seed=7, cache=cache)
        load_dataset_cached("synthetic", seed=8, cache=cache)
        assert sorted(calls) == [7, 8]

    def test_none_is_a_cacheable_value(self, monkeypatch):
        """The miss sentinel is distinct from None (the old sentinel)."""
        import repro.datasets.registry as registry

        from repro.engine.cache import dataset_fingerprint

        cache = LRUCache(4)
        cache.put(dataset_fingerprint("synthetic", 99, {}), None)

        def exploding_load(name, seed=0, **kwargs):  # pragma: no cover
            raise AssertionError("cached None must not trigger a reload")

        monkeypatch.setattr(registry, "load_dataset", exploding_load)
        assert load_dataset_cached("synthetic", seed=99, cache=cache) is None
