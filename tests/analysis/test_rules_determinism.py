"""DET001/DET002/DET003 fire on violations and stay quiet on clean code."""

from __future__ import annotations

from lintfns import rule_ids


class TestWallClock:
    def test_time_time_fires_in_critical_module(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert rule_ids(report) == ["DET001"]
        assert "time.time()" in report.findings[0].message

    def test_datetime_now_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/spec.py",
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
        )
        assert rule_ids(report) == ["DET001"]

    def test_monotonic_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            import time

            def elapsed(start):
                return time.monotonic() - start
            """,
        )
        assert report.clean

    def test_non_critical_module_is_quiet(self, lint_snippet):
        # Same violation, but outside the critical-path list.
        report = lint_snippet(
            "repro/report/html.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert report.clean

    def test_critical_marker_opts_a_module_in(self, lint_snippet):
        report = lint_snippet(
            "repro/report/html.py",
            """
            # sisd: critical
            import time

            def stamp():
                return time.time()
            """,
        )
        assert rule_ids(report) == ["DET001"]


class TestUnseededRandom:
    def test_global_random_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/jobs.py",
            """
            import random

            def draw():
                return random.random()
            """,
        )
        assert rule_ids(report) == ["DET002"]

    def test_numpy_global_fires_through_alias(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/executor.py",
            """
            import numpy as np

            def draw():
                return np.random.rand(3)
            """,
        )
        assert rule_ids(report) == ["DET002"]

    def test_unseeded_default_rng_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/ring.py",
            """
            import numpy as np

            def make_rng():
                return np.random.default_rng()
            """,
        )
        assert rule_ids(report) == ["DET002"]

    def test_seeded_default_rng_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/ring.py",
            """
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert report.clean

    def test_instance_rng_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/jobs.py",
            """
            import random

            def draw(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
        )
        assert report.clean


class TestSetIteration:
    def test_for_over_set_literal_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            def merge():
                out = []
                for key in {1, 2, 3}:
                    out.append(key)
                return out
            """,
        )
        assert rule_ids(report) == ["DET003"]

    def test_for_over_tracked_set_name_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            def merge(keys):
                seen = set(keys)
                out = []
                for key in seen:
                    out.append(key)
                return out
            """,
        )
        assert rule_ids(report) == ["DET003"]

    def test_list_of_set_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            def order(keys):
                return list(set(keys))
            """,
        )
        assert rule_ids(report) == ["DET003"]

    def test_sorted_set_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            def order(keys):
                seen = set(keys)
                return sorted(seen), sorted(set(keys))
            """,
        )
        assert report.clean

    def test_rebound_name_is_not_tracked(self, lint_snippet):
        # ``seen`` stops being a set after the rebind; don't flag it.
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            def order(keys):
                seen = set(keys)
                seen = sorted(seen)
                out = []
                for key in seen:
                    out.append(key)
                return out
            """,
        )
        assert report.clean


class TestClockSeam:
    def test_perf_counter_fires_in_an_instrumented_module(self, lint_snippet):
        report = lint_snippet(
            "repro/search/beam.py",
            """
            import time

            def phase():
                return time.perf_counter()
            """,
        )
        assert rule_ids(report) == ["DET004"]
        assert "clock.perf_counter()" in report.findings[0].message

    def test_monotonic_suggests_the_matching_seam(self, lint_snippet):
        report = lint_snippet(
            "repro/server/app.py",
            """
            import time

            def uptime(start):
                return time.monotonic() - start
            """,
        )
        assert rule_ids(report) == ["DET004"]
        assert "clock.monotonic()" in report.findings[0].message

    def test_wall_clock_fires_both_packs_in_a_critical_module(self, lint_snippet):
        # jobs.py is on both lists: DET001 (fingerprint safety) and
        # DET004 (seam routing) each flag a raw ``time.time()``.
        report = lint_snippet(
            "repro/engine/jobs.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert sorted(rule_ids(report)) == ["DET001", "DET004"]

    def test_fires_everywhere_under_the_obs_package(self, lint_snippet):
        report = lint_snippet(
            "repro/obs/instruments.py",
            """
            import time

            def now():
                return time.monotonic_ns()
            """,
        )
        assert rule_ids(report) == ["DET004"]

    def test_the_seam_module_itself_is_exempt(self, lint_snippet):
        report = lint_snippet(
            "repro/obs/clock.py",
            """
            import time

            monotonic = time.monotonic

            def read():
                return time.perf_counter()
            """,
        )
        assert report.clean

    def test_time_sleep_is_pacing_not_measurement(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/worker.py",
            """
            import time

            def backoff(seconds):
                time.sleep(seconds)
            """,
        )
        assert report.clean

    def test_seam_reads_are_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/dist/executor.py",
            """
            from repro.obs import clock

            def rtt(start):
                return clock.perf_counter() - start
            """,
        )
        assert report.clean

    def test_uninstrumented_modules_are_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/report/html.py",
            """
            import time

            def stamp():
                return time.perf_counter()
            """,
        )
        assert report.clean
