"""``repro.obs``: metrics, trace spans, and profiling for the miner.

A stdlib-only observability layer answering the question the ROADMAP's
perf items keep raising — *where does the time go?* — without touching
the determinism contract:

- :mod:`repro.obs.metrics` — counters/gauges/histograms in the
  string-keyed registry idiom, rendered as Prometheus text by the
  ``GET /metrics`` endpoints on the server, worker, and router.
- :mod:`repro.obs.trace` — spans with explicit context propagation, so
  one trace id follows a job from HTTP submit through the scheduler,
  the executor's shards, and a remote worker daemon.
- :mod:`repro.obs.clock` — the one blessed ``time.*`` seam for
  instrumented modules (statically enforced by lint rule ``DET004``).
- :mod:`repro.obs.instruments` — every instrument the engine records,
  declared once so registration order is deterministic.
- :mod:`repro.obs.profile` — metrics-diff profiling, the engine of
  ``Workspace.mine(..., profile=True)``.

Nothing here feeds a fingerprint: results stay bit-identical with
observability on, across every execution backend.
"""

from repro.obs.instruments import METRICS
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.profile import ProfileReport, profile_block
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    TRACER,
    activate,
    current,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "parse_prometheus",
    "ProfileReport",
    "profile_block",
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "activate",
    "current",
]
