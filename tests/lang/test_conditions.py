"""Tests for atomic conditions."""

import numpy as np
import pytest

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.errors import LanguageError
from repro.lang.conditions import EqualsCondition, NumericCondition


@pytest.fixture()
def dataset():
    columns = [
        Column("x", AttributeKind.NUMERIC, np.array([1.0, 2.0, 3.0, 4.0])),
        Column("lvl", AttributeKind.ORDINAL, np.array([0.0, 1.0, 3.0, 5.0])),
        Column("c", AttributeKind.CATEGORICAL, np.array(["a", "b", "a", "c"])),
        Column("b", AttributeKind.BINARY, np.array([0.0, 1.0, 1.0, 0.0])),
    ]
    return Dataset("toy", columns, np.zeros((4, 1)), ["y"])


class TestNumericCondition:
    def test_le_mask(self, dataset):
        mask = NumericCondition("x", "<=", 2.5).mask(dataset)
        np.testing.assert_array_equal(mask, [True, True, False, False])

    def test_ge_mask(self, dataset):
        mask = NumericCondition("x", ">=", 3.0).mask(dataset)
        np.testing.assert_array_equal(mask, [False, False, True, True])

    def test_boundary_inclusive(self, dataset):
        assert NumericCondition("x", "<=", 1.0).mask(dataset)[0]
        assert NumericCondition("x", ">=", 4.0).mask(dataset)[3]

    def test_ordinal_allowed(self, dataset):
        mask = NumericCondition("lvl", ">=", 3.0).mask(dataset)
        np.testing.assert_array_equal(mask, [False, False, True, True])

    def test_categorical_rejected(self, dataset):
        with pytest.raises(LanguageError, match="categorical"):
            NumericCondition("c", "<=", 1.0).mask(dataset)

    def test_invalid_op(self):
        with pytest.raises(LanguageError, match="op"):
            NumericCondition("x", "<", 1.0)

    def test_nonfinite_threshold(self):
        with pytest.raises(LanguageError, match="finite"):
            NumericCondition("x", "<=", float("inf"))

    def test_str(self):
        assert str(NumericCondition("x", "<=", 2.5)) == "x <= 2.5"

    def test_hashable_and_equal(self):
        a = NumericCondition("x", "<=", 2.5)
        b = NumericCondition("x", "<=", 2.5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != NumericCondition("x", ">=", 2.5)


class TestEqualsCondition:
    def test_categorical_mask(self, dataset):
        mask = EqualsCondition("c", "a").mask(dataset)
        np.testing.assert_array_equal(mask, [True, False, True, False])

    def test_binary_mask(self, dataset):
        mask = EqualsCondition("b", 1.0).mask(dataset)
        np.testing.assert_array_equal(mask, [False, True, True, False])

    def test_binary_int_value(self, dataset):
        mask = EqualsCondition("b", 1).mask(dataset)
        assert mask.sum() == 2

    def test_numeric_rejected(self, dataset):
        with pytest.raises(LanguageError, match="numeric"):
            EqualsCondition("x", 1.0).mask(dataset)

    def test_str_binary_renders_like_paper(self):
        assert str(EqualsCondition("attr3", 1.0)) == "attr3 = '1'"

    def test_str_categorical(self):
        assert str(EqualsCondition("region", "east")) == "region = 'east'"

    def test_sort_key_orders_by_attribute(self):
        a = EqualsCondition("a", "x")
        b = NumericCondition("b", "<=", 1.0)
        assert a.sort_key() < b.sort_key()
