"""String-keyed registries: the declarative vocabulary of ``MiningSpec``.

A :class:`~repro.spec.MiningSpec` names everything it needs — the
dataset, the search strategy, the background model, the interestingness
measure — as plain strings, so a spec is fully JSON-round-trippable and
new implementations slot in without touching call sites. This module
holds the four registries those strings resolve against:

- :data:`DATASETS` — dataset factories (``seed, **kwargs -> Dataset``);
  the single store behind :func:`repro.datasets.load_dataset`.
- :data:`SEARCHES` — search strategies: the subjective beam search, the
  provably-optimal branch-and-bound, and the classical-quality beam.
- :data:`MODELS` — background-model classes (Gaussian, Bernoulli).
- :data:`MEASURES` — interestingness measures: ``"si"`` (the paper's
  subjective measure, scored by :func:`repro.interest.si.score_location`)
  plus the classical :class:`~repro.baselines.quality.QualityMeasure`
  baselines.

Every registry raises a typed, self-describing error on an unknown key
(naming the registry and listing what *is* available) and refuses
duplicate registration. All built-ins are registered when this module is
imported, so ``import repro`` always sees a fully populated vocabulary.

Third-party code extends the vocabulary the same way the built-ins got
there::

    from repro.registry import DATASETS

    DATASETS.register("mydata", make_mydata)   # now valid in any spec

:data:`DATASETS` and :data:`MEASURES` entries are picked up by the
mining loop automatically (datasets load by name everywhere; measures
drive ``strategy="quality_beam"``). :data:`SEARCHES` and :data:`MODELS`
name the vocabulary a spec validates against, but executing a *new*
strategy or model additionally requires a dispatch branch in
:mod:`repro.engine.jobs` — registration alone makes it nameable, not
runnable.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import DataError, ModelError, ReproError, SearchError

#: Sentinel marking Registry.register's value argument as not passed.
_MISSING = object()


class Registry:
    """A named mapping from string keys to implementations.

    Parameters
    ----------
    kind:
        Human name of what is registered (``"dataset"``), used in error
        messages: ``unknown dataset 'nope'; available: crime, ...``.
    error:
        Exception class raised on unknown keys and duplicate
        registration; defaults to :class:`~repro.errors.ReproError`.
    """

    def __init__(self, kind: str, *, error: type = ReproError) -> None:
        self.kind = kind
        self._error = error
        self._entries: dict[str, Any] = {}

    def register(self, key: str, value: Any = _MISSING) -> Any:
        """Register ``value`` under ``key``; re-registration is an error.

        The value is mandatory — a forgotten one is an immediate error
        at the call site, not a silent no-op discovered later as an
        unknown key. For decorator syntax use :meth:`registered`.
        Returns the registered value.
        """
        if not key or not isinstance(key, str):
            raise self._error(f"{self.kind} key must be a non-empty string, got {key!r}")
        if value is _MISSING or value is None:
            raise self._error(
                f"{self.kind} {key!r} needs a value to register; use "
                f"@registry.registered({key!r}) for the decorator form"
            )
        if key in self._entries:
            raise self._error(f"{self.kind} {key!r} is already registered")
        self._entries[key] = value
        return value

    def registered(self, key: str):
        """Decorator form: ``@DATASETS.registered("mydata")``.

        Registers the decorated object under ``key`` and returns it
        unchanged.
        """
        def _decorator(obj: Any) -> Any:
            return self.register(key, obj)

        return _decorator

    def get(self, key: str) -> Any:
        """Resolve ``key``; unknown keys name the registry and its keys."""
        try:
            return self._entries[key]
        except KeyError:
            raise self._error(
                f"unknown {self.kind} {key!r}; available: {', '.join(self.keys())}"
            ) from None

    def keys(self) -> list[str]:
        """Registered keys, sorted."""
        return sorted(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self):
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, keys={self.keys()})"


#: Dataset factories; the store behind :func:`repro.datasets.load_dataset`.
DATASETS = Registry("dataset", error=DataError)

#: Search strategies a spec may name in ``search.strategy``.
SEARCHES = Registry("search strategy", error=SearchError)

#: Background-model classes a spec may name in ``model.kind``.
MODELS = Registry("background model", error=ModelError)

#: Interestingness measures a spec may name in ``interest.measure``.
MEASURES = Registry("interestingness measure", error=ReproError)


def _register_builtins() -> None:
    """Populate the registries with everything the library ships.

    Runs at import time (bottom of this module) so that ``import repro``
    — or importing any module that touches a registry — always sees the
    full built-in vocabulary. Imports are local to keep the module-level
    import graph cycle-free: ``repro.datasets.registry`` imports the
    :data:`DATASETS` instance defined above, which already exists by the
    time these imports re-enter this module.
    """
    from repro.baselines.beam import QualityBeamSearch
    from repro.baselines.quality import (
        DispersionCorrectedQuality,
        MeanShiftQuality,
        WRAccQuality,
    )
    from repro.datasets.crime import make_crime
    from repro.datasets.mammals import make_mammals
    from repro.datasets.socio import make_socio
    from repro.datasets.synthetic import make_synthetic
    from repro.datasets.water import make_water
    from repro.interest.si import score_location
    from repro.model.background import BackgroundModel
    from repro.model.bernoulli import BernoulliBackgroundModel
    from repro.search.beam import LocationBeamSearch
    from repro.search.branch_bound import BranchAndBoundLocationSearch

    DATASETS.register("synthetic", make_synthetic)
    DATASETS.register("crime", make_crime)
    DATASETS.register("mammals", make_mammals)
    DATASETS.register("socio", make_socio)
    DATASETS.register("water", make_water)

    SEARCHES.register("beam", LocationBeamSearch)
    SEARCHES.register("branch_bound", BranchAndBoundLocationSearch)
    SEARCHES.register("quality_beam", QualityBeamSearch)

    MODELS.register("gaussian", BackgroundModel)
    MODELS.register("bernoulli", BernoulliBackgroundModel)

    MEASURES.register("si", score_location)
    MEASURES.register("mean_shift", MeanShiftQuality)
    MEASURES.register("wracc", WRAccQuality)
    MEASURES.register("dispersion_corrected", DispersionCorrectedQuality)


_register_builtins()
