"""Tests for split-point computation."""

import numpy as np
import pytest

from repro.datasets.schema import AttributeKind, Column
from repro.errors import LanguageError
from repro.lang.discretize import split_points


class TestPercentile:
    def test_paper_default_four_points(self):
        col = Column("x", AttributeKind.NUMERIC, np.arange(100.0))
        points = split_points(col)
        np.testing.assert_allclose(points, np.percentile(np.arange(100.0), [20, 40, 60, 80]))

    def test_strictly_inside_range(self, rng):
        col = Column("x", AttributeKind.NUMERIC, rng.standard_normal(500))
        points = split_points(col, n_split_points=7)
        assert points.min() >= col.values.min()
        assert points.max() <= col.values.max()

    def test_sorted_unique(self, rng):
        col = Column("x", AttributeKind.NUMERIC, rng.integers(0, 3, 100).astype(float))
        points = split_points(col, n_split_points=9)
        assert np.all(np.diff(points) > 0)


class TestStrategies:
    def test_width(self):
        col = Column("x", AttributeKind.NUMERIC, np.array([0.0, 10.0]))
        np.testing.assert_allclose(split_points(col, n_split_points=4, strategy="width"),
                                   [2.0, 4.0, 6.0, 8.0])

    def test_levels(self):
        col = Column("x", AttributeKind.NUMERIC, np.array([1.0, 2.0, 2.0, 5.0]))
        np.testing.assert_allclose(
            split_points(col, strategy="levels"), [1.0, 2.0, 5.0]
        )

    def test_unknown_strategy(self):
        col = Column("x", AttributeKind.NUMERIC, np.arange(5.0))
        with pytest.raises(LanguageError, match="strategy"):
            split_points(col, strategy="magic")


class TestOrdinal:
    def test_always_uses_levels(self):
        col = Column("lvl", AttributeKind.ORDINAL, np.array([0.0, 1.0, 3.0, 5.0] * 10))
        np.testing.assert_allclose(split_points(col), [0.0, 1.0, 3.0, 5.0])

    def test_percentile_request_ignored_for_ordinal(self):
        col = Column("lvl", AttributeKind.ORDINAL, np.array([0.0] * 90 + [5.0] * 10))
        np.testing.assert_allclose(split_points(col, n_split_points=4), [0.0, 5.0])


class TestEdgeCases:
    def test_constant_column(self):
        col = Column("x", AttributeKind.NUMERIC, np.full(10, 3.0))
        assert split_points(col).size == 0

    def test_categorical_rejected(self):
        col = Column("c", AttributeKind.CATEGORICAL, np.array(["a", "b"]))
        with pytest.raises(LanguageError, match="undefined"):
            split_points(col)

    def test_invalid_count(self):
        col = Column("x", AttributeKind.NUMERIC, np.arange(5.0))
        with pytest.raises(LanguageError, match="n_split_points"):
            split_points(col, n_split_points=0)
