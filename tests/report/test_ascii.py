"""Tests for ASCII chart rendering."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.report.ascii import bar_chart, render_series, sparkline, text_map


class TestBarChart:
    def test_renders_all_labels(self):
        text = bar_chart(["alpha", "beta"], [1.0, -2.0])
        assert "alpha" in text
        assert "beta" in text

    def test_negative_bars_use_dashes(self):
        text = bar_chart(["neg"], [-1.0])
        assert "-" in text.split("|")[1]

    def test_longest_bar_for_largest_value(self):
        text = bar_chart(["small", "large"], [1.0, 10.0], width=20)
        lines = text.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_label_count_mismatch(self):
        with pytest.raises(ReproError):
            bar_chart(["a"], [1.0, 2.0])

    def test_all_zero_safe(self):
        text = bar_chart(["z"], [0.0])
        assert "z" in text


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline(np.arange(10.0))) == 10

    def test_constant_series(self):
        line = sparkline(np.ones(5))
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_levels(self):
        line = sparkline(np.linspace(0, 1, 10))
        # First char is the lowest block, last the highest.
        assert line[0] == " "
        assert line[-1] == "@"


class TestRenderSeries:
    def test_contains_marks_and_legend(self, rng):
        grid = np.linspace(0, 1, 50)
        text = render_series(grid, {"data": np.sin(grid * 6), "model": grid})
        assert "*=data" in text
        assert "+=model" in text

    def test_too_many_series(self):
        grid = np.linspace(0, 1, 5)
        series = {f"s{i}": grid for i in range(6)}
        with pytest.raises(ReproError):
            render_series(grid, series)

    def test_canvas_dimensions(self):
        grid = np.linspace(0, 1, 30)
        text = render_series(grid, {"a": grid}, width=40, height=8)
        lines = text.splitlines()
        assert len(lines) == 10  # 8 canvas + legend + footer
        assert all(len(line) == 40 for line in lines[:8])


class TestTextMap:
    def test_marks_inside_and_outside(self):
        lat = np.array([50.0, 50.0, 60.0, 60.0])
        lon = np.array([0.0, 10.0, 0.0, 10.0])
        mask = np.array([True, False, False, True])
        text = text_map(lat, lon, mask, width=8, height=4)
        assert "#" in text
        assert "." in text

    def test_north_up(self):
        lat = np.array([40.0, 70.0])
        lon = np.array([5.0, 5.0])
        mask = np.array([False, True])
        text = text_map(lat, lon, mask, width=5, height=5)
        lines = text.splitlines()
        first_hash = next(i for i, line in enumerate(lines) if "#" in line)
        first_dot = next(i for i, line in enumerate(lines) if "." in line)
        assert first_hash < first_dot  # the northern point renders higher

    def test_shape_validation(self):
        with pytest.raises(ReproError):
            text_map(np.zeros(3), np.zeros(3), np.zeros(2, dtype=bool))

    def test_mask_dtype_validation(self):
        with pytest.raises(ReproError):
            text_map(np.zeros(3), np.zeros(3), np.zeros(3))
