"""Bounded, thread-safe LRU cache.

Dependency-neutral so both the language layer (condition-mask
memoization in :class:`~repro.lang.refinement.RefinementOperator`) and
the engine layer (dataset and job-result caches) can use it without the
language layer depending on the engine.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of one :class:`LRUCache`."""

    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Thread-safe least-recently-used mapping with a hard size bound."""

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            # A bad bound is a programming error, not a mining failure, so
            # it stays outside the ReproError taxonomy (see repro.errors).
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._data.clear()

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(self._hits, self._misses, self._evictions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LRUCache(len={len(self)}, maxsize={self.maxsize})"
