"""JobStore: durable job records, validation, and the generation counter."""

import pytest

from repro.errors import EngineError
from repro.store import RECORD_SCHEMA, JobStore


def _doc(job_id="j-1", state="done", seq=0, **extra):
    doc = {
        "schema": RECORD_SCHEMA,
        "job_id": job_id,
        "state": state,
        "seq": seq,
        "tenant": None,
        "tenant_share": 1.0,
        "submitted_at": 0.0,
        "updated_at": 0.0,
        "job": {"dataset": "synthetic"},
        "result": None,
        "error": None,
    }
    doc.update(extra)
    return doc


class TestRecords:
    def test_put_get_roundtrip(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.put(_doc("j-1"))
            assert store.get("j-1")["job_id"] == "j-1"
            assert store.get("nope") is None
            assert "j-1" in store and len(store) == 1

    def test_records_sorted_by_seq(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.put(_doc("j-3", seq=2))
            store.put(_doc("j-1", seq=0))
            store.put(_doc("j-2", seq=1))
            assert [d["job_id"] for d in store.records()] == ["j-1", "j-2", "j-3"]

    def test_survives_reopen(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.put(_doc("j-1", state="queued"))
            store.put(_doc("j-1", state="done"))
            store.put(_doc("j-2", state="failed", seq=1))
            store.delete("j-2")
        with JobStore(tmp_path) as reopened:
            assert [d["job_id"] for d in reopened.records()] == ["j-1"]
            assert reopened.get("j-1")["state"] == "done"

    def test_rejects_malformed_documents(self, tmp_path):
        with JobStore(tmp_path) as store:
            with pytest.raises(EngineError):
                store.put({"job_id": "j-1"})  # no schema
            with pytest.raises(EngineError):
                store.put(_doc(state="sideways"))  # unknown state
            bad = _doc()
            bad.pop("job_id")
            with pytest.raises(EngineError):
                store.put(bad)


class TestGeneration:
    def test_monotone_across_reopens(self, tmp_path):
        with JobStore(tmp_path) as store:
            first = store.next_generation()
            second = store.next_generation()
        with JobStore(tmp_path) as reopened:
            third = reopened.next_generation()
        assert first < second < third

    def test_corrupt_meta_restarts_counting(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.next_generation()
            store.meta_path.write_text("{not json")
            # Corruption is tolerated, not fatal: counting restarts.
            assert isinstance(store.next_generation(), int)

    def test_belief_dir_is_inside_the_store(self, tmp_path):
        with JobStore(tmp_path) as store:
            assert store.belief_dir == tmp_path / "beliefs"
