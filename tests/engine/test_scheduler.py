"""Scheduler acceptance: deterministic ordering and observable decisions.

The service must dispatch queued jobs by (priority desc, deadline asc,
arrival asc) — never by pool FIFO luck — and every decision (queued,
dispatched, cache_hit, coalesced, promoted, cancelled, expired) must be
observable through ``repro.events``. Cancel-while-queued and deadline
expiry are deterministic terminal states.
"""

import concurrent.futures

import pytest

from repro.engine.jobs import MiningJob
from repro.engine.service import JobStatus, MiningService
from repro.errors import DeadlineExpired, EngineError
from repro.events import EventLog
from repro.search.config import SearchConfig
from repro.spec import MiningSpec

FAST = SearchConfig(beam_width=6, max_depth=2, top_k=10)
#: A noticeably slower job, used to keep a one-worker pool busy while
#: the queue fills up.
SLOW = SearchConfig(beam_width=40, max_depth=4, top_k=150)


def _job(seed=0, config=FAST, **kwargs):
    return MiningJob(dataset="synthetic", seed=seed, config=config, **kwargs)


def _dispatch_order(log: EventLog) -> list[str]:
    return [e.job_id for e in log.schedule if e.kind == "dispatched"]


class TestJobScheduleFields:
    def test_priority_and_deadline_do_not_change_the_fingerprint(self):
        base = _job()
        assert base.fingerprint() == _job(priority=7, deadline=10.0).fingerprint()
        assert "priority" not in base.spec()

    def test_with_schedule(self):
        job = _job().with_schedule(priority=4, deadline=9.0)
        assert (job.priority, job.deadline) == (4, 9.0)
        assert job.with_schedule().priority == 4
        assert job.with_schedule(deadline=None).deadline is None

    def test_invalid_schedule_terms_rejected(self):
        with pytest.raises(EngineError):
            _job(priority="high")
        with pytest.raises(EngineError):
            _job(deadline=-1.0)
        with pytest.raises(EngineError):
            _job(deadline=float("nan"))
        with pytest.raises(EngineError):  # typed, not a raw ValueError
            _job(deadline="soon")
        with pytest.raises(EngineError):  # typed, not a raw TypeError
            _job(deadline=[1])

    def test_spec_round_trips_schedule_terms(self):
        spec = MiningSpec.build(
            "synthetic", priority=3, deadline=5.0, beam_width=6, max_depth=2, top_k=10
        )
        job = spec.to_job()
        assert (job.priority, job.deadline) == (3, 5.0)
        lifted = MiningSpec.from_job(job)
        assert (lifted.executor.priority, lifted.executor.deadline) == (3, 5.0)
        rebuilt = MiningSpec.from_dict(spec.to_dict())
        assert rebuilt.executor.priority == 3
        # Scheduling terms never change *what* is computed.
        assert spec.fingerprint() == MiningSpec.build(
            "synthetic", beam_width=6, max_depth=2, top_k=10
        ).fingerprint()

    def test_job_json_round_trips_schedule_terms(self):
        from repro.persist import job_from_dict, job_to_dict

        job = _job(priority=2, deadline=30.0)
        assert job_from_dict(job_to_dict(job)) == job

    def test_batch_file_schedule_validation_is_loud(self):
        from repro.errors import ReproError
        from repro.persist import job_from_dict

        # The serialization path must not silently coerce what direct
        # construction rejects (2.7 -> 2, True -> 1).
        for bad in ({"priority": 2.7}, {"priority": True}, {"deadline": "soon"}):
            with pytest.raises(ReproError):
                job_from_dict({"dataset": "synthetic", **bad})


class TestDeterministicOrdering:
    def test_priority_then_deadline_then_arrival(self):
        log = EventLog()
        with MiningService(max_workers=1, backend="thread", observer=log) as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            # Submitted in scrambled order while the worker is busy; all
            # deadlines are generous enough never to expire.
            plain_first = service.submit(_job(seed=1))
            late_deadline = service.submit(_job(seed=2, deadline=600.0))
            high = service.submit(_job(seed=3, priority=5))
            early_deadline = service.submit(_job(seed=4, deadline=60.0))
            plain_second = service.submit(_job(seed=5))
            service.wait_all()
        assert _dispatch_order(log) == [
            blocker,
            high,            # highest priority
            early_deadline,  # then earliest deadline
            late_deadline,
            plain_first,     # then arrival order among the deadline-free
            plain_second,
        ]
        # Reordering never loses work: everything ran to completion.
        assert set(service.jobs().values()) == {JobStatus.DONE}

    def test_every_submission_emits_a_queued_event(self):
        log = EventLog()
        with MiningService(max_workers=2, backend="thread", observer=log) as service:
            ids = [service.submit(_job(seed=s)) for s in range(3)]
            service.wait_all()
        queued = [e.job_id for e in log.schedule if e.kind == "queued"]
        assert queued == ids

    def test_serial_backend_emits_schedule_events(self):
        log = EventLog()
        with MiningService(backend="serial", observer=log) as service:
            job_id = service.submit(_job())
            dup_id = service.submit(_job(name="again"))
        kinds = [(e.job_id, e.kind) for e in log.schedule]
        assert (job_id, "dispatched") in kinds
        assert (dup_id, "cache_hit") in kinds


class TestCancelWhileQueued:
    def test_cancel_is_deterministic_and_observable(self):
        log = EventLog()
        with MiningService(max_workers=1, backend="thread", observer=log) as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            victim = service.submit(_job(seed=9))
            assert service.status(victim) == JobStatus.PENDING
            assert service.cancel(victim) is True
            assert service.status(victim) == JobStatus.CANCELLED
            with pytest.raises(concurrent.futures.CancelledError):
                service.result(victim)
            assert service.cancel(victim) is False  # already terminal
            service.result(blocker)
        assert [e.job_id for e in log.schedule if e.kind == "cancelled"] == [victim]
        assert victim not in _dispatch_order(log)

    def test_running_job_cannot_be_cancelled(self):
        with MiningService(max_workers=1, backend="thread") as service:
            job_id = service.submit(_job())
            service.result(job_id)
            assert service.cancel(job_id) is False


class TestDeadlineExpiry:
    def test_expired_job_is_terminal_and_observable(self):
        log = EventLog()
        with MiningService(max_workers=1, backend="thread", observer=log) as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            doomed = service.submit(_job(seed=9, deadline=0.0))
            service.wait_all()
            assert service.status(doomed) == JobStatus.EXPIRED
            with pytest.raises(DeadlineExpired, match="deadline"):
                service.result(doomed)
            service.result(blocker)
        assert [e.job_id for e in log.schedule if e.kind == "expired"] == [doomed]
        assert doomed not in _dispatch_order(log)

    def test_status_query_expires_an_overdue_queued_job(self):
        with MiningService(max_workers=1, backend="thread") as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            doomed = service.submit(_job(seed=9, deadline=0.0))
            # The worker is still busy; the status query itself must
            # observe the expiry rather than reporting PENDING forever.
            assert service.status(doomed) == JobStatus.EXPIRED
            service.result(blocker)

    def test_serial_backend_honors_an_already_expired_deadline(self):
        with MiningService(backend="serial") as service:
            doomed = service.submit(_job(deadline=0.0))
            assert service.status(doomed) == JobStatus.EXPIRED
            with pytest.raises(DeadlineExpired):
                service.result(doomed)

    def test_generous_deadline_runs_normally(self):
        with MiningService(backend="serial") as service:
            job_id = service.submit(_job(deadline=600.0))
            assert service.status(job_id) == JobStatus.DONE
            assert service.result(job_id).iterations


class TestCoalescing:
    def test_inflight_duplicate_runs_once_and_both_get_the_result(self):
        log = EventLog()
        with MiningService(max_workers=1, backend="thread", observer=log) as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            first = service.submit(_job(seed=7, name="first"))
            twin = service.submit(_job(seed=7, name="twin"))
            result_first = service.result(first)
            result_twin = service.result(twin)
            service.result(blocker)
        assert result_first is result_twin  # one mining run, shared result
        assert service.status(twin) == JobStatus.DONE
        coalesced = [e for e in log.schedule if e.kind == "coalesced"]
        assert [e.job_id for e in coalesced] == [twin]
        assert first in coalesced[0].detail
        assert twin not in _dispatch_order(log)

    def test_higher_priority_duplicate_boosts_the_queued_primary(self):
        log = EventLog()
        with MiningService(max_workers=1, backend="thread", observer=log) as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            primary = service.submit(_job(seed=7))           # priority 0
            rival = service.submit(_job(seed=8, priority=5))
            urgent_twin = service.submit(_job(seed=7, priority=9, name="urgent"))
            service.wait_all()
        order = _dispatch_order(log)
        # The boosted primary (priority 9 via its twin) overtakes the
        # priority-5 rival.
        assert order == [blocker, primary, rival]

    def test_cancelling_the_primary_promotes_the_duplicate(self):
        log = EventLog()
        with MiningService(max_workers=1, backend="thread", observer=log) as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            primary = service.submit(_job(seed=7, name="original"))
            twin = service.submit(_job(seed=7, name="survivor"))
            assert service.cancel(primary) is True
            result = service.result(twin)
            service.result(blocker)
        assert result.iterations
        assert service.status(primary) == JobStatus.CANCELLED
        assert service.status(twin) == JobStatus.DONE
        promoted = [e for e in log.schedule if e.kind == "promoted"]
        assert [e.job_id for e in promoted] == [twin]
        assert twin in _dispatch_order(log)

    def test_coalesced_duplicate_deadline_is_still_enforced(self):
        log = EventLog()
        with MiningService(max_workers=1, backend="thread", observer=log) as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            primary = service.submit(_job(seed=7))  # queued behind the blocker
            doomed_twin = service.submit(_job(seed=7, deadline=0.0, name="late"))
            # The shared work has not started, so the duplicate's
            # "must start by" budget still applies.
            assert service.status(doomed_twin) == JobStatus.EXPIRED
            with pytest.raises(DeadlineExpired):
                service.result(doomed_twin)
            # The primary is unaffected and still serves its own client.
            assert service.result(primary).iterations
            service.result(blocker)
        assert [e.job_id for e in log.schedule if e.kind == "expired"] == [
            doomed_twin
        ]

    def test_coalesced_duplicate_with_generous_deadline_rides_along(self):
        with MiningService(max_workers=1, backend="thread") as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            primary = service.submit(_job(seed=7))
            twin = service.submit(_job(seed=7, deadline=600.0, name="patient"))
            assert service.result(twin, timeout=120) is service.result(primary)
            service.result(blocker)

    def test_duplicate_deadline_tightens_the_primary_ordering(self):
        log = EventLog()
        with MiningService(max_workers=1, backend="thread", observer=log) as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            primary = service.submit(_job(seed=7))               # no deadline
            rival = service.submit(_job(seed=8, deadline=600.0))
            urgent_twin = service.submit(
                _job(seed=7, deadline=60.0, name="urgent")
            )
            service.wait_all()
        # The twin's 60s deadline transferred to its queued primary,
        # which now outranks the 600s rival; without the transfer the
        # deadline-free primary would sort last and the twin could
        # expire while 'earlier deadline' work waited.
        assert _dispatch_order(log) == [blocker, primary, rival]
        assert service.status(urgent_twin) == JobStatus.DONE

    def test_cancelling_a_duplicate_leaves_the_primary_running(self):
        with MiningService(max_workers=1, backend="thread") as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            primary = service.submit(_job(seed=7))
            twin = service.submit(_job(seed=7, name="twin"))
            assert service.cancel(twin) is True
            assert service.result(primary).iterations
            with pytest.raises(concurrent.futures.CancelledError):
                service.result(twin)
            service.result(blocker)


class TestLiveReporting:
    def test_live_reporter_prints_scheduling_decisions(self):
        import io

        from repro.report.live import LiveReporter

        out = io.StringIO()
        with MiningService(
            backend="serial", observer=LiveReporter(out)
        ) as service:
            job_id = service.submit(_job())
        text = out.getvalue()
        assert f"~ {job_id} queued" in text
        assert f"~ {job_id} dispatched" in text


class TestShutdownSemantics:
    def test_result_waiter_wakes_at_the_deadline(self):
        import time as _time

        with MiningService(max_workers=1, backend="thread") as service:
            # A genuinely slow blocker (crime takes seconds; synthetic
            # can finish in milliseconds and release the slot too soon).
            blocker = service.submit(
                MiningJob(
                    dataset="crime",
                    config=SearchConfig(beam_width=40, max_depth=3, top_k=150),
                )
            )
            doomed = service.submit(_job(seed=9, deadline=0.05))
            started = _time.monotonic()
            # The worker stays busy far longer than 50ms; the waiter
            # must be released by the deadline, not by a freed slot.
            with pytest.raises(DeadlineExpired):
                service.result(doomed, timeout=30)
            assert _time.monotonic() - started < 2
            service.result(blocker)

    def test_submit_after_shutdown_fails_the_record_not_the_scheduler(self):
        service = MiningService(max_workers=1, backend="thread")
        service.shutdown(wait=True)
        job_id = service.submit(_job())
        assert service.status(job_id) == JobStatus.FAILED
        with pytest.raises(RuntimeError):  # the pool's shutdown error
            service.result(job_id)
        # The scheduler is not wedged: shutdown again returns promptly
        # (a leaked live record would block the graceful drain forever).
        service.shutdown(wait=True)

    def test_graceful_shutdown_drains_the_queue(self):
        service = MiningService(max_workers=1, backend="thread")
        ids = [service.submit(_job(seed=s)) for s in range(3)]
        service.shutdown(wait=True)
        assert all(service.status(i) == JobStatus.DONE for i in ids)

    def test_abrupt_shutdown_cancels_queued_jobs(self):
        log = EventLog()
        service = MiningService(max_workers=1, backend="thread", observer=log)
        blocker = service.submit(_job(config=SLOW, n_iterations=2))
        queued = service.submit(_job(seed=9))
        service.shutdown(wait=False)
        assert service.status(queued) == JobStatus.CANCELLED
        cancelled = [e for e in log.schedule if e.kind == "cancelled"]
        assert any(e.job_id == queued and "shutdown" in e.detail for e in cancelled)
        # The blocker was already running; let it finish for a clean exit.
        service.result(blocker)


class TestAgingStarvationGuard:
    """Long-queued low-priority jobs must eventually outrank fresh load.

    The blocker is held open deterministically: its per-job observer
    blocks the worker thread on an Event until the queue is arranged, so
    these tests do not depend on mining speed.
    """

    @staticmethod
    def _gated_blocker(service, gate):
        from repro.events import CallbackObserver

        return service.submit(
            _job(seed=777),
            observer=CallbackObserver(on_iteration=lambda _: gate.wait(10)),
        )

    def test_aged_job_dispatches_ahead_of_younger_high_priority_work(self):
        import threading
        import time

        gate = threading.Event()
        log = EventLog()
        with MiningService(
            max_workers=1, backend="thread", observer=log, aging_seconds=0.01
        ) as service:
            blocker = self._gated_blocker(service, gate)
            starved = service.submit(_job(seed=1, priority=0))
            # By the time the high-priority burst arrives, the starved
            # job has earned well over 5 aging levels.
            time.sleep(0.2)
            burst = [
                service.submit(_job(seed=10 + s, priority=5)) for s in range(2)
            ]
            gate.set()
            service.wait_all()
        order = _dispatch_order(log)
        assert order[0] == blocker
        assert order.index(starved) < min(order.index(b) for b in burst)
        aged = [e for e in log.schedule if e.kind == "aged"]
        assert any(e.job_id == starved for e in aged)
        assert all("priority after" in e.detail for e in aged)
        assert set(service.jobs().values()) == {JobStatus.DONE}

    def test_aging_disabled_preserves_strict_priority_order(self):
        import threading
        import time

        gate = threading.Event()
        log = EventLog()
        with MiningService(
            max_workers=1, backend="thread", observer=log, aging_seconds=None
        ) as service:
            blocker = self._gated_blocker(service, gate)
            starved = service.submit(_job(seed=1, priority=0))
            time.sleep(0.2)
            high = service.submit(_job(seed=2, priority=5))
            gate.set()
            service.wait_all()
        order = _dispatch_order(log)
        assert order == [blocker, high, starved]
        assert not [e for e in log.schedule if e.kind == "aged"]

    def test_invalid_aging_seconds_rejected(self):
        for bad in (0, -1, float("nan")):
            with pytest.raises(EngineError):
                MiningService(backend="thread", aging_seconds=bad)

    def test_aging_leaves_deadline_semantics_alone(self):
        # Aging boosts ordering only: the aged job still runs, and its
        # own deadline (generous here) is what governs expiry.
        import threading
        import time

        gate = threading.Event()
        log = EventLog()
        with MiningService(
            max_workers=1, backend="thread", observer=log, aging_seconds=0.01
        ) as service:
            self._gated_blocker(service, gate)
            aged = service.submit(_job(seed=1, deadline=600.0))
            time.sleep(0.05)
            gate.set()
            service.wait_all()
        assert service.status(aged) == JobStatus.DONE
