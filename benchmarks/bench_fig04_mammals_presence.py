"""Fig. 4: presence maps/statistics of the top species of mammal pattern 1.

The paper shows the wood mouse, mountain hare and moose maps; our check
is structural — the top species' prevalence differs strongly inside vs
outside the cold-March pattern.
"""

from repro.experiments.mammals_exp import run_fig4


def bench_fig4_mammals_presence(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig4, args=(0,), kwargs={"n_species": 3}, rounds=1, iterations=1
    )
    save_result("fig04_mammals_presence", result.format(with_maps=True))
    for species in result.species:
        assert abs(species.prevalence_inside - species.prevalence_outside) > 0.4
