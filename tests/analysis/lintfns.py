"""Tiny shared assertions for the lint-rule tests."""

from __future__ import annotations

from repro.analysis import LintReport


def rule_ids(report: LintReport) -> list[str]:
    """The rule ids fired by a report, in report order."""
    return [finding.rule for finding in report.findings]
