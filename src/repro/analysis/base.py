"""The lint-rule contract and the :data:`RULES` registry.

Rules are small ``ast`` visitors registered by id in :data:`RULES` —
the same string-keyed :class:`repro.registry.Registry` idiom that backs
``MODELS``/``MEASURES``/``SEARCHES``, so third-party rule packs extend
the linter exactly the way new datasets extend the miner::

    from repro.analysis import LintRule, register_rule

    @register_rule
    class NoFooRule(LintRule):
        '''FOO001: don't call foo() — one paragraph of *why*.

        The docstring IS the documentation: ``sisd lint --explain
        FOO001`` prints it, and the README rules table is generated
        from its first line.
        '''

        rule_id = "FOO001"
        title = "don't call foo()"

        def check(self, source):
            ...yield self.finding(source, node, "message")

A rule limits where it fires with :attr:`LintRule.applies_to` — path
patterns matched against the forward-slash display path. A pattern
ending in ``/`` matches any file under that directory; anything else
matches as a path suffix. An empty tuple means every file.
"""

from __future__ import annotations

import ast
import inspect
from typing import Iterable, Type

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile
from repro.errors import AnalysisError
from repro.registry import Registry

__all__ = ["LintRule", "RULES", "register_rule", "path_matches"]

#: Registered lint rules, keyed by rule id (``DET001``, ``ASY002``...).
RULES = Registry("lint rule", error=AnalysisError)


def path_matches(display_path: str, patterns: tuple[str, ...]) -> bool:
    """True when ``display_path`` matches any pattern (empty = all).

    Patterns use forward slashes. ``repro/store/`` matches every file
    in or under a ``repro/store`` directory; ``engine/cache.py``
    matches as a path suffix.
    """
    if not patterns:
        return True
    for pattern in patterns:
        if pattern.endswith("/"):
            if f"/{pattern}" in f"/{display_path}":
                return True
        elif display_path == pattern or display_path.endswith("/" + pattern):
            return True
    return False


class LintRule:
    """Base class of one statically checked contract.

    Subclasses set :attr:`rule_id` and :attr:`title`, implement
    :meth:`check`, and write a docstring explaining the invariant —
    that docstring is what ``sisd lint --explain RULE`` prints.
    """

    rule_id: str = ""
    title: str = ""
    #: Display-path patterns this rule fires on; empty = every file.
    applies_to: tuple[str, ...] = ()

    def applies(self, source: SourceFile) -> bool:
        """True when this rule should run on ``source`` at all."""
        return path_matches(source.display_path, self.applies_to)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``source``."""
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` in ``source``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.rule_id,
            path=source.display_path,
            line=line,
            col=col,
            message=message,
            snippet=source.line(line).strip(),
        )

    @classmethod
    def explain(cls) -> str:
        """The rule's documentation (its cleaned docstring)."""
        doc = inspect.getdoc(cls)
        return doc or f"{cls.rule_id}: (no documentation)"

    @classmethod
    def summary(cls) -> str:
        """First docstring line — the README/``--rules`` table entry."""
        return cls.explain().splitlines()[0].strip()


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: register ``cls`` in :data:`RULES` by its id."""
    if not cls.rule_id:
        raise AnalysisError(f"{cls.__name__} must set rule_id before registration")
    RULES.register(cls.rule_id, cls)
    return cls
