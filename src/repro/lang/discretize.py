"""Split-point computation for numeric and ordinal attributes.

The paper's search settings (§III): "descriptions on numerical metadata
are based on >= and <= relations with four split points (1/5-4/5
percentiles)". :func:`split_points` implements that default and two
alternatives (equal-width bins, all distinct ordinal levels) used by the
beam-parameter ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import AttributeKind, Column
from repro.errors import LanguageError


def split_points(
    column: Column,
    *,
    n_split_points: int = 4,
    strategy: str = "percentile",
) -> np.ndarray:
    """Candidate thresholds for inequality conditions on ``column``.

    Parameters
    ----------
    column:
        A numeric or ordinal column.
    n_split_points:
        Number of thresholds for the ``percentile``/``width`` strategies
        (the paper uses 4 -> 20/40/60/80th percentiles). Ignored for
        ``levels``.
    strategy:
        - ``percentile``: evenly spaced interior percentiles (default);
        - ``width``: evenly spaced values between min and max;
        - ``levels``: every distinct value (natural for ordinal data).

    Returns
    -------
    numpy.ndarray
        Sorted thresholds, each strictly inside the column's value range
        (thresholds at the extremes would yield conditions that are
        trivially true in one direction), deduplicated by *extension
        equivalence*: two thresholds with no data value between them
        induce the same ``<=`` and the same ``>=`` row sets, so only the
        smallest threshold of each equivalence class is kept (an
        order-preserving, deterministic collapse). On constant or
        low-cardinality columns this is what stops the beam from scoring
        the same subgroup once per redundant threshold.

    Notes
    -----
    Ordinal columns always use their distinct levels regardless of
    ``strategy``: percentiles of a column holding the levels 0/1/3/5
    would fabricate thresholds like 2.6 that no expert coded.
    """
    if not column.kind.is_orderable:
        raise LanguageError(
            f"split points undefined for {column.kind.value} attribute {column.name!r}"
        )
    if n_split_points < 1:
        raise LanguageError(f"n_split_points must be >= 1, got {n_split_points}")

    values = column.values
    if not np.all(np.isfinite(values)):
        # Column validation normally guarantees this; a loud error beats
        # the silent empty threshold set NaN comparisons would produce.
        raise LanguageError(
            f"column {column.name!r} has NaN/inf values; split points undefined"
        )
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        return np.empty(0)

    if column.kind is AttributeKind.ORDINAL or strategy == "levels":
        candidates = np.unique(values)
    elif strategy == "percentile":
        qs = 100.0 * np.arange(1, n_split_points + 1) / (n_split_points + 1)
        candidates = np.percentile(values, qs)
    elif strategy == "width":
        candidates = np.linspace(lo, hi, n_split_points + 2)[1:-1]
    else:
        raise LanguageError(f"unknown split strategy {strategy!r}")

    unique = np.unique(candidates)
    # Keep thresholds that split the data: strictly above the minimum for
    # "<=" usefulness is not required (x <= lo selects the minimum rows),
    # but thresholds outside (lo, hi] on both sides are useless.
    unique = unique[(unique >= lo) & (unique <= hi)]
    if unique.shape[0] <= 1:
        return unique
    # Extension-equivalence collapse. "x <= t" selects by how many values
    # fall at or below t, "x >= t" by how many fall strictly below — both
    # monotone in t, so thresholds sharing the (count_le, count_lt) pair
    # induce identical masks in *both* directions. Keep the first (the
    # smallest) threshold of each class; order is preserved by re-sorting
    # the surviving indices.
    ordered = np.sort(values)
    count_le = np.searchsorted(ordered, unique, side="right")
    count_lt = np.searchsorted(ordered, unique, side="left")
    keys = np.stack([count_le, count_lt], axis=1)
    _, first = np.unique(keys, axis=0, return_index=True)
    return unique[np.sort(first)]
