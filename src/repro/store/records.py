"""The durable job store: one directory holding everything a service owns.

Layout of a store root::

    <root>/records.db    sqlite compaction target (full record table)
    <root>/wal.jsonl     append-only journal of record mutations
    <root>/meta.json     server metadata (stream-generation counter)
    <root>/beliefs/      content-addressed belief-prefix spill

Record documents reuse the repo's existing wire vocabulary — jobs via
:func:`repro.persist.job_to_dict`, results via
:func:`repro.persist.job_result_to_dict`, errors via the
``{"type", "message"}`` shape of :func:`repro.server.wire.error_to_wire`
— so a stored record is exactly what the HTTP layer would have sent,
and restoring one is bit-identical by construction.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any

from repro.errors import EngineError
from repro.store.wal import DurableLog

__all__ = ["JobStore", "RECORD_SCHEMA"]

#: Version stamp on every stored record document.
RECORD_SCHEMA = 1

#: Record states the service may persist.
_STATES = ("queued", "running", "done", "failed", "cancelled", "expired")


class JobStore:
    """Durable table of scheduler records, keyed by job id.

    Thin policy layer over :class:`~repro.store.wal.DurableLog`: it pins
    the directory layout, validates record documents on the way in, and
    owns the server's restart *generation* counter (``meta.json``).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        compact_every: int = 64,
        fsync: bool = True,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._log = DurableLog(
            self.root / "records.db",
            self.root / "wal.jsonl",
            compact_every=compact_every,
            fsync=fsync,
        )
        self._meta_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Records
    # ------------------------------------------------------------------ #
    def put(self, doc: dict[str, Any]) -> None:
        """Durably upsert one record document (keyed by its job id)."""
        if doc.get("schema") != RECORD_SCHEMA:
            raise EngineError(
                f"record document must carry schema={RECORD_SCHEMA}, "
                f"got {doc.get('schema')!r}"
            )
        job_id = doc.get("job_id")
        if not job_id:
            raise EngineError("record document is missing job_id")
        if doc.get("state") not in _STATES:
            raise EngineError(f"record state {doc.get('state')!r} is not storable")
        self._log.put(str(job_id), doc)

    def get(self, job_id: str) -> dict[str, Any] | None:
        """The stored record for ``job_id``, or ``None``."""
        return self._log.get(str(job_id))

    def delete(self, job_id: str) -> None:
        """Durably forget ``job_id`` (a no-op if absent)."""
        self._log.delete(str(job_id))

    def records(self) -> list[dict[str, Any]]:
        """Every stored record, ordered by submission sequence number."""
        docs = list(self._log.snapshot().values())
        docs.sort(key=lambda doc: (doc.get("seq", 0), doc.get("job_id", "")))
        return docs

    def __len__(self) -> int:
        return len(self._log)

    def __contains__(self, job_id: str) -> bool:
        return str(job_id) in self._log

    # ------------------------------------------------------------------ #
    # Server metadata
    # ------------------------------------------------------------------ #
    @property
    def meta_path(self) -> Path:
        return self.root / "meta.json"

    def next_generation(self) -> int:
        """Atomically advance and return the stream-generation counter.

        Each server process serving this store gets a distinct,
        monotonically increasing generation — the marker SSE clients use
        to tell a restart apart from sequence-number redelivery.
        """
        with self._meta_lock:
            meta: dict[str, Any] = {}
            try:
                meta = json.loads(self.meta_path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                pass
            except ValueError:
                pass  # corrupt meta: restart the counter rather than die
            if not isinstance(meta, dict):
                meta: dict[str, Any] = {}
            generation = int(meta.get("generation", 0)) + 1
            meta["generation"] = generation
            fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(meta, fh, separators=(",", ":"))
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.meta_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return generation

    # ------------------------------------------------------------------ #
    # Belief spill
    # ------------------------------------------------------------------ #
    @property
    def belief_dir(self) -> Path:
        """Directory for the content-addressed belief-prefix spill."""
        return self.root / "beliefs"

    # ------------------------------------------------------------------ #
    # Maintenance / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def pending_ops(self) -> int:
        return self._log.pending_ops

    def stats(self) -> dict[str, int]:
        """Operational counters for health reporting.

        ``records`` is every scheduler record held durably;
        ``journal_lag`` is the journal tail not yet folded into the
        sqlite snapshot (how much replay a crash right now would cost).
        """
        return {"records": len(self), "journal_lag": self.pending_ops}

    def compact(self) -> None:
        """Fold the journal tail into the sqlite snapshot now."""
        self._log.compact()

    def close(self) -> None:
        """Compact and release the underlying log (idempotent)."""
        self._log.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
