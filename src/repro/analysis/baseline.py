"""Baseline files: grandfather existing findings without silencing rules.

A baseline is the escape hatch for *adopting* a new rule on an old
tree: every current finding is recorded by its line-number-independent
fingerprint, the CI gate goes green, and only *new* violations fail
from then on. Policy (see README): a baseline entry is a debt marker —
code this repo ships should fix the finding or carry an inline
``# sisd: ignore[RULE]`` with a reason, not live in the baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import REPORT_SCHEMA, Finding
from repro.errors import AnalysisError

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

#: One baseline entry: (rule, path, fingerprint).
BaselineKey = tuple[str, str, str]


def _key(entry: dict) -> BaselineKey:
    try:
        return (str(entry["rule"]), str(entry["path"]), str(entry["fingerprint"]))
    except (KeyError, TypeError) as exc:
        raise AnalysisError(f"malformed baseline entry {entry!r}") from exc


def load_baseline(path: str | Path) -> set[BaselineKey]:
    """Read a baseline file into its set of grandfathered keys."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or not isinstance(
        document.get("findings"), list
    ):
        raise AnalysisError(
            f"baseline {path} must be an object with a 'findings' list"
        )
    schema = document.get("schema", REPORT_SCHEMA)
    if schema != REPORT_SCHEMA:
        raise AnalysisError(
            f"unsupported baseline schema {schema!r} (expected {REPORT_SCHEMA})"
        )
    return {_key(entry) for entry in document["findings"]}


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    """Write the current findings as a baseline (sorted, reviewable)."""
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "fingerprint": finding.fingerprint,
            "snippet": finding.snippet,
        }
        for finding in sorted(findings, key=lambda f: f.sort_key)
    ]
    document = {"schema": REPORT_SCHEMA, "findings": entries}
    payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
    try:
        Path(path).write_text(payload, encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot write baseline {path}: {exc}") from exc


def apply_baseline(
    findings: Iterable[Finding], baseline: set[BaselineKey]
) -> tuple[list[Finding], int]:
    """Split findings into (new, grandfathered-count)."""
    kept: list[Finding] = []
    grandfathered = 0
    for finding in findings:
        if (finding.rule, finding.path, finding.fingerprint) in baseline:
            grandfathered += 1
        else:
            kept.append(finding)
    return kept, grandfathered
