"""MiningRouter federation: routing, tagging, SSE relay, failover.

Two real MiningServer replicas behind a real router, all on ephemeral
ports; the stock :class:`~repro.client.RemoteWorkspace` talks to the
router exactly as it would to a single server.
"""

import re
import time

import pytest

from repro.client import RemoteError, RemoteWorkspace
from repro.dist.executor import DistExecutor
from repro.dist.router import MiningRouter
from repro.server import MiningServer
from repro.spec import MiningSpec

TAGGED_ID = re.compile(r"^job-\d+@r[01]$")


def _spec(seed, iterations=2):
    return MiningSpec.build(
        "synthetic",
        n_iterations=iterations,
        beam_width=4,
        max_depth=2,
        top_k=8,
        seed=seed,
    )


@pytest.fixture(scope="module")
def federation():
    """(router, router_handle, replica_handles): 2 replicas + router."""
    replicas = [
        MiningServer(port=0, backend="thread", max_workers=2).run_in_thread()
        for _ in range(2)
    ]
    router = MiningRouter(
        [handle.url for handle in replicas],
        check_interval=0.3,
        probe_timeout=10.0,
    )
    router_handle = router.run_in_thread()
    yield router, router_handle, replicas
    router_handle.stop()
    for handle in replicas:
        handle.stop()


@pytest.fixture(scope="module")
def routed(federation):
    _, router_handle, _ = federation
    return RemoteWorkspace(router_handle.url, timeout=60.0)


class TestHealth:
    def test_document_shape(self, federation, routed):
        doc = routed.health()
        assert doc["role"] == "router"
        assert doc["status"] == "ok"
        assert doc["ring"]["nodes"] == 2
        names = [replica["name"] for replica in doc["replicas"]]
        assert names == ["r0", "r1"]
        assert all(replica["healthy"] for replica in doc["replicas"])
        assert all(replica["generation"] for replica in doc["replicas"])
        assert set(doc["router"]) == {"submitted", "forwarded", "rebalances"}


class TestRouting:
    def test_submit_status_result_through_router(self, routed):
        job_id = routed.submit(_spec(0))
        assert TAGGED_ID.match(job_id), job_id
        result = routed.result(job_id, timeout=60.0)
        assert result is not None  # decoded JobResult, not a raw document
        assert routed.status(job_id).value == "done"

    def test_same_spec_lands_on_same_replica(self, routed):
        first = routed.submit(_spec(1))
        second = routed.submit(_spec(1))
        assert first.rpartition("@")[2] == second.rpartition("@")[2]

    def test_routed_result_document_matches_direct(self, federation, routed):
        router, _, replicas = federation
        job_id = routed.submit(_spec(2))
        routed.result(job_id, timeout=60.0)
        local_id, _, name = job_id.rpartition("@")
        replica_url = replicas[int(name[1:])].url
        direct = RemoteWorkspace(replica_url, timeout=60.0)
        _, routed_doc = routed._request("GET", f"/jobs/{job_id}/result")
        _, direct_doc = direct._request("GET", f"/jobs/{local_id}/result")
        assert routed_doc["result"] == direct_doc["result"]

    def test_merged_listing_tags_every_job(self, routed):
        submitted = {routed.submit(_spec(seed)) for seed in (3, 4)}
        for job_id in submitted:
            routed.result(job_id, timeout=60.0)
        listing = routed.jobs()
        assert submitted <= set(listing)
        assert all("@" in job_id for job_id in listing)

    def test_cancel_route_forwards(self, routed):
        job_id = routed.submit(_spec(5))
        routed.result(job_id, timeout=60.0)
        assert routed.cancel(job_id) is False  # already finished

    def test_stream_through_router(self, routed):
        iterations = list(routed.stream(_spec(6, iterations=3)))
        assert len(iterations) == 3
        assert [it.index for it in iterations] == [1, 2, 3]

    def test_unknown_replica_tag_is_404(self, routed):
        with pytest.raises(RemoteError) as excinfo:
            routed.status("job-0001@zz")
        assert excinfo.value.status == 404

    def test_untagged_id_is_404(self, routed):
        with pytest.raises(RemoteError) as excinfo:
            routed.status("job-0001")
        assert excinfo.value.status == 404

    def test_bare_event_firehose_is_501(self, routed):
        with pytest.raises(RemoteError) as excinfo:
            routed._request("GET", "/events")
        assert excinfo.value.status == 501

    def test_unknown_route_is_404(self, routed):
        with pytest.raises(RemoteError) as excinfo:
            routed._request("GET", "/nope")
        assert excinfo.value.status == 404


class TestWorkerRegistry:
    def test_register_then_discover(self, federation, routed, worker_pair):
        _, router_handle, _ = federation
        for url in worker_pair:
            _, doc = routed._request(
                "POST", "/workers/register", {"url": url}
            )
            assert doc["registered"] == url
        _, doc = routed._request("GET", "/workers")
        assert set(worker_pair) <= set(doc["workers"])
        # The executor bootstraps its node list from the router alone.
        with DistExecutor(registry=router_handle.url) as executor:
            assert executor.parallelism >= 2
            with executor.session(10) as session:
                assert session.map(_plus, [1, 2, 3]) == [11, 12, 13]
        assert executor.stats["shards_remote"] > 0

    def test_register_is_idempotent(self, routed, worker_pair):
        for _ in range(2):
            routed._request("POST", "/workers/register", {"url": worker_pair[0]})
        _, doc = routed._request("GET", "/workers")
        assert doc["workers"].count(worker_pair[0]) == 1

    def test_register_rejects_bad_body(self, routed):
        with pytest.raises(RemoteError) as excinfo:
            routed._request("POST", "/workers/register", {"url": "no-scheme"})
        assert excinfo.value.status == 400


def _plus(context, item):
    return context + item


class TestReplicaFailover:
    def test_dead_replica_503_then_survivor_takes_new_work(self):
        """Kill the owner: held ids answer 503, fresh submits rebalance."""
        replicas = [
            MiningServer(port=0, backend="thread", max_workers=2).run_in_thread()
            for _ in range(2)
        ]
        router = MiningRouter(
            [handle.url for handle in replicas],
            check_interval=0.2,
            probe_timeout=2.0,
        )
        router_handle = router.run_in_thread()
        live = []
        try:
            routed = RemoteWorkspace(router_handle.url, timeout=30.0)
            job_id = routed.submit(_spec(7))
            routed.result(job_id, timeout=60.0)
            owner = int(job_id.rpartition("@")[2][1:])
            replicas[owner].stop()
            live = [replicas[1 - owner]]
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                doc = routed.health()
                if not doc["replicas"][owner]["healthy"]:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("router never noticed the dead replica")
            assert doc["ring"]["nodes"] == 1
            with pytest.raises(RemoteError) as excinfo:
                routed.status(job_id)
            assert excinfo.value.status == 503
            # The identical spec now rebalances onto the survivor.
            moved = routed.submit(_spec(7))
            assert moved.rpartition("@")[2] == f"r{1 - owner}"
            routed.result(moved, timeout=60.0)
        finally:
            router_handle.stop()
            for handle in live:
                handle.stop()
