"""Multivariate normal utilities used by the background model.

Plain functions over (mean, covariance) pairs, plus conversions to the
natural parameterization (precision-mean ``h = Sigma^-1 mu`` and
precision ``J = Sigma^-1``). The paper's implementation note (§II-B)
updates natural parameters for numerical stability; we implement the
closed-form moment updates (they are exact) and expose the conversions
for interoperability and for the tests that verify both views agree.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import linalg as sla

from repro.errors import ModelError
from repro.utils.linalg import log_det_psd, symmetrize

LOG_2PI = math.log(2.0 * math.pi)


def validate_covariance(cov: np.ndarray, *, name: str = "cov") -> np.ndarray:
    """Check symmetry and positive-definiteness; return a float64 copy."""
    cov = np.asarray(cov, dtype=float)
    if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
        raise ModelError(f"{name} must be square, got shape {cov.shape}")
    if not np.allclose(cov, cov.T, atol=1e-8 * max(1.0, float(np.abs(cov).max()))):
        raise ModelError(f"{name} must be symmetric")
    try:
        np.linalg.cholesky(cov)
    except np.linalg.LinAlgError:
        raise ModelError(f"{name} must be positive definite") from None
    return symmetrize(cov)


def mvn_logpdf(x: np.ndarray, mean: np.ndarray, cov: np.ndarray) -> float:
    """Log density of a multivariate normal at a single point ``x``."""
    x = np.asarray(x, dtype=float)
    mean = np.asarray(mean, dtype=float)
    d = mean.shape[0]
    diff = x - mean
    try:
        factor = sla.cho_factor(cov, lower=True, check_finite=False)
        maha = float(diff @ sla.cho_solve(factor, diff, check_finite=False))
        logdet = 2.0 * float(np.sum(np.log(np.diag(factor[0]))))
    except (sla.LinAlgError, np.linalg.LinAlgError):
        # Semi-definite fallback: pseudo-inverse Mahalanobis, clipped logdet.
        maha = float(diff @ np.linalg.pinv(cov) @ diff)
        logdet = log_det_psd(cov)
    return -0.5 * (d * LOG_2PI + logdet + maha)


def natural_from_moment(mean: np.ndarray, cov: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Moment parameters -> natural parameters ``(h, J)``.

    ``J = Sigma^-1`` is the precision matrix and ``h = J mu`` the
    precision-adjusted mean; the density is
    ``p(y) proportional to exp(h'y - y'Jy/2)``.
    """
    cov = validate_covariance(cov)
    mean = np.asarray(mean, dtype=float)
    factor = sla.cho_factor(cov, lower=True, check_finite=False)
    precision = sla.cho_solve(factor, np.eye(cov.shape[0]), check_finite=False)
    precision = symmetrize(precision)
    return precision @ mean, precision


def moment_from_natural(h: np.ndarray, precision: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Natural parameters ``(h, J)`` -> moment parameters ``(mu, Sigma)``."""
    precision = validate_covariance(precision, name="precision")
    factor = sla.cho_factor(precision, lower=True, check_finite=False)
    cov = sla.cho_solve(factor, np.eye(precision.shape[0]), check_finite=False)
    cov = symmetrize(cov)
    return cov @ np.asarray(h, dtype=float), cov


def kl_divergence(
    mean_q: np.ndarray, cov_q: np.ndarray, mean_p: np.ndarray, cov_p: np.ndarray
) -> float:
    """KL(q || p) between two multivariate normals.

    Used by the tests that verify the Theorem 1/2 updates are indeed the
    KL-minimal distributions satisfying their constraints.
    """
    mean_q = np.asarray(mean_q, dtype=float)
    mean_p = np.asarray(mean_p, dtype=float)
    d = mean_q.shape[0]
    factor = sla.cho_factor(cov_p, lower=True, check_finite=False)
    cov_p_inv_cov_q = sla.cho_solve(factor, cov_q, check_finite=False)
    diff = mean_p - mean_q
    maha = float(diff @ sla.cho_solve(factor, diff, check_finite=False))
    return 0.5 * (
        float(np.trace(cov_p_inv_cov_q))
        + maha
        - d
        + log_det_psd(cov_p)
        - log_det_psd(cov_q)
    )
