"""Contract tests for the public API surface.

These keep the package honest as it grows: every name in ``__all__``
must resolve, every public module/class/function must carry a docstring,
and the headline entry points must be reachable from the top level.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

#: The checked-in snapshot of the public surface. Intentional API
#: changes must update this file (one name per line, sorted), which
#: makes every addition or removal an explicit, reviewable diff.
MANIFEST = Path(__file__).parent / "public_api_manifest.txt"


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name!r}"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_all_matches_checked_in_manifest(self):
        manifest = MANIFEST.read_text().split()
        assert manifest == sorted(manifest), "manifest must be sorted"
        assert sorted(repro.__all__) == manifest, (
            "repro.__all__ drifted from tests/public_api_manifest.txt; "
            "if the change is intentional, update the manifest"
        )

    def test_headline_entry_points(self):
        # The objects a user needs for the quickstart, reachable top-level.
        for name in (
            "Workspace",
            "MiningSpec",
            "SubgroupDiscovery",
            "load_dataset",
            "BackgroundModel",
            "SearchConfig",
            "MiningSession",
            "find_optimal_location",
        ):
            assert callable(getattr(repro, name))

    def test_registries_reachable_top_level(self):
        from repro.registry import Registry

        for name in ("DATASETS", "SEARCHES", "MODELS", "MEASURES"):
            assert isinstance(getattr(repro, name), Registry)

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


def _walk_public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        modules.append(importlib.import_module(info.name))
    return modules


ALL_MODULES = _walk_public_modules()


class TestDocumentation:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_has_docstring(self, module):
        assert module.__doc__, f"{module.__name__} lacks a module docstring"

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_callables_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not inspect.getdoc(obj):
                undocumented.append(name)
            elif inspect.isclass(obj):
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_") or not inspect.isfunction(method):
                        continue
                    if not inspect.getdoc(method):
                        undocumented.append(f"{name}.{method_name}")
        assert not undocumented, (
            f"{module.__name__}: undocumented public API: {undocumented}"
        )
