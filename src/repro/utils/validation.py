"""Argument validators shared across the library.

Validators convert inputs to float arrays, check shape/finiteness, and raise
``ValueError`` with the *argument name* in the message so errors surfacing
from deep inside the model point back at the caller's mistake.
"""

from __future__ import annotations

import numpy as np


def check_vector(x, name: str = "x", *, size: int | None = None) -> np.ndarray:
    """Validate a finite 1-D float vector; return it as ``float64``."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if size is not None and arr.shape[0] != size:
        raise ValueError(f"{name} must have length {size}, got {arr.shape[0]}")
    check_finite(arr, name)
    return arr


def check_matrix(x, name: str = "x", *, shape: tuple[int, int] | None = None) -> np.ndarray:
    """Validate a finite 2-D float matrix; return it as ``float64``."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if shape is not None and arr.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {arr.shape}")
    check_finite(arr, name)
    return arr


def check_square(x, name: str = "x", *, size: int | None = None) -> np.ndarray:
    """Validate a square matrix, optionally of a given size."""
    arr = check_matrix(x, name)
    if arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    if size is not None and arr.shape[0] != size:
        raise ValueError(f"{name} must be {size}x{size}, got {arr.shape}")
    return arr


def check_symmetric(x, name: str = "x", *, tol: float = 1e-8) -> np.ndarray:
    """Validate symmetry up to ``tol`` (absolute, relative to scale)."""
    arr = check_square(x, name)
    scale = max(1.0, float(np.abs(arr).max()))
    if not np.allclose(arr, arr.T, atol=tol * scale):
        raise ValueError(f"{name} must be symmetric within tolerance {tol}")
    return arr


def check_unit_vector(x, name: str = "w", *, tol: float = 1e-6) -> np.ndarray:
    """Validate that ``x`` is 1-D with Euclidean norm 1 up to ``tol``."""
    arr = check_vector(x, name)
    norm = float(np.linalg.norm(arr))
    if abs(norm - 1.0) > tol:
        raise ValueError(f"{name} must be a unit vector, got norm {norm:.6g}")
    return arr


def check_finite(x, name: str = "x") -> np.ndarray:
    """Raise if any entry is NaN or infinite."""
    arr = np.asarray(x)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite entries")
    return arr
