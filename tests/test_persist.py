"""Round-trip tests for JSON persistence."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.interest.si import PatternScore
from repro.lang.conditions import EqualsCondition, NumericCondition
from repro.lang.description import Description
from repro.model.background import BackgroundModel
from repro.model.patterns import LocationConstraint, SpreadConstraint
from repro.persist import (
    condition_from_dict,
    condition_to_dict,
    constraint_from_dict,
    constraint_to_dict,
    description_from_dict,
    description_to_dict,
    load_model,
    model_from_dict,
    model_to_dict,
    result_from_dict,
    result_to_dict,
    save_model,
)
from repro.search.results import LocationPatternResult, ScoredSubgroup, SpreadPatternResult


class TestConditionRoundTrip:
    def test_numeric(self):
        original = NumericCondition("x", "<=", 2.5)
        assert condition_from_dict(condition_to_dict(original)) == original

    def test_equals_string(self):
        original = EqualsCondition("region", "east")
        restored = condition_from_dict(condition_to_dict(original))
        assert restored == original

    def test_equals_binary_number(self):
        original = EqualsCondition("flag", 1.0)
        restored = condition_from_dict(condition_to_dict(original))
        assert restored == original
        assert isinstance(restored.value, float)

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError, match="unknown condition"):
            condition_from_dict({"type": "regex"})


class TestDescriptionRoundTrip:
    def test_mixed_conditions(self):
        original = Description(
            (
                NumericCondition("a", ">=", 1.0),
                EqualsCondition("b", "yes"),
                NumericCondition("a", "<=", 5.0),
            )
        )
        restored = description_from_dict(description_to_dict(original))
        assert restored == original

    def test_empty(self):
        assert description_from_dict(description_to_dict(Description())) == Description()


class TestConstraintRoundTrip:
    def test_location(self, rng):
        targets = rng.standard_normal((20, 3))
        original = LocationConstraint.from_data(targets, np.arange(5))
        restored = constraint_from_dict(constraint_to_dict(original))
        np.testing.assert_array_equal(restored.indices, original.indices)
        np.testing.assert_allclose(restored.mean, original.mean)

    def test_spread(self, rng):
        targets = rng.standard_normal((20, 2))
        original = SpreadConstraint.from_data(
            targets, np.arange(8), np.array([1.0, 0.0])
        )
        restored = constraint_from_dict(constraint_to_dict(original))
        assert restored.variance == pytest.approx(original.variance)
        np.testing.assert_allclose(restored.center, original.center)

    def test_unknown_rejected(self):
        with pytest.raises(ReproError, match="unknown constraint"):
            constraint_from_dict({"type": "magic"})


class TestModelRoundTrip:
    def test_fresh_model(self, rng):
        targets = rng.standard_normal((30, 2))
        original = BackgroundModel.from_targets(targets)
        restored = model_from_dict(model_to_dict(original))
        np.testing.assert_allclose(restored.point_means(), original.point_means())
        np.testing.assert_allclose(restored.prior.cov, original.prior.cov)

    def test_evolved_model(self, rng):
        targets = rng.standard_normal((40, 2))
        original = BackgroundModel.from_targets(targets)
        original.assimilate(LocationConstraint.from_data(targets, np.arange(10)))
        original.assimilate(
            SpreadConstraint.from_data(targets, np.arange(10), np.array([0.0, 1.0]))
        )
        restored = model_from_dict(model_to_dict(original))
        assert restored.n_blocks == original.n_blocks
        np.testing.assert_array_equal(restored.labels, original.labels)
        np.testing.assert_allclose(restored.point_means(), original.point_means())
        for b in range(original.n_blocks):
            np.testing.assert_allclose(restored.block_cov(b), original.block_cov(b))
        assert len(restored.constraints) == 2
        assert restored.max_residual() < 1e-8

    def test_restored_model_continues_mining(self, rng):
        """A restored model produces identical ICs to the original."""
        from repro.interest.ic import location_ic

        targets = rng.standard_normal((40, 2))
        original = BackgroundModel.from_targets(targets)
        original.assimilate(LocationConstraint.from_data(targets, np.arange(10)))
        restored = model_from_dict(model_to_dict(original))
        probe = np.arange(20, 30)
        observed = targets[probe].mean(axis=0)
        assert location_ic(restored, probe, observed) == pytest.approx(
            location_ic(original, probe, observed), rel=1e-12
        )

    def test_file_roundtrip(self, rng, tmp_path):
        targets = rng.standard_normal((20, 2))
        original = BackgroundModel.from_targets(targets)
        path = save_model(original, tmp_path / "model.json")
        restored = load_model(path)
        np.testing.assert_allclose(restored.prior.mean, original.prior.mean)

    def test_schema_version_checked(self, rng):
        targets = rng.standard_normal((10, 1))
        document = model_to_dict(BackgroundModel.from_targets(targets))
        document["schema"] = 999
        with pytest.raises(ReproError, match="schema"):
            model_from_dict(document)

    def test_corrupt_labels_rejected(self, rng):
        targets = rng.standard_normal((10, 1))
        document = model_to_dict(BackgroundModel.from_targets(targets))
        document["labels"] = [5] * 10  # references a missing block
        with pytest.raises(ReproError, match="missing block"):
            model_from_dict(document)


class TestResultRoundTrip:
    def _description(self):
        return Description((EqualsCondition("a", 1.0),))

    def test_scored_subgroup(self):
        original = ScoredSubgroup(
            description=self._description(),
            indices=np.array([1, 2]),
            observed_mean=np.array([0.5]),
            score=PatternScore(ic=3.0, dl=1.1),
        )
        restored = result_from_dict(result_to_dict(original))
        assert restored.description == original.description
        assert restored.si == pytest.approx(original.si)

    def test_location_pattern(self):
        original = LocationPatternResult(
            description=self._description(),
            indices=np.array([0, 4]),
            mean=np.array([1.0]),
            score=PatternScore(ic=2.0, dl=1.1),
            coverage=0.2,
        )
        restored = result_from_dict(result_to_dict(original))
        assert restored.coverage == original.coverage

    def test_spread_pattern(self):
        original = SpreadPatternResult(
            description=self._description(),
            indices=np.array([0, 1]),
            direction=np.array([0.6, 0.8]),
            variance=0.4,
            center=np.array([0.0, 0.0]),
            score=PatternScore(ic=2.0, dl=2.1),
        )
        restored = result_from_dict(result_to_dict(original))
        np.testing.assert_allclose(restored.direction, original.direction)

    def test_unknown_rejected(self):
        with pytest.raises(ReproError, match="unknown result"):
            result_from_dict({"type": "nope", "ic": 1.0, "dl": 1.0})
