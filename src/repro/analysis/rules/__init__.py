"""The built-in rule pack: importing this module registers every rule.

Mirrors :func:`repro.registry._register_builtins` — ``import
repro.analysis`` always sees the full rule vocabulary in
:data:`repro.analysis.base.RULES`. Add a new rule module here and it is
immediately runnable, explainable (``--explain``), and listed
(``--rules``).
"""

from __future__ import annotations

from repro.analysis.rules import async_rules, determinism, pickling, resources

__all__ = ["async_rules", "determinism", "pickling", "resources"]
