"""Beam search for location patterns (§II-D).

Level-wise exploration of conjunctions: keep the ``beam_width`` highest-
SI descriptions of each arity, expand each by every admissible condition,
and log the overall ``top_k``. Candidate extensions are computed
incrementally (parent mask AND the memoized condition mask) and scored in
batch: subgroup means for a batch of candidates come from one matrix
product, and the information content uses a fast path when every model
block shares one covariance (always true before any spread pattern has
been assimilated, since location updates leave covariances alone).

Each level's scoring is sharded by the attribute of the added condition
and dispatched through an :class:`~repro.engine.executor.Executor`. The
shard boundaries depend only on the candidate set — never on the worker
count — and shard results are scattered back into generation order, so a
``ProcessExecutor`` run returns bit-identical results to a serial one.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.executor import Executor, SerialExecutor
from repro.errors import SearchError
from repro.events import MiningObserver
from repro.interest.dl import LOCATION, DLParams, description_length
from repro.interest.si import PatternScore
from repro.lang.description import Description
from repro.lang.refinement import RefinementOperator
from repro.model.background import BackgroundModel
from repro.model.gaussian import LOG_2PI
from repro.obs import clock
from repro.obs.instruments import (
    BEAM_CANDIDATES,
    BEAM_PHASE_CANDIDATE_GEN,
    BEAM_PHASE_MERGE,
    BEAM_PHASE_PRUNE,
    BEAM_PHASE_SCORE,
)
from repro.obs.trace import TRACER, current
from repro.search.config import SearchConfig
from repro.search.results import ScoredSubgroup, SearchResult
from repro.utils.linalg import log_det_psd, solve_psd
from repro.utils.timer import TimeBudget


class LocationICScorer:
    """Batched Eq. 13 evaluation against a frozen background model.

    The scorer snapshots the model's block structure once; it must be
    rebuilt after the model assimilates a pattern (the miner does this).
    """

    #: Arrays the shared-memory transport may move out of the pickled
    #: payload (:func:`repro.engine.shm.publish`): everything that scales
    #: with the dataset, plus the nested model (which declares its own).
    __shm_arrays__ = (
        "model",
        "targets",
        "_labels",
        "_onehot",
        "_block_means",
        "_block_covs",
        "_weights",
        "_wtargets",
        "_wonehot",
    )

    def __init__(self, model: BackgroundModel, targets: np.ndarray) -> None:
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets[:, None]
        if targets.shape != (model.n_rows, model.dim):
            raise SearchError(
                f"targets shape {targets.shape} does not match model "
                f"({model.n_rows}, {model.dim})"
            )
        self.model = model
        self.targets = targets
        self._weights = model.weights
        self._labels = np.asarray(model.labels)
        self._n_blocks = model.n_blocks
        self._block_means = np.stack(
            [model.block_mean(b) for b in range(model.n_blocks)]
        )
        self._block_covs = np.stack(
            [model.block_cov(b) for b in range(model.n_blocks)]
        )
        # One-hot block membership for batched per-block counts.
        self._onehot = np.zeros((model.n_rows, model.n_blocks))
        self._onehot[np.arange(model.n_rows), self._labels] = 1.0
        # Weighted views: premultiplying by the case weights turns the
        # same matmuls into weighted sums, so one code shape serves both.
        if self._weights is None:
            self._wtargets = None
            self._wonehot = None
        else:
            self._wtargets = self.targets * self._weights[:, None]
            self._wonehot = self._onehot * self._weights[:, None]

        first = self._block_covs[0]
        self._uniform_cov = all(
            np.array_equal(first, self._block_covs[b]) for b in range(self._n_blocks)
        )
        if self._uniform_cov:
            d = model.dim
            self._precision = solve_psd(first, np.eye(d))
            self._logdet = log_det_psd(first)

    def score_masks(self, masks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """ICs and observed means for a ``(k, n)`` boolean mask stack.

        On weighted models, ``sizes`` is the total subgroup weight and
        the per-block counts are weighted counts; the IC formulas below
        are unchanged because the weighted model covariance stays
        ``Sigma_I = sum_b c_b Sigma_b / W^2`` with weighted ``c_b``
        (frequency semantics — see the background model).
        """
        masks = np.asarray(masks)
        if masks.ndim != 2 or masks.shape[1] != self.model.n_rows:
            raise SearchError(f"masks must be (k, {self.model.n_rows}), got {masks.shape}")
        fmasks = masks.astype(float)
        if self._weights is None:
            sizes = fmasks.sum(axis=1)
            if np.any(sizes == 0):
                raise SearchError("cannot score an empty subgroup")
            observed = (fmasks @ self.targets) / sizes[:, None]
            block_counts = fmasks @ self._onehot  # (k, B)
        else:
            sizes = fmasks @ self._weights
            if np.any(sizes == 0):
                raise SearchError("cannot score an empty subgroup")
            observed = (fmasks @ self._wtargets) / sizes[:, None]
            block_counts = fmasks @ self._wonehot  # (k, B), weighted
        model_means = (block_counts @ self._block_means) / sizes[:, None]
        diffs = observed - model_means
        d = self.model.dim

        if self._uniform_cov:
            # Sigma_I = Sigma / |I|: Mahalanobis scales by |I|, logdet by
            # -d log |I|. One matmul scores every candidate.
            maha = np.einsum("kd,de,ke->k", diffs, self._precision, diffs) * sizes
            logdet = self._logdet - d * np.log(sizes)
            ics = 0.5 * (d * LOG_2PI + logdet + maha)
            return ics, observed

        ics = np.empty(masks.shape[0])
        for k in range(masks.shape[0]):
            cov = np.einsum(
                "b,bde->de", block_counts[k], self._block_covs
            ) / sizes[k] ** 2
            maha = float(diffs[k] @ solve_psd(cov, diffs[k]))
            ics[k] = 0.5 * (d * LOG_2PI + log_det_psd(cov) + maha)
        return ics, observed

    def score_mask(self, mask: np.ndarray) -> tuple[float, np.ndarray]:
        """IC and observed mean of a single subgroup mask."""
        ics, observed = self.score_masks(np.asarray(mask)[None, :])
        return float(ics[0]), observed[0]


class _ResultLog:
    """Keeps the ``top_k`` scored subgroups, stable under ties."""

    def __init__(self, top_k: int) -> None:
        self.top_k = top_k
        self._entries: list[tuple[float, int, ScoredSubgroup]] = []
        self._counter = 0

    def add(self, entry: ScoredSubgroup) -> None:
        self._entries.append((entry.si, self._counter, entry))
        self._counter += 1
        if len(self._entries) > 4 * self.top_k:
            self._shrink()

    def _shrink(self) -> None:
        self._entries.sort(key=lambda t: (-t[0], t[1]))
        del self._entries[self.top_k:]

    def ranked(self) -> list[ScoredSubgroup]:
        self._shrink()
        return [entry for _, _, entry in self._entries]


def _score_shard(
    scorer: LocationICScorer, masks: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Worker entry point: score one attribute shard's mask stack."""
    return scorer.score_masks(masks)


def _score_shard_rows(
    scorer: LocationICScorer, payload: tuple
) -> tuple[np.ndarray, np.ndarray]:
    """Worker entry point, shared-memory transport: slice then score.

    ``payload`` is ``(stack, rows)`` where ``stack`` is the level's full
    candidate mask stack — a zero-copy view over shared memory by the
    time it arrives here — and ``rows`` the shard's candidate indices.
    ``stack[rows]`` materializes exactly the rows ``_score_shard`` would
    have received as a copied stack, so the scores are bit-identical.
    """
    stack, rows = payload
    return scorer.score_masks(stack[rows])


class LocationBeamSearch:
    """Beam search maximizing the SI of location patterns.

    Parameters
    ----------
    operator:
        Refinement operator over the dataset's description attributes.
    scorer:
        Batched IC scorer bound to the current background model.
    config:
        Beam width, depth, coverage limits, time budget.
    dl_params:
        DL weights; SI of a candidate with ``c`` conditions is
        ``IC / (gamma c + eta)``.
    executor:
        Backend evaluating the per-attribute scoring shards; serial by
        default, and guaranteed to return the serial result at any
        parallelism (see module docstring).
    observer:
        Optional :class:`~repro.events.MiningObserver`; its
        ``on_candidate`` hook fires for every admissible candidate the
        search scores, in generation order, in the coordinating process
        (shard scoring may be parallel, event delivery never is).
    """

    def __init__(
        self,
        operator: RefinementOperator,
        scorer: LocationICScorer,
        *,
        config: SearchConfig = SearchConfig(),
        dl_params: DLParams = DLParams(),
        executor: Executor | None = None,
        observer: MiningObserver | None = None,
    ) -> None:
        self.operator = operator
        self.scorer = scorer
        self.config = config
        self.dl_params = dl_params
        self.executor = executor if executor is not None else SerialExecutor()
        self.observer = observer

    def run(self) -> SearchResult:
        """Execute the level-wise search; returns the winner and the log."""
        config = self.config
        n_rows = self.scorer.model.n_rows
        budget = TimeBudget(config.time_budget_seconds)
        max_size = int(math.floor(config.max_coverage_fraction * n_rows))
        # The full data is never an interesting subgroup of itself.
        max_size = min(max_size, n_rows - 1)

        log = _ResultLog(config.top_k)
        root_mask = np.ones(n_rows, dtype=bool)
        beam: list[tuple[Description, np.ndarray]] = [(Description(), root_mask)]
        seen: set[Description] = set()
        n_evaluated = 0
        depth_reached = 0
        expired = False

        # Phase instrumentation: two clock reads per phase per level,
        # recorded against pre-bound histogram children. Spans reuse the
        # same boundaries and only materialize inside an active trace.
        trace_ctx = current()

        # The scorer is shipped to the workers once per run, not per level.
        with self.executor.session(self.scorer) as session:
            for depth in range(1, config.max_depth + 1):
                t_gen = clock.perf_counter()
                candidates: list[tuple[Description, np.ndarray]] = []
                shards: dict[str, list[int]] = {}
                for parent_description, parent_mask in beam:
                    if budget.expired:
                        expired = True
                        break
                    for refined, condition in self.operator.refinements(
                        parent_description
                    ):
                        if refined in seen:
                            continue
                        seen.add(refined)
                        mask = parent_mask & self.operator.mask_of(condition)
                        size = int(mask.sum())
                        if size < config.min_coverage or size > max_size:
                            continue
                        shards.setdefault(condition.attribute, []).append(
                            len(candidates)
                        )
                        candidates.append((refined, mask))
                t_score = clock.perf_counter()
                BEAM_PHASE_CANDIDATE_GEN.observe(t_score - t_gen)
                TRACER.record("candidate_gen", t_gen, t_score, trace_ctx)
                if expired or not candidates:
                    break
                BEAM_CANDIDATES.inc(len(candidates))

                depth_reached = depth
                ics, observed = self._score_sharded(session, candidates, shards)
                n_evaluated += len(candidates)
                t_merge = clock.perf_counter()
                BEAM_PHASE_SCORE.observe(t_merge - t_score)
                TRACER.record(
                    "score",
                    t_score,
                    t_merge,
                    trace_ctx,
                    tags={"depth": depth, "candidates": len(candidates)},
                )

                scored: list[ScoredSubgroup] = []
                for (description, mask), ic, mean in zip(candidates, ics, observed):
                    dl = description_length(
                        len(description), kind=LOCATION, params=self.dl_params
                    )
                    entry = ScoredSubgroup(
                        description=description,
                        indices=np.flatnonzero(mask),
                        observed_mean=mean,
                        score=PatternScore(ic=float(ic), dl=dl),
                    )
                    scored.append(entry)
                    log.add(entry)
                    if self.observer is not None:
                        self.observer.on_candidate(entry)
                t_prune = clock.perf_counter()
                BEAM_PHASE_MERGE.observe(t_prune - t_merge)
                TRACER.record("merge", t_merge, t_prune, trace_ctx)

                scored.sort(key=lambda e: -e.si)
                beam = [
                    (entry.description, self._mask_of_entry(entry, n_rows))
                    for entry in scored[: config.beam_width]
                ]
                t_done = clock.perf_counter()
                BEAM_PHASE_PRUNE.observe(t_done - t_prune)
                TRACER.record("prune", t_prune, t_done, trace_ctx)

        ranked = log.ranked()
        return SearchResult(
            best=ranked[0] if ranked else None,
            log=tuple(ranked),
            n_evaluated=n_evaluated,
            depth_reached=depth_reached,
            expired=expired,
        )

    def _score_sharded(
        self,
        session,
        candidates: list[tuple[Description, np.ndarray]],
        shards: dict[str, list[int]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Score one level's candidates shard-by-attribute, in order.

        Shard composition is a pure function of the candidate set, and
        results are scattered back into generation order — both
        independent of the executor, which is what makes serial and
        parallel runs identical.

        Transport: a copying session receives one mask stack per shard
        (pickled per item); a shared-memory session receives the whole
        level's stack once — published into shared memory and unlinked
        as soon as the level is scored — and per-item payloads shrink to
        the shard's row indices.
        """
        shard_indices = list(shards.values())
        if getattr(session, "uses_shared_arrays", False):
            stack = np.stack([mask for _, mask in candidates])
            ref = session.share(stack)
            try:
                results = session.map(
                    _score_shard_rows,
                    [
                        (ref, np.asarray(indices, dtype=np.intp))
                        for indices in shard_indices
                    ],
                )
            finally:
                session.release(ref)
        else:
            payloads = [
                np.stack([candidates[i][1] for i in indices])
                for indices in shard_indices
            ]
            results = session.map(_score_shard, payloads)
        ics = np.empty(len(candidates))
        observed = np.empty((len(candidates), self.scorer.model.dim))
        for indices, (shard_ics, shard_observed) in zip(shard_indices, results):
            ics[indices] = shard_ics
            observed[indices] = shard_observed
        return ics, observed

    @staticmethod
    def _mask_of_entry(entry: ScoredSubgroup, n_rows: int) -> np.ndarray:
        mask = np.zeros(n_rows, dtype=bool)
        mask[entry.indices] = True
        return mask
