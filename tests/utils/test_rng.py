"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_rng(7).standard_normal(5)
        b = as_rng(7).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).standard_normal(5)
        b = as_rng(2).standard_normal(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert as_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent_and_reproducible(self):
        first = [g.standard_normal(3) for g in spawn_rngs(42, 3)]
        second = [g.standard_normal(3) for g in spawn_rngs(42, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
        assert not np.array_equal(first[0], first[1])

    def test_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 2)
        assert len(children) == 2
        assert all(isinstance(c, np.random.Generator) for c in children)
