"""Tests for the unified, frozen, JSON-round-trippable MiningSpec."""

import json

import pytest

from repro.engine.jobs import MiningJob
from repro.errors import DataError, EngineError, ReproError, SearchError
from repro.persist import load_spec, save_spec
from repro.search.config import SearchConfig
from repro.spec import (
    DatasetSpec,
    ExecutorSpec,
    InterestSpec,
    LanguageSpec,
    MiningSpec,
    ModelSpec,
    SearchSpec,
)


class TestConstruction:
    def test_dataset_string_promoted(self):
        spec = MiningSpec(dataset="synthetic")
        assert spec.dataset == DatasetSpec(name="synthetic")

    def test_build_routes_flat_keywords(self):
        spec = MiningSpec.build(
            "water",
            dataset_seed=3,
            seed=7,
            kind="spread",
            n_iterations=2,
            beam_width=10,
            gamma=0.5,
            n_split_points=3,
            workers=4,
        )
        assert spec.dataset.seed == 3
        assert spec.search.seed == 7
        assert spec.search.kind == "spread"
        assert spec.search.beam_width == 10
        assert spec.interest.gamma == 0.5
        assert spec.language.n_split_points == 3
        assert spec.executor.workers == 4

    def test_build_rejects_unknown_keyword(self):
        with pytest.raises(ReproError, match="unknown spec keyword 'depth'"):
            MiningSpec.build("synthetic", depth=2)

    def test_with_changes(self):
        spec = MiningSpec.build("synthetic")
        changed = spec.with_changes(beam_width=5, gamma=0.9)
        assert changed.search.beam_width == 5
        assert changed.interest.gamma == 0.9
        assert spec.search.beam_width == 40  # original untouched

    def test_unknown_dataset_lists_available(self):
        with pytest.raises(DataError, match="unknown dataset 'nope'"):
            MiningSpec.build("nope")

    def test_unknown_strategy_lists_available(self):
        with pytest.raises(SearchError, match="unknown search strategy"):
            MiningSpec.build("synthetic", strategy="dfs")

    def test_unknown_measure_rejected(self):
        with pytest.raises(ReproError, match="interestingness measure"):
            MiningSpec.build("synthetic", measure="magic")

    def test_non_gaussian_model_rejected_for_now(self):
        with pytest.raises(ReproError, match="gaussian"):
            MiningSpec.build("mammals", model="bernoulli")

    def test_search_invariants_enforced(self):
        with pytest.raises(SearchError, match="beam_width"):
            MiningSpec.build("synthetic", beam_width=0)

    def test_strategy_cross_rules_enforced(self):
        with pytest.raises(EngineError, match="single-shot"):
            MiningSpec.build("crime", strategy="branch_bound", n_iterations=2)
        with pytest.raises(EngineError, match="quality_beam"):
            MiningSpec.build("synthetic", strategy="beam", measure="wracc")
        with pytest.raises(EngineError, match="classical measure"):
            MiningSpec.build("synthetic", strategy="quality_beam")

    def test_quality_beam_measure_validated_eagerly(self):
        # A typo'd measure fails at construction, not mid-batch.
        with pytest.raises(ReproError, match="unknown interestingness measure"):
            MiningSpec.build("crime", strategy="quality_beam", measure="mean_shfit")
        with pytest.raises(ReproError, match="unknown interestingness measure"):
            MiningJob(dataset="crime", strategy="quality_beam", measure="mean_shfit")


class TestSerialization:
    def test_json_round_trip_is_identity(self):
        spec = MiningSpec.build(
            "synthetic",
            kind="spread",
            n_iterations=2,
            beam_width=8,
            sparsity=2,
            workers=3,
            name="roundtrip",
        )
        rebuilt = MiningSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_save_and_load_spec(self, tmp_path):
        spec = MiningSpec.build("water", kind="spread", beam_width=6)
        path = save_spec(spec, tmp_path / "spec.json")
        assert load_spec(path) == spec

    def test_from_dict_rejects_unknown_sections(self):
        with pytest.raises(ReproError, match="unknown spec sections"):
            MiningSpec.from_dict({"dataset": "synthetic", "sarch": {}})

    def test_from_dict_rejects_unknown_section_keys(self):
        with pytest.raises(ReproError, match="unknown keys in spec section 'search'"):
            MiningSpec.from_dict(
                {"dataset": "synthetic", "search": {"beam_widht": 4}}
            )

    @pytest.mark.parametrize("bad", [[], 0, False, "", "x", 7])
    def test_from_dict_rejects_non_object_sections(self, bad):
        with pytest.raises(ReproError, match="must be an object"):
            MiningSpec.from_dict({"dataset": "synthetic", "search": bad})

    def test_from_dict_dataset_shorthand(self):
        spec = MiningSpec.from_dict({"dataset": "synthetic"})
        assert spec.dataset.name == "synthetic"

    def test_from_dict_needs_dataset(self):
        with pytest.raises(ReproError, match="'dataset' section"):
            MiningSpec.from_dict({"search": {}})

    def test_bad_schema_rejected(self):
        with pytest.raises(ReproError, match="unsupported spec schema"):
            MiningSpec.from_dict({"schema": 99, "dataset": "synthetic"})


class TestFingerprint:
    def test_ignores_name_and_executor(self):
        a = MiningSpec.build("synthetic", name="a", workers=1)
        b = MiningSpec.build("synthetic", name="b", workers=8, backend="thread")
        assert a.fingerprint() == b.fingerprint()

    def test_tracks_work_changes(self):
        a = MiningSpec.build("synthetic", beam_width=8)
        b = MiningSpec.build("synthetic", beam_width=9)
        assert a.fingerprint() != b.fingerprint()

    def test_specs_are_hashable(self):
        a = MiningSpec.build("synthetic", dataset_kwargs={"flip_probability": 0.1})
        b = MiningSpec.build("synthetic", dataset_kwargs={"flip_probability": 0.1})
        assert a == b
        assert len({a, b}) == 1

    def test_caller_dict_mutation_does_not_reach_the_spec(self):
        kwargs = {"flip_probability": 0.1}
        spec = MiningSpec.build("synthetic", dataset_kwargs=kwargs)
        before = spec.fingerprint()
        kwargs["flip_probability"] = 0.9
        assert spec.dataset.kwargs == {"flip_probability": 0.1}
        assert spec.fingerprint() == before


class TestJobInterop:
    def test_to_job_carries_every_section(self):
        spec = MiningSpec.build(
            "water",
            dataset_seed=2,
            seed=5,
            kind="spread",
            n_iterations=3,
            beam_width=12,
            max_depth=3,
            gamma=0.2,
            n_split_points=5,
            name="interop",
        )
        job = spec.to_job()
        assert job.dataset == "water"
        assert job.dataset_seed == 2
        assert job.seed == 5
        assert job.kind == "spread"
        assert job.n_iterations == 3
        assert job.config == SearchConfig(
            beam_width=12, max_depth=3, n_split_points=5
        )
        assert job.gamma == 0.2
        assert job.name == "interop"
        assert job.strategy == "beam"
        assert job.measure == "si"

    def test_from_job_round_trip(self):
        job = MiningJob(
            dataset="synthetic",
            dataset_seed=1,
            kind="spread",
            n_iterations=2,
            seed=3,
            config=SearchConfig(beam_width=6, max_depth=2),
            gamma=0.3,
            name="rt",
        )
        assert MiningSpec.from_job(job).to_job() == job

    def test_section_defaults_match_job_defaults(self):
        # A default spec and a default job must describe the same work.
        spec = MiningSpec.build("synthetic")
        job = MiningJob(dataset="synthetic")
        assert spec.to_job().fingerprint() == job.fingerprint()


class TestSectionTypes:
    def test_sections_are_frozen(self):
        spec = MiningSpec.build("synthetic")
        with pytest.raises(AttributeError):
            spec.search.beam_width = 1
        with pytest.raises(AttributeError):
            spec.name = "x"

    def test_targets_and_attributes_coerced_to_tuples(self):
        spec = MiningSpec(
            dataset=DatasetSpec("synthetic", targets=["attr_a"]),
            language=LanguageSpec(attributes=["x"]),
        )
        assert spec.dataset.targets == ("attr_a",)
        assert spec.language.attributes == ("x",)

    def test_bare_string_targets_rejected_not_split(self):
        with pytest.raises(ReproError, match="list of names"):
            DatasetSpec("synthetic", targets="ab")
        with pytest.raises(ReproError, match="list of names"):
            LanguageSpec(attributes="xy")

    def test_null_section_values_handled(self):
        # to_dict writes nulls, so from_dict must accept them back —
        # kwargs: null normalizes, a null non-nullable field errors typed.
        spec = MiningSpec.from_dict(
            {"dataset": {"name": "synthetic", "kwargs": None, "targets": None}}
        )
        assert spec.dataset.kwargs == {}
        with pytest.raises(ReproError, match="kwargs"):
            DatasetSpec("synthetic", kwargs=[1, 2])

    def test_model_prior_shape_validated(self):
        with pytest.raises(ReproError, match="mean"):
            ModelSpec(prior={"cov": [[1.0]]})

    def test_executor_section_validated_eagerly(self):
        with pytest.raises(ReproError, match="worker count"):
            ExecutorSpec(workers=-2)
        with pytest.raises(ReproError, match="backend"):
            ExecutorSpec(backend="quantum")
        with pytest.raises(ReproError, match="start_method"):
            ExecutorSpec(start_method="bogus")

    def test_single_shot_strategies_reject_explicit_prior(self):
        prior = {"mean": [0.0], "cov": [[1.0]]}
        with pytest.raises(EngineError, match="empirical prior"):
            MiningSpec.build("crime", strategy="branch_bound", prior=prior)
        with pytest.raises(EngineError, match="empirical prior"):
            MiningSpec.build(
                "crime", strategy="quality_beam", measure="mean_shift",
                prior=prior,
            )

    def test_all_sections_have_defaults(self):
        spec = MiningSpec(dataset=DatasetSpec("synthetic"))
        assert spec.language == LanguageSpec()
        assert spec.model == ModelSpec()
        assert spec.interest == InterestSpec()
        assert spec.search == SearchSpec()
        assert spec.executor == ExecutorSpec()


class TestExecutorSharedMemory:
    """The shared-memory transport toggle rides the executor section."""

    def test_defaults_off(self):
        assert ExecutorSpec().shared_memory is False

    def test_flat_keyword_routes(self):
        spec = MiningSpec.build("synthetic", shared_memory=True, workers=2)
        assert spec.executor.shared_memory is True
        assert spec.executor.workers == 2

    def test_round_trips_through_json(self):
        spec = MiningSpec.build("synthetic", shared_memory=True)
        document = spec.to_dict()
        assert document["executor"]["shared_memory"] is True
        assert MiningSpec.from_dict(document).executor.shared_memory is True

    def test_non_bool_rejected(self):
        with pytest.raises(ReproError, match="shared_memory"):
            ExecutorSpec(shared_memory="yes")

    def test_fingerprint_excludes_the_toggle(self):
        # The determinism contract makes the transport irrelevant to the
        # mined patterns, so it must not split the result cache.
        plain = MiningSpec.build("synthetic")
        shared = MiningSpec.build("synthetic", shared_memory=True, workers=4)
        assert plain.fingerprint() == shared.fingerprint()

    def test_with_changes_toggles(self):
        spec = MiningSpec.build("synthetic")
        toggled = spec.with_changes(shared_memory=True)
        assert toggled.executor.shared_memory is True
        assert spec.executor.shared_memory is False


class TestDatasetWeights:
    def test_build_routes_weights_to_dataset_section(self):
        spec = MiningSpec.build("synthetic", weights=(1.0, 2.0, 0.5))
        assert spec.dataset.weights == (1.0, 2.0, 0.5)

    def test_weights_normalized_to_float_tuple(self):
        spec = MiningSpec.build("synthetic", weights=[1, 2])
        assert spec.dataset.weights == (1.0, 2.0)
        assert all(isinstance(w, float) for w in spec.dataset.weights)

    @pytest.mark.parametrize("bad", ["heavy", (), (1.0, -2.0), (1.0, float("nan"))])
    def test_invalid_weights_rejected(self, bad):
        with pytest.raises(ReproError, match="weights"):
            MiningSpec.build("synthetic", weights=bad)

    def test_to_dict_omits_unset_weights(self):
        """Pre-weights spec documents must stay byte-identical."""
        assert "weights" not in MiningSpec.build("synthetic").to_dict()["dataset"]

    def test_json_round_trip(self):
        spec = MiningSpec.build("synthetic", weights=(1.0, 2.5))
        document = json.loads(json.dumps(spec.to_dict()))
        assert document["dataset"]["weights"] == [1.0, 2.5]
        assert MiningSpec.from_dict(document) == spec

    def test_job_round_trip(self):
        spec = MiningSpec.build("synthetic", weights=(1.0, 2.5))
        job = spec.to_job()
        assert job.weights == (1.0, 2.5)
        assert MiningSpec.from_job(job).dataset.weights == (1.0, 2.5)

    def test_weights_change_the_fingerprint(self):
        plain = MiningSpec.build("synthetic")
        weighted = MiningSpec.build("synthetic", weights=(1.0, 2.0))
        assert plain.fingerprint() != weighted.fingerprint()

    def test_unweighted_fingerprint_unchanged_by_the_field(self):
        # Adding the weights *field* must not have moved any existing
        # fingerprint: two unweighted builds agree and differ only from
        # genuinely weighted ones.
        assert (
            MiningSpec.build("synthetic").fingerprint()
            == MiningSpec.from_dict(
                MiningSpec.build("synthetic").to_dict()
            ).fingerprint()
        )


class TestDatasetContentFingerprint:
    def test_weights_feed_the_content_fingerprint(self):
        import numpy as np

        from repro.datasets import make_synthetic
        from repro.engine.cache import dataset_content_fingerprint

        dataset = make_synthetic(0)
        plain = dataset_content_fingerprint(dataset)
        ones = dataset_content_fingerprint(
            dataset.with_weights(np.ones(dataset.n_rows))
        )
        halves = dataset_content_fingerprint(
            dataset.with_weights(np.full(dataset.n_rows, 0.5))
        )
        assert plain != ones  # weighted content is different content
        assert ones != halves
        assert plain == dataset_content_fingerprint(make_synthetic(0))
