"""§III-A synthetic-data experiments: Fig. 2, Table I, and Fig. 3.

- Fig. 2: three iterations of the two-step spread mining recover the
  three planted subgroups, each with its most surprising variance
  direction.
- Table I: the SI of the ten best first-iteration patterns tracked over
  four iterations — assimilated patterns (and their redundant
  description variants) collapse to small negative SI.
- Fig. 3: SI of the three true descriptions as the binary descriptors
  are corrupted by label flips with probability p, against the SI of
  random same-size subgroups (the baseline curve).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.random_baseline import random_subgroup_si
from repro.datasets.synthetic import make_synthetic
from repro.experiments.common import PAPER_DL, jaccard, make_miner, mask_from_indices
from repro.interest.si import score_location
from repro.lang.conditions import EqualsCondition
from repro.lang.description import Description
from repro.model.background import BackgroundModel
from repro.report.tables import format_table
from repro.stats.statistics import subgroup_mean

#: The true single-condition descriptions of the planted subgroups.
TRUE_DESCRIPTIONS = tuple(
    Description((EqualsCondition(f"attr{j}", 1.0),)) for j in (3, 4, 5)
)


# --------------------------------------------------------------------- #
# Fig. 2
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Fig2Iteration:
    """One panel of Fig. 2b-d: the top pattern of one iteration."""

    index: int
    intention: str
    size: int
    subgroup_mean: np.ndarray
    direction: np.ndarray
    variance: float
    location_si: float
    spread_si: float
    matched_cluster: int          # planted cluster id (1-3) best matching
    jaccard_with_match: float


@dataclass(frozen=True)
class Fig2Result:
    iterations: tuple[Fig2Iteration, ...]

    def format(self) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        rows = [
            (
                it.index,
                it.intention,
                it.size,
                f"({it.subgroup_mean[0]:+.2f}, {it.subgroup_mean[1]:+.2f})",
                f"({it.direction[0]:+.3f}, {it.direction[1]:+.3f})",
                it.variance,
                it.location_si,
                it.spread_si,
                it.matched_cluster,
                it.jaccard_with_match,
            )
            for it in self.iterations
        ]
        return format_table(
            [
                "iter", "intention", "n", "mean", "w", "var(w)",
                "SI_loc", "SI_spread", "cluster", "jaccard",
            ],
            rows,
            floatfmt=".3f",
            title="Fig. 2: top spread pattern per iteration (synthetic data)",
        )


def run_fig2(seed: int = 0, n_iterations: int = 3) -> Fig2Result:
    """Three iterations of two-step spread mining on the synthetic data."""
    dataset = make_synthetic(seed)
    miner = make_miner(dataset)
    cluster = np.asarray(dataset.metadata["cluster"])
    iterations = []
    for it in miner.run(n_iterations, kind="spread"):
        found = mask_from_indices(it.location.indices, dataset.n_rows)
        scores = [jaccard(found, cluster == k) for k in (1, 2, 3)]
        best_cluster = int(np.argmax(scores)) + 1
        assert it.spread is not None
        iterations.append(
            Fig2Iteration(
                index=it.index,
                intention=str(it.location.description),
                size=it.location.size,
                subgroup_mean=it.location.mean,
                direction=it.spread.direction,
                variance=it.spread.variance,
                location_si=it.location.si,
                spread_si=it.spread.si,
                matched_cluster=best_cluster,
                jaccard_with_match=float(max(scores)),
            )
        )
    return Fig2Result(tuple(iterations))


# --------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Table1Row:
    intention: str
    size: int
    si_per_iteration: tuple[float, ...]


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]
    assimilated: tuple[str, ...]  # intention assimilated before iters 2, 3, 4

    def format(self) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        n_iter = len(self.rows[0].si_per_iteration) if self.rows else 0
        table_rows = [
            (row.intention, row.size, *row.si_per_iteration) for row in self.rows
        ]
        headers = ["intention", "n"] + [f"iter{k + 1}" for k in range(n_iter)]
        table = format_table(
            headers, table_rows, floatfmt=".2f",
            title="Table I: SI of top first-iteration patterns across iterations",
        )
        note = "assimilated before iterations 2..: " + ", ".join(self.assimilated)
        return f"{table}\n{note}"


def run_table1(
    seed: int = 0, *, n_tracked: int = 10, n_iterations: int = 4
) -> Table1Result:
    """Track the SI of the top first-iteration patterns over iterations.

    Mirrors §III-A: mine the first-iteration log, keep the ``n_tracked``
    best patterns, then for each subsequent iteration assimilate the top
    (location + spread, the two-step process) and re-score the tracked
    intentions against the updated background.
    """
    dataset = make_synthetic(seed)
    miner = make_miner(dataset)
    first = miner.search_locations()
    tracked = list(first.log[:n_tracked])

    si_columns: list[list[float]] = [[entry.si for entry in tracked]]
    assimilated: list[str] = []
    for _ in range(n_iterations - 1):
        # Assimilate the currently most interesting pattern (location then
        # spread, as in the paper's two-step process).
        best = max(
            (miner.score_description(entry.description) for entry in tracked),
            key=lambda e: e.si,
        )
        location = miner.as_location_result(best)
        miner.assimilate(location)
        spread = miner.find_spread_for(location)
        miner.assimilate(spread)
        assimilated.append(str(location.description))
        si_columns.append(
            [miner.score_description(entry.description).si for entry in tracked]
        )

    rows = tuple(
        Table1Row(
            intention=str(entry.description),
            size=entry.size,
            si_per_iteration=tuple(column[i] for column in si_columns),
        )
        for i, entry in enumerate(tracked)
    )
    return Table1Result(rows=rows, assimilated=tuple(assimilated))


# --------------------------------------------------------------------- #
# Fig. 3
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Fig3Result:
    """SI of the true descriptions vs descriptor distortion."""

    distortions: np.ndarray                 # flip probabilities
    si_curves: dict[str, np.ndarray]        # per true description
    baseline: np.ndarray                    # random-subgroup SI per distortion

    def format(self) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        headers = ["distortion"] + list(self.si_curves) + ["baseline"]
        rows = []
        for i, p in enumerate(self.distortions):
            rows.append(
                (
                    float(p),
                    *(float(curve[i]) for curve in self.si_curves.values()),
                    float(self.baseline[i]),
                )
            )
        return format_table(
            headers, rows, floatfmt=".2f",
            title="Fig. 3: SI of true descriptions under label-flip noise",
        )

    def recovery_threshold(self, margin: float = 0.0) -> float:
        """Largest distortion at which every true description beats the baseline."""
        ok = np.ones_like(self.baseline, dtype=bool)
        for curve in self.si_curves.values():
            ok &= curve > self.baseline + margin
        if not ok.any():
            return 0.0
        # First index where recovery fails determines the threshold.
        failures = np.flatnonzero(~ok)
        if failures.size == 0:
            return float(self.distortions[-1])
        first_bad = failures[0]
        if first_bad == 0:
            return 0.0
        return float(self.distortions[first_bad - 1])


def run_fig3(
    seed: int = 0,
    *,
    distortions=None,
    n_baseline_draws: int = 50,
) -> Fig3Result:
    """SI of the planted descriptions under increasing label-flip noise.

    For each distortion p the descriptors are re-corrupted (targets stay
    fixed by seeding); the SI of each true description and of random
    same-size subgroups is evaluated against the empirical-prior model.
    """
    if distortions is None:
        distortions = np.arange(0.0, 0.3501, 0.025)
    distortions = np.asarray(distortions, dtype=float)

    curves: dict[str, list[float]] = {str(d): [] for d in TRUE_DESCRIPTIONS}
    baseline: list[float] = []
    for p in distortions:
        dataset = make_synthetic(seed, flip_probability=float(p))
        model = BackgroundModel.from_targets(dataset.targets)
        for description in TRUE_DESCRIPTIONS:
            mask = description.matches(dataset)
            if mask.sum() < 2:
                curves[str(description)].append(float("nan"))
                continue
            observed = subgroup_mean(dataset.targets, mask)
            score = score_location(
                model, mask, observed, len(description), params=PAPER_DL
            )
            curves[str(description)].append(score.si)
        mean_si, _ = random_subgroup_si(
            model,
            dataset.targets,
            size=40,
            n_draws=n_baseline_draws,
            dl_params=PAPER_DL,
            seed=seed,
        )
        baseline.append(mean_si)

    return Fig3Result(
        distortions=distortions,
        si_curves={name: np.asarray(vals) for name, vals in curves.items()},
        baseline=np.asarray(baseline),
    )
