"""Synthetic stand-in for the UCI Communities and Crime dataset.

The paper's running example (Fig. 1) uses the UCI Communities and Crime
data: n = 1994 US districts, 122 description attributes, one target
(``violent_crimes_per_pop``), all normalized to [0, 1]. The data cannot be
fetched offline, so this module generates a seeded synthetic equivalent
with the same shape and the one planted relationship the example
measures: districts with a high rate of unmarried mothers (``pct_illeg``)
have roughly double the violent crime rate.

Calibration targets, from the paper's §I:

- top pattern intention ``pct_illeg >= 0.39``;
- that subgroup covers ~20.5% of the rows;
- mean crime rate ~0.53 inside the subgroup vs ~0.24 overall.

The generator plants exactly these numbers (up to sampling noise): the
``pct_illeg`` marginal puts ~20.5% of its mass above 0.39, and the crime
response curve doubles across that threshold. A handful of additional
named attributes (poverty, unemployment, income, ...) correlate with the
same latent disadvantage factor - so the search has plausible competing
descriptions - and the remaining attributes are factor-correlated census
noise, giving the search space its realistic 122-attribute width.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.utils.rng import as_rng

#: Attributes with a planted, interpretable relation to the latent factors.
NAMED_ATTRIBUTES = (
    "pct_illeg",
    "pct_poverty",
    "pct_unemployed",
    "med_income",
    "pct_less_than_hs",
    "pct_young_males",
    "pop_density",
    "pct_vacant_housing",
    "pct_same_city_5yr",
    "pct_two_parent_hh",
    "med_rent",
    "pct_public_assist",
)

#: Threshold from the paper's top pattern; the generator calibrates the
#: ``pct_illeg`` marginal so ~20.5% of rows exceed it.
PCT_ILLEG_THRESHOLD = 0.39


def _squash(x: np.ndarray) -> np.ndarray:
    """Map real scores smoothly into [0, 1] (UCI-style normalization)."""
    return 1.0 / (1.0 + np.exp(-x))


def make_crime(
    seed: int | np.random.Generator = 0,
    *,
    n_rows: int = 1994,
    n_descriptions: int = 122,
) -> Dataset:
    """Generate the Communities-and-Crime stand-in.

    Returns a dataset with ``n_descriptions`` numeric attributes in [0, 1]
    and a single target ``violent_crimes_per_pop`` in [0, 1]. Metadata
    records the latent disadvantage factor for ground-truth tests.
    """
    if n_descriptions < len(NAMED_ATTRIBUTES):
        raise ValueError(
            f"n_descriptions must be >= {len(NAMED_ATTRIBUTES)}, got {n_descriptions}"
        )
    rng = as_rng(seed)

    # Latent factors: social disadvantage (drives crime), urbanization,
    # residential stability, and a generic regional factor.
    disadvantage = rng.standard_normal(n_rows)
    urbanization = 0.35 * disadvantage + rng.standard_normal(n_rows)
    stability = -0.45 * disadvantage + rng.standard_normal(n_rows)
    regional = rng.standard_normal(n_rows)

    # pct_illeg: calibrated so P(pct_illeg >= 0.39) ~ 0.205. With
    # pct_illeg = clip(0.25 + 0.17 * z, 0, 1) and z standard normal, the
    # threshold 0.39 sits at z = 0.824, the 79.5th percentile.
    illeg_score = 0.92 * disadvantage + 0.39 * rng.standard_normal(n_rows)
    illeg_score /= np.sqrt(0.92**2 + 0.39**2)
    pct_illeg = np.clip(0.25 + 0.17 * illeg_score, 0.0, 1.0)

    named = {
        "pct_illeg": pct_illeg,
        "pct_poverty": _squash(0.9 * disadvantage - 0.4 + 0.55 * rng.standard_normal(n_rows)),
        "pct_unemployed": _squash(0.8 * disadvantage - 0.7 + 0.6 * rng.standard_normal(n_rows)),
        "med_income": _squash(-0.9 * disadvantage + 0.3 + 0.5 * rng.standard_normal(n_rows)),
        "pct_less_than_hs": _squash(0.7 * disadvantage - 0.5 + 0.6 * rng.standard_normal(n_rows)),
        "pct_young_males": _squash(0.3 * urbanization - 0.8 + 0.7 * rng.standard_normal(n_rows)),
        "pop_density": _squash(1.0 * urbanization - 1.0 + 0.5 * rng.standard_normal(n_rows)),
        "pct_vacant_housing": _squash(
            0.6 * disadvantage - 0.3 * stability - 0.8 + 0.6 * rng.standard_normal(n_rows)
        ),
        "pct_same_city_5yr": _squash(0.9 * stability + 0.4 + 0.5 * rng.standard_normal(n_rows)),
        "pct_two_parent_hh": _squash(-1.0 * disadvantage + 0.5 + 0.45 * rng.standard_normal(n_rows)),
        "med_rent": _squash(
            0.6 * urbanization - 0.5 * disadvantage + 0.6 * rng.standard_normal(n_rows)
        ),
        "pct_public_assist": _squash(0.85 * disadvantage - 0.6 + 0.55 * rng.standard_normal(n_rows)),
    }

    # Filler census attributes: random loadings on the latent factors plus
    # idiosyncratic noise, squashed to [0, 1]. They carry correlation
    # structure (like real census marginals) but no planted crime signal
    # beyond what they inherit from the factors.
    factors = np.stack([disadvantage, urbanization, stability, regional], axis=1)
    n_filler = n_descriptions - len(NAMED_ATTRIBUTES)
    loadings = rng.normal(0.0, 0.45, size=(4, n_filler))
    shifts = rng.normal(0.0, 0.6, size=n_filler)
    filler = _squash(factors @ loadings + shifts + 0.7 * rng.standard_normal((n_rows, n_filler)))

    # Crime response: doubles across the pct_illeg threshold. The logistic
    # ramp (not a step) keeps the relation realistic while pinning the
    # subgroup-vs-overall means near the paper's 0.53 vs 0.24.
    ramp = _squash(9.0 * (pct_illeg - PCT_ILLEG_THRESHOLD))
    crime = (
        0.135
        + 0.42 * ramp
        + 0.055 * disadvantage
        + 0.03 * urbanization
        + 0.075 * rng.standard_normal(n_rows)
    )
    crime = np.clip(crime, 0.0, 1.0)

    columns = [
        Column(name, AttributeKind.NUMERIC, values) for name, values in named.items()
    ]
    columns.extend(
        Column(f"census_{j:03d}", AttributeKind.NUMERIC, filler[:, j])
        for j in range(n_filler)
    )
    metadata = {
        "disadvantage": disadvantage,
        "pct_illeg_threshold": PCT_ILLEG_THRESHOLD,
    }
    return Dataset("crime", columns, crime, ["violent_crimes_per_pop"], metadata)
