"""Merge the tracked ``BENCH_*.json`` artifacts into one report.

Usage::

    python benchmarks/bench_report.py [--out bench_report.json]

Reads whichever of the three tracked perf files exist at the repo root
(a partial benchmark run produces a partial report, not an error),
checks they share one ``schema_version``, and emits a merged document:
the shared header plus one section per benchmark. ``--out`` writes it
as JSON (the CI artifact); without it the report prints as text.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from bench_schema import BENCH_FILES, BENCH_SCHEMA, REPO_ROOT, git_rev


def load_artifacts(root: Path = REPO_ROOT) -> dict[str, dict]:
    """``{benchmark name: stamped document}`` for every readable file."""
    artifacts: dict[str, dict] = {}
    for filename in BENCH_FILES:
        path = root / filename
        if not path.exists():
            continue
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"skipping {filename}: {exc}", file=sys.stderr)
            continue
        artifacts[document.get("benchmark", path.stem)] = document
    return artifacts


def merge(artifacts: dict[str, dict]) -> dict:
    """One document over every artifact; rejects mixed schema versions."""
    versions = {
        doc.get("schema_version") for doc in artifacts.values()
    }
    if len(versions) > 1:
        raise SystemExit(
            f"refusing to merge mixed schema versions {sorted(map(str, versions))}; "
            f"re-run the stale benchmarks"
        )
    revs = {doc.get("git_rev") for doc in artifacts.values()}
    return {
        "schema_version": next(iter(versions), BENCH_SCHEMA),
        "git_rev": revs.pop() if len(revs) == 1 else git_rev(),
        "benchmarks": artifacts,
        "missing": [
            name
            for name in BENCH_FILES
            if not any(
                doc.get("benchmark", "") in name
                for doc in artifacts.values()
            )
        ],
    }


def format_report(report: dict) -> str:
    """A short text rendering for terminals and CI logs."""
    lines = [
        f"bench report  schema={report['schema_version']}  "
        f"rev={report['git_rev'] or '?'}",
    ]
    for name, doc in sorted(report["benchmarks"].items()):
        stamped = doc.get("generated_at", "?")
        keys = [
            key
            for key in doc
            if key
            not in ("schema_version", "git_rev", "generated_at", "benchmark")
        ]
        lines.append(f"  {name:16s} at {stamped}  ({', '.join(sorted(keys))})")
    for missing in report["missing"]:
        lines.append(f"  (missing: {missing})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the merged report as JSON instead of text",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="directory holding the BENCH_*.json files (default: repo root)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root) if args.root else REPO_ROOT
    report = merge(load_artifacts(root))
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"bench report written to {args.out}")
    else:
        print(format_report(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
