"""§III-B mammal-data experiments: Figs. 4, 5 and 6.

Binary presence targets make spread patterns uninformative (a Bernoulli
variance is a function of its mean — the paper's observation), so this
case study mines *location patterns only*:

- Fig. 6: the top three location patterns across iterations; the paper
  finds (a) cold-March northern Europe + Alps, (b) dry-August south,
  (c) dry-October + warm-wettest-quarter east.
- Fig. 5: for pattern 1, the five species most surprising by SI, with
  the model's mean and 95% CI before and after assimilation.
- Fig. 4: presence maps (here: presence statistics + text maps) of the
  top three species of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.mammals import make_mammals
from repro.datasets.schema import Dataset
from repro.experiments.common import jaccard, make_miner, mask_from_indices
from repro.interest.attribution import AttributeSurprisal, attribute_surprisals
from repro.report.ascii import text_map
from repro.report.tables import format_table
from repro.search.miner import SubgroupDiscovery
from repro.search.results import LocationPatternResult

#: Planted regions the paper's three patterns should align with.
def planted_regions(dataset: Dataset) -> dict[str, np.ndarray]:
    """Ground-truth masks for the three climate regimes (§III-B)."""
    tmp_mar = dataset.column("tmp_mar").values
    rain_aug = dataset.column("rain_aug").values
    rain_oct = dataset.column("rain_oct").values
    warm_wet = dataset.column("mean_temp_wettest_quarter").values
    return {
        "cold_march": tmp_mar <= -1.68,
        "dry_august": rain_aug <= 47.62,
        "dry_october_warm": (rain_oct <= 45.25) & (warm_wet >= 16.32),
    }


# --------------------------------------------------------------------- #
# Fig. 6: the three location patterns
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Fig6Pattern:
    index: int
    intention: str
    size: int
    coverage: float
    si: float
    best_region: str
    jaccard_with_region: float
    map_text: str


@dataclass(frozen=True)
class Fig6Result:
    patterns: tuple[Fig6Pattern, ...]

    def format(self, *, with_maps: bool = False) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        rows = [
            (p.index, p.intention, p.size, p.coverage, p.si,
             p.best_region, p.jaccard_with_region)
            for p in self.patterns
        ]
        out = format_table(
            ["iter", "intention", "n", "coverage", "SI", "region", "jaccard"],
            rows,
            floatfmt=".3f",
            title="Fig. 6: top location patterns on the mammal data",
        )
        if with_maps:
            maps = "\n\n".join(
                f"pattern {p.index}: {p.intention}\n{p.map_text}"
                for p in self.patterns
            )
            out = f"{out}\n\n{maps}"
        return out


def _mine_mammal_patterns(
    seed: int, n_iterations: int
) -> tuple[Dataset, SubgroupDiscovery, list[LocationPatternResult]]:
    dataset = make_mammals(seed)
    miner = make_miner(dataset)
    patterns = [it.location for it in miner.run(n_iterations, kind="location")]
    return dataset, miner, patterns


def run_fig6(seed: int = 0, n_iterations: int = 3) -> Fig6Result:
    """Three iterations of location mining; match each against regions."""
    dataset, _miner, patterns = _mine_mammal_patterns(seed, n_iterations)
    regions = planted_regions(dataset)
    lat = np.asarray(dataset.metadata["lat"])
    lon = np.asarray(dataset.metadata["lon"])

    results = []
    for k, pattern in enumerate(patterns, start=1):
        mask = mask_from_indices(pattern.indices, dataset.n_rows)
        similarity = {name: jaccard(mask, region) for name, region in regions.items()}
        best_region = max(similarity, key=similarity.get)
        results.append(
            Fig6Pattern(
                index=k,
                intention=str(pattern.description),
                size=pattern.size,
                coverage=pattern.coverage,
                si=pattern.si,
                best_region=best_region,
                jaccard_with_region=similarity[best_region],
                map_text=text_map(lat, lon, mask, width=60, height=18),
            )
        )
    return Fig6Result(tuple(results))


# --------------------------------------------------------------------- #
# Fig. 5: most surprising species of pattern 1
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Fig5Result:
    intention: str
    top_species: tuple[AttributeSurprisal, ...]   # before assimilation
    after_update: tuple[AttributeSurprisal, ...]  # same species, after
    si: float

    def format(self) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        rows = []
        for before, after in zip(self.top_species, self.after_update):
            lo, hi = before.ci95
            rows.append(
                (
                    before.name,
                    before.observed,
                    before.expected,
                    f"[{lo:.3f}, {hi:.3f}]",
                    after.expected,
                )
            )
        return format_table(
            ["species", "observed", "model mean", "model 95% CI", "updated mean"],
            rows,
            floatfmt=".3f",
            title=f"Fig. 5: most surprising species for pattern '{self.intention}'",
        )


def run_fig5(seed: int = 0, *, n_top: int = 5) -> Fig5Result:
    """Species ranking for the first mammal pattern, before/after update."""
    dataset = make_mammals(seed)
    miner = make_miner(dataset)
    pattern = miner.find_location()
    before = attribute_surprisals(
        miner.model, pattern.indices, pattern.mean, names=dataset.target_names
    )[:n_top]
    miner.assimilate(pattern)
    after_all = {
        record.name: record
        for record in attribute_surprisals(
            miner.model, pattern.indices, pattern.mean, names=dataset.target_names
        )
    }
    after = tuple(after_all[record.name] for record in before)
    return Fig5Result(
        intention=str(pattern.description),
        top_species=tuple(before),
        after_update=after,
        si=pattern.si,
    )


# --------------------------------------------------------------------- #
# Fig. 4: presence maps of the top species
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Fig4Species:
    name: str
    prevalence: float            # overall presence rate
    prevalence_inside: float     # within the pattern's extension
    prevalence_outside: float
    map_text: str


@dataclass(frozen=True)
class Fig4Result:
    intention: str
    species: tuple[Fig4Species, ...]

    def format(self, *, with_maps: bool = False) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        rows = [
            (s.name, s.prevalence, s.prevalence_inside, s.prevalence_outside)
            for s in self.species
        ]
        out = format_table(
            ["species", "overall", "inside pattern", "outside"],
            rows,
            floatfmt=".3f",
            title=f"Fig. 4: presence of the top species ('{self.intention}')",
        )
        if with_maps:
            maps = "\n\n".join(f"{s.name}\n{s.map_text}" for s in self.species)
            out = f"{out}\n\n{maps}"
        return out


def run_fig4(seed: int = 0, *, n_species: int = 3) -> Fig4Result:
    """Presence statistics and text maps for Fig. 5's top species."""
    fig5 = run_fig5(seed, n_top=n_species)
    dataset = make_mammals(seed)
    miner = make_miner(dataset)
    pattern = miner.find_location()
    mask = mask_from_indices(pattern.indices, dataset.n_rows)
    lat = np.asarray(dataset.metadata["lat"])
    lon = np.asarray(dataset.metadata["lon"])

    species = []
    for record in fig5.top_species:
        presence = dataset.targets[:, record.index] > 0.5
        species.append(
            Fig4Species(
                name=record.name,
                prevalence=float(presence.mean()),
                prevalence_inside=float(presence[mask].mean()),
                prevalence_outside=float(presence[~mask].mean()),
                map_text=text_map(lat, lon, presence, width=60, height=18),
            )
        )
    return Fig4Result(intention=fig5.intention, species=tuple(species))
