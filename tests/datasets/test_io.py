"""CSV round-trip tests."""

import numpy as np
import pytest

from repro.datasets.io import read_csv, write_csv
from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.datasets.synthetic import make_synthetic
from repro.errors import DataError


def mixed_dataset():
    columns = [
        Column("num", AttributeKind.NUMERIC, np.array([0.5, -1.25, 3.0])),
        Column("cat", AttributeKind.CATEGORICAL, np.array(["x", "y y", "z,w"])),
        Column("bin", AttributeKind.BINARY, np.array([1.0, 0.0, 1.0])),
        Column("ord", AttributeKind.ORDINAL, np.array([0.0, 3.0, 5.0])),
    ]
    return Dataset("mixed", columns, np.array([[1.5], [2.5], [-3.5]]), ["y"])


class TestRoundTrip:
    def test_mixed_kinds(self, tmp_path):
        original = mixed_dataset()
        path = write_csv(original, tmp_path / "mixed.csv")
        loaded = read_csv(path)
        assert loaded.description_names == original.description_names
        assert loaded.target_names == original.target_names
        np.testing.assert_allclose(loaded.targets, original.targets)
        for name in original.description_names:
            a, b = original.column(name), loaded.column(name)
            assert a.kind == b.kind
            if a.kind is AttributeKind.CATEGORICAL:
                np.testing.assert_array_equal(a.values, b.values)
            else:
                np.testing.assert_allclose(
                    a.values.astype(float), b.values.astype(float)
                )

    def test_float_values_exact(self, tmp_path):
        """repr() serialization must round-trip floats bit-exactly."""
        original = make_synthetic(0)
        path = write_csv(original, tmp_path / "syn.csv")
        loaded = read_csv(path)
        np.testing.assert_array_equal(loaded.targets, original.targets)

    def test_name_defaults_to_stem(self, tmp_path):
        path = write_csv(mixed_dataset(), tmp_path / "somefile.csv")
        assert read_csv(path).name == "somefile"

    def test_name_override(self, tmp_path):
        path = write_csv(mixed_dataset(), tmp_path / "f.csv")
        assert read_csv(path, name="custom").name == "custom"


class TestReadErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError, match="header"):
            read_csv(path)

    def test_no_data_rows(self, tmp_path):
        path = tmp_path / "hdr.csv"
        path.write_text("a,b\nnumeric,target\n")
        with pytest.raises(DataError, match="no data"):
            read_csv(path)

    def test_unknown_role(self, tmp_path):
        path = tmp_path / "role.csv"
        path.write_text("a,b\nwhatever,target\n1,2\n")
        with pytest.raises(DataError, match="unknown column role"):
            read_csv(path)

    def test_no_targets(self, tmp_path):
        path = tmp_path / "nt.csv"
        path.write_text("a\nnumeric\n1\n")
        with pytest.raises(DataError, match="no target"):
            read_csv(path)

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "rag.csv"
        path.write_text("a,b\nnumeric,target\n1,2\n3\n")
        with pytest.raises(DataError, match="ragged"):
            read_csv(path)

    def test_header_length_mismatch(self, tmp_path):
        path = tmp_path / "mm.csv"
        path.write_text("a,b\nnumeric\n1,2\n")
        with pytest.raises(DataError, match="mismatch"):
            read_csv(path)
