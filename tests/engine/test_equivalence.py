"""Serial-vs-parallel equivalence: the engine's determinism contract.

Property: for any dataset seed, a ``ProcessExecutor`` run returns
*bit-identical* results to a ``SerialExecutor`` run — same subgroups in
the same order with byte-equal scores. Sharding is by attribute (never
by worker count) and merges are stable, so this holds at any
parallelism.
"""

import numpy as np
import pytest

from repro.datasets import make_synthetic
from repro.engine.executor import ProcessExecutor, SerialExecutor
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.search.spread import find_spread_direction

#: Small but non-trivial search: multiple levels, dozens of candidates.
CONFIG = SearchConfig(beam_width=8, max_depth=2, top_k=25)


def assert_search_results_identical(serial, parallel):
    """Byte-level equality of two SearchResults."""
    assert serial.n_evaluated == parallel.n_evaluated
    assert serial.depth_reached == parallel.depth_reached
    assert serial.expired == parallel.expired
    assert len(serial.log) == len(parallel.log)
    for a, b in zip(serial.log, parallel.log):
        assert a.description == b.description
        assert np.array_equal(a.indices, b.indices)
        assert a.score.ic == b.score.ic  # exact float equality, not approx
        assert a.score.dl == b.score.dl
        assert np.array_equal(a.observed_mean, b.observed_mean)
    assert (serial.best is None) == (parallel.best is None)
    if serial.best is not None:
        assert serial.best.description == parallel.best.description


class TestBeamSearchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_top_k_bit_identical_across_seeds(self, seed):
        """Acceptance: ProcessExecutor top-k == SerialExecutor top-k."""
        dataset = make_synthetic(seed)
        serial = SubgroupDiscovery(
            dataset, config=CONFIG, seed=seed, executor=SerialExecutor()
        ).search_locations()
        parallel = SubgroupDiscovery(
            dataset, config=CONFIG, seed=seed, executor=ProcessExecutor(2)
        ).search_locations()
        assert_search_results_identical(serial, parallel)

    def test_worker_count_does_not_matter(self):
        dataset = make_synthetic(0)
        results = [
            SubgroupDiscovery(
                dataset, config=CONFIG, seed=0, executor=executor
            ).search_locations()
            for executor in (SerialExecutor(), ProcessExecutor(2), ProcessExecutor(4))
        ]
        assert_search_results_identical(results[0], results[1])
        assert_search_results_identical(results[0], results[2])


class TestSpreadSearchEquivalence:
    def test_restart_fanout_bit_identical(self, synthetic_model, synthetic_dataset):
        indices = np.arange(40)
        serial = find_spread_direction(
            synthetic_model,
            indices,
            synthetic_dataset.targets,
            seed=7,
            executor=SerialExecutor(),
        )
        parallel = find_spread_direction(
            synthetic_model,
            indices,
            synthetic_dataset.targets,
            seed=7,
            executor=ProcessExecutor(2),
        )
        assert np.array_equal(serial.direction, parallel.direction)
        assert serial.ic == parallel.ic
        assert serial.variance == parallel.variance
        assert serial.n_starts == parallel.n_starts
        assert serial.n_iterations == parallel.n_iterations


class TestFullLoopEquivalence:
    def test_iterative_mining_identical(self):
        """Two full location+spread iterations, serial vs process pool."""
        dataset = make_synthetic(0)
        serial = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=SerialExecutor()
        )
        parallel = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=ProcessExecutor(2)
        )
        for _ in range(2):
            a = serial.step(kind="spread")
            b = parallel.step(kind="spread")
            assert a.location.description == b.location.description
            assert a.location.score.ic == b.location.score.ic
            assert np.array_equal(a.spread.direction, b.spread.direction)
            assert a.spread.score.ic == b.spread.score.ic


class TestSharedMemoryEquivalence:
    """The zero-copy transport must also be invisible in the results."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_beam_bit_identical(self, seed):
        dataset = make_synthetic(seed)
        serial = SubgroupDiscovery(
            dataset, config=CONFIG, seed=seed, executor=SerialExecutor()
        ).search_locations()
        with ProcessExecutor(2, shared_memory=True) as executor:
            shared = SubgroupDiscovery(
                dataset, config=CONFIG, seed=seed, executor=executor
            ).search_locations()
        assert_search_results_identical(serial, shared)

    def test_spread_bit_identical(self, synthetic_model, synthetic_dataset):
        indices = np.arange(40)
        serial = find_spread_direction(
            synthetic_model,
            indices,
            synthetic_dataset.targets,
            seed=7,
            executor=SerialExecutor(),
        )
        with ProcessExecutor(2, shared_memory=True) as executor:
            shared = find_spread_direction(
                synthetic_model,
                indices,
                synthetic_dataset.targets,
                seed=7,
                executor=executor,
            )
        assert np.array_equal(serial.direction, shared.direction)
        assert serial.ic == shared.ic
        assert serial.variance == shared.variance
        assert serial.n_iterations == shared.n_iterations

    def test_full_loop_reuses_warm_pool_bit_identically(self):
        """Two location+spread iterations over one persistent pool."""
        dataset = make_synthetic(0)
        serial = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=SerialExecutor()
        )
        with ProcessExecutor(2, shared_memory=True) as executor:
            shared = SubgroupDiscovery(
                dataset, config=CONFIG, seed=0, executor=executor
            )
            for _ in range(2):
                a = serial.step(kind="spread")
                b = shared.step(kind="spread")
                assert a.location.description == b.location.description
                assert a.location.score.ic == b.location.score.ic
                assert np.array_equal(a.spread.direction, b.spread.direction)
                assert a.spread.score.ic == b.spread.score.ic


#: Every parallel transport/start-method combination the engine offers.
PARALLEL_BACKENDS = {
    "fork": dict(start_method="fork", shared_memory=False),
    "spawn": dict(start_method="spawn", shared_memory=False),
    "shm-fork": dict(start_method="fork", shared_memory=True),
    "shm-spawn": dict(start_method="spawn", shared_memory=True),
}

#: Small-but-real searches on both acceptance datasets.
_DATASET_CONFIGS = {
    "synthetic": SearchConfig(beam_width=6, max_depth=2, top_k=15),
    "mammals": SearchConfig(beam_width=4, max_depth=1, top_k=10),
}


def _load_equivalence_dataset(name):
    if name == "synthetic":
        return make_synthetic(0)
    from repro.datasets import load_dataset

    return load_dataset("mammals", seed=0)


_SERIAL_REFERENCES: dict = {}


def _serial_reference(name):
    """Serial beam + spread results, mined once per dataset."""
    if name not in _SERIAL_REFERENCES:
        dataset = _load_equivalence_dataset(name)
        beam = SubgroupDiscovery(
            dataset,
            config=_DATASET_CONFIGS[name],
            seed=0,
            executor=SerialExecutor(),
        ).search_locations()
        from repro.model.background import BackgroundModel

        model = BackgroundModel.from_targets(dataset.targets)
        spread = find_spread_direction(
            model,
            np.arange(60),
            dataset.targets,
            seed=3,
            n_random_starts=2,
            max_iterations=40,
            executor=SerialExecutor(),
        )
        _SERIAL_REFERENCES[name] = (dataset, model, beam, spread)
    return _SERIAL_REFERENCES[name]


class TestCrossStartMethodDeterminism:
    """Satellite acceptance: serial / fork / spawn / shared-memory all
    mine bit-identical beam and spread results on the synthetic and
    mammals datasets."""

    @pytest.mark.parametrize("dataset_name", sorted(_DATASET_CONFIGS))
    @pytest.mark.parametrize("backend", sorted(PARALLEL_BACKENDS))
    def test_beam_and_spread_bit_identical(self, dataset_name, backend):
        dataset, model, reference_beam, reference_spread = _serial_reference(
            dataset_name
        )
        with ProcessExecutor(2, **PARALLEL_BACKENDS[backend]) as executor:
            beam = SubgroupDiscovery(
                dataset,
                config=_DATASET_CONFIGS[dataset_name],
                seed=0,
                executor=executor,
            ).search_locations()
            spread = find_spread_direction(
                model,
                np.arange(60),
                dataset.targets,
                seed=3,
                n_random_starts=2,
                max_iterations=40,
                executor=executor,
            )
        assert_search_results_identical(reference_beam, beam)
        assert np.array_equal(reference_spread.direction, spread.direction)
        assert reference_spread.ic == spread.ic
        assert reference_spread.variance == spread.variance
        assert reference_spread.n_iterations == spread.n_iterations
