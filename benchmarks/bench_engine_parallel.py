"""Engine: parallel beam search — wall clock and context-shipping cost.

Runs the same location beam search on scalability-sized synthetic data
(the §III-E generator scaled 16x) with the serial backend, with copying
process pools of 2 and 4 workers, and with the zero-copy shared-memory
transport (``shared_memory=True``: persistent warm pool + arrays in
``multiprocessing.shared_memory``). Speedup > 1 needs real cores: on a
single-core machine the table simply quantifies the pool overhead — and
the point of the shared-memory column is precisely that this overhead
collapses. The engine's determinism contract is asserted along the way:
every backend must return the exact same top subgroup with the exact
same scores.

Besides the human-readable table, the bench measures the per-session
context payload (what ``session()`` pickles to ship the scorer) for the
copying vs shared-memory transports and writes the whole result as
``BENCH_engine_parallel.json`` at the repo root, so the perf trajectory
is tracked commit over commit. Target: the shared payload is >= 5x
smaller. Runs standalone too::

    PYTHONPATH=src python benchmarks/bench_engine_parallel.py
"""

import json
import os
import pickle
from pathlib import Path

from bench_schema import envelope
from repro.datasets.synthetic import make_synthetic
from repro.engine.executor import resolve_executor
from repro.engine.shm import ArrayStore, publish
from repro.model.background import BackgroundModel
from repro.report.tables import format_table
from repro.search.beam import LocationICScorer
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.utils.timer import Stopwatch

#: (workers, shared_memory) runs; workers=1 is the serial reference.
RUNS = ((1, False), (2, False), (4, False), (2, True), (4, True))

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_parallel.json"


def _payload_sizes(dataset) -> dict:
    """Pickled context bytes per session: copying vs shared transport."""
    model = BackgroundModel.from_targets(dataset.targets)
    scorer = LocationICScorer(model, dataset.targets)
    copied = len(pickle.dumps(scorer, protocol=pickle.HIGHEST_PROTOCOL))
    with ArrayStore() as store:
        shared = len(
            pickle.dumps(publish(scorer, store), protocol=pickle.HIGHEST_PROTOCOL)
        )
    return {
        "copied_bytes": copied,
        "shared_bytes": shared,
        "reduction_factor": round(copied / shared, 2),
    }


def measure(seed: int = 0):
    dataset = make_synthetic(seed, n_background=8000, cluster_size=640)
    config = SearchConfig()  # paper defaults: beam 40, depth 4

    payload = _payload_sizes(dataset)
    assert payload["shared_bytes"] * 5 <= payload["copied_bytes"], (
        "shared-memory transport must shrink the per-session context "
        f"payload at least 5x, got {payload}"
    )

    rows = []
    runs_document = []
    reference = None
    serial_elapsed = None
    for workers, shared_memory in RUNS:
        executor = resolve_executor(workers, shared_memory=shared_memory)
        miner = SubgroupDiscovery(dataset, config=config, seed=seed, executor=executor)
        watch = Stopwatch()
        with watch:
            result = miner.search_locations()
        executor.close()
        # A coarse clock (or a trivially small run) can report ~0 elapsed;
        # floor it so the speedup/throughput divisions below stay finite.
        elapsed = max(watch.elapsed, 1e-9)
        if reference is None:
            reference = result
            serial_elapsed = elapsed
        else:
            # Parallelism must not change what gets mined — bit for bit,
            # regardless of worker count or transport.
            assert len(result.log) == len(reference.log)
            assert result.best.description == reference.best.description
            assert result.best.score.ic == reference.best.score.ic
        label = f"{workers}{' +shm' if shared_memory else ''}"
        rows.append((label, watch.elapsed, serial_elapsed / elapsed))
        runs_document.append(
            {
                "workers": workers,
                "shared_memory": shared_memory,
                "seconds": round(watch.elapsed, 4),
                "speedup_vs_serial": round(serial_elapsed / elapsed, 4),
                # Throughput, the scheduler-facing number: how many beam
                # candidates this backend scored per wall-clock second.
                "candidates": result.n_evaluated,
                "candidates_per_sec": round(result.n_evaluated / elapsed, 1),
            }
        )

    JSON_PATH.write_text(
        json.dumps(
            envelope({
                "benchmark": "engine_parallel",
                "dataset": {
                    "name": "synthetic-x16",
                    "seed": seed,
                    "n_rows": dataset.n_rows,
                    "n_targets": dataset.n_targets,
                },
                "cpu_count": os.cpu_count(),
                "context_payload": payload,
                "runs": runs_document,
            }),
            indent=2,
        )
        + "\n"
    )
    return rows


def bench_engine_parallel(benchmark, save_result):
    rows = benchmark.pedantic(measure, args=(0,), rounds=1, iterations=1)
    table = format_table(
        ["workers", "beam search (s)", "speedup vs serial"],
        rows,
        floatfmt=".4f",
        title=(
            "Engine: parallel beam search on synthetic x16 "
            f"({os.cpu_count()} core(s) available)"
        ),
    )
    save_result("engine_parallel", table)
    assert len(rows) == len(RUNS)
    assert JSON_PATH.exists()


if __name__ == "__main__":  # pragma: no cover - manual/CI entry point
    for row in measure(0):
        print(row)
    print(f"wrote {JSON_PATH}")
