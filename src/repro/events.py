"""Streaming events: watch the mining loop while it runs.

The paper frames mining as a dialogue; this module is the wire the
dialogue travels over. A :class:`MiningObserver` receives

- ``on_candidate`` — every admissible subgroup the beam search scores,
  in generation order (fired by
  :class:`~repro.search.beam.LocationBeamSearch`);
- ``on_iteration`` — each completed mining iteration, the moment it is
  assimilated (fired by :class:`~repro.search.miner.SubgroupDiscovery`
  and by the job runner's single-shot strategies);
- ``on_job`` — a whole job's result (fired by
  :class:`~repro.api.Workspace` and :class:`~repro.engine.service.MiningService`);
- ``on_schedule`` — every scheduling decision the service's job queue
  takes (queued, dispatched, cache hit, coalesced, cancelled, expired),
  as :class:`SchedulerEvent` records.

Observers are the *synchronous substrate* for the ROADMAP's async/
streaming front-end: an asyncio layer only needs to bridge these
callbacks onto a queue. Inline and session execution fire events live;
the service's process/thread pools cannot ship callbacks across workers,
so they *replay* ``on_iteration`` events when a job's result arrives
(documented on :class:`~repro.engine.service.MiningService`).

Observers must not mutate what they are handed — results are shared with
the mining loop — and should be cheap: ``on_candidate`` fires for every
scored subgroup (hundreds per beam level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type hints only
    from repro.engine.jobs import JobResult, MiningJob
    from repro.search.results import MiningIteration, ScoredSubgroup


#: Scheduling decisions a :class:`SchedulerEvent` may carry. ``queued``
#: fires for every accepted submission; exactly one of ``dispatched`` /
#: ``cache_hit`` / ``coalesced`` / ``cancelled`` / ``expired`` follows
#: (``promoted`` re-queues a coalesced duplicate whose primary was
#: cancelled, so it may precede a later ``dispatched``; ``aged`` marks a
#: starvation-guard priority boost of a long-queued job and may fire any
#: number of times before its ``dispatched``).
SCHEDULER_EVENT_KINDS = (
    "queued",
    "dispatched",
    "cache_hit",
    "coalesced",
    "promoted",
    "aged",
    "cancelled",
    "expired",
)


@dataclass(frozen=True)
class SchedulerEvent:
    """One scheduling decision of the service's job queue.

    Attributes
    ----------
    kind:
        One of :data:`SCHEDULER_EVENT_KINDS`.
    job_id:
        The service-assigned id of the affected submission.
    job:
        The submitted :class:`~repro.engine.jobs.MiningJob` spec.
    pending:
        Queue depth (jobs waiting, dispatched jobs excluded) right
        after the decision was taken.
    detail:
        Free-text context (e.g. which job id a duplicate coalesced
        onto, or how long past its deadline an expired job was).
    """

    kind: str
    job_id: str
    job: "MiningJob"
    pending: int = 0
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.job_id} {self.kind}{suffix}"


class MiningObserver:
    """Base observer: every hook is a no-op; override what you need."""

    def on_candidate(self, candidate: "ScoredSubgroup") -> None:
        """One scored beam candidate (fires for *every* admissible one)."""

    def on_iteration(self, iteration: "MiningIteration") -> None:
        """One completed (and assimilated) mining iteration."""

    def on_job(self, result: "JobResult") -> None:
        """One whole job finished."""

    def on_job_failed(self, job, error: BaseException) -> None:
        """One job raised instead of mining (fired by the service).

        Every submitted job ends in exactly one of ``on_job`` or
        ``on_job_failed`` (cancellation and deadline expiry excepted —
        those surface as ``on_schedule`` events), so an event-driven
        consumer never waits forever on a failed run.
        """

    def on_schedule(self, event: SchedulerEvent) -> None:
        """One scheduling decision of the service's job queue.

        May fire from a service worker thread (a slot freeing up
        dispatches the next queued job from the completion callback), so
        implementations must be thread-safe.
        """


class CallbackObserver(MiningObserver):
    """Adapter from plain callables to the observer protocol.

    >>> obs = CallbackObserver(on_iteration=lambda it: print(it.location))
    """

    def __init__(
        self,
        *,
        on_candidate: Callable | None = None,
        on_iteration: Callable | None = None,
        on_job: Callable | None = None,
        on_job_failed: Callable | None = None,
        on_schedule: Callable | None = None,
    ) -> None:
        self._on_candidate = on_candidate
        self._on_iteration = on_iteration
        self._on_job = on_job
        self._on_job_failed = on_job_failed
        self._on_schedule = on_schedule

    def on_candidate(self, candidate: "ScoredSubgroup") -> None:
        """Forward to the ``on_candidate`` callable, if given."""
        if self._on_candidate is not None:
            self._on_candidate(candidate)

    def on_iteration(self, iteration: "MiningIteration") -> None:
        """Forward to the ``on_iteration`` callable, if given."""
        if self._on_iteration is not None:
            self._on_iteration(iteration)

    def on_job(self, result: "JobResult") -> None:
        """Forward to the ``on_job`` callable, if given."""
        if self._on_job is not None:
            self._on_job(result)

    def on_job_failed(self, job, error: BaseException) -> None:
        """Forward to the ``on_job_failed`` callable, if given."""
        if self._on_job_failed is not None:
            self._on_job_failed(job, error)

    def on_schedule(self, event: SchedulerEvent) -> None:
        """Forward to the ``on_schedule`` callable, if given."""
        if self._on_schedule is not None:
            self._on_schedule(event)


class EventLog(MiningObserver):
    """An observer that records everything it sees (handy in tests)."""

    def __init__(self) -> None:
        self.candidates: list = []
        self.iterations: list = []
        self.jobs: list = []
        self.failures: list = []
        self.schedule: list = []

    def on_candidate(self, candidate: "ScoredSubgroup") -> None:
        """Append the candidate to :attr:`candidates`."""
        self.candidates.append(candidate)

    def on_iteration(self, iteration: "MiningIteration") -> None:
        """Append the iteration to :attr:`iterations`."""
        self.iterations.append(iteration)

    def on_job(self, result: "JobResult") -> None:
        """Append the result to :attr:`jobs`."""
        self.jobs.append(result)

    def on_job_failed(self, job, error: BaseException) -> None:
        """Append ``(job, error)`` to :attr:`failures`."""
        self.failures.append((job, error))

    def on_schedule(self, event: SchedulerEvent) -> None:
        """Append the scheduling event to :attr:`schedule`."""
        self.schedule.append(event)

    def clear(self) -> None:
        """Forget all recorded events."""
        self.candidates.clear()
        self.iterations.clear()
        self.jobs.clear()
        self.failures.clear()
        self.schedule.clear()


class _Broadcast(MiningObserver):
    """Fan one event stream out to several observers, in order."""

    def __init__(self, observers: tuple[MiningObserver, ...]) -> None:
        self._observers = observers

    def on_candidate(self, candidate: "ScoredSubgroup") -> None:
        for observer in self._observers:
            observer.on_candidate(candidate)

    def on_iteration(self, iteration: "MiningIteration") -> None:
        for observer in self._observers:
            observer.on_iteration(iteration)

    def on_job(self, result: "JobResult") -> None:
        for observer in self._observers:
            observer.on_job(result)

    def on_job_failed(self, job, error: BaseException) -> None:
        for observer in self._observers:
            observer.on_job_failed(job, error)

    def on_schedule(self, event: SchedulerEvent) -> None:
        for observer in self._observers:
            observer.on_schedule(event)


def broadcast(*observers: MiningObserver | None) -> MiningObserver | None:
    """Compose observers; ``None`` entries are dropped.

    Returns ``None`` when nothing remains (so callers can keep their
    fast ``observer is None`` paths), the sole observer when exactly one
    remains, and a broadcasting wrapper otherwise.
    """
    remaining = tuple(obs for obs in observers if obs is not None)
    if not remaining:
        return None
    if len(remaining) == 1:
        return remaining[0]
    return _Broadcast(remaining)
