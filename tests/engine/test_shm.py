"""Tests for the zero-copy shared-memory transport (repro.engine.shm)."""

import pickle

import numpy as np
import pytest

from repro.datasets import make_synthetic
from repro.engine import shm
from repro.engine.shm import ArrayStore, SharedArrayRef, SharedBytesRef, publish
from repro.errors import EngineError
from repro.model.background import BackgroundModel
from repro.search.beam import LocationICScorer
from repro.search.spread import SpreadObjective


class TestArrayStore:
    def test_pack_roundtrips_values_and_dtypes(self):
        with ArrayStore() as store:
            arrays = [
                np.arange(12, dtype=float).reshape(3, 4),
                np.array([True, False, True]),
                np.arange(5, dtype=np.int64),
            ]
            refs = store.pack(arrays)
            for ref, original in zip(refs, arrays):
                restored = pickle.loads(pickle.dumps(ref))
                assert np.array_equal(restored, original)
                assert restored.dtype == original.dtype
                assert restored.shape == original.shape

    def test_views_are_read_only(self):
        with ArrayStore() as store:
            ref = store.share_array(np.zeros(4))
            view = ref.resolve()
            with pytest.raises(ValueError):
                view[0] = 1.0

    def test_non_contiguous_arrays_pack_exactly(self):
        matrix = np.arange(20, dtype=float).reshape(4, 5)
        column = matrix[:, 2]  # stride > itemsize
        with ArrayStore() as store:
            ref = store.share_array(column)
            assert np.array_equal(ref.resolve(), column)

    def test_object_dtype_rejected(self):
        with ArrayStore() as store:
            with pytest.raises(EngineError, match="object-dtype"):
                store.pack([np.array([object()])])

    def test_share_bytes_roundtrip(self):
        with ArrayStore() as store:
            ref = store.share_bytes(b"hello shared world")
            assert isinstance(ref, SharedBytesRef)
            assert ref.load() == b"hello shared world"
            # Unlike array refs, byte refs unpickle as themselves.
            assert pickle.loads(pickle.dumps(ref)) == ref

    def test_close_unlinks_everything_and_is_idempotent(self):
        store = ArrayStore()
        store.pack([np.ones(3), np.zeros(2)])
        store.share_bytes(b"x")
        assert store.segment_names
        assert shm.live_segments()
        store.close()
        assert store.segment_names == ()
        assert shm.live_segments() == frozenset()
        store.close()  # second close is a no-op

    def test_release_unlinks_one_segment_early(self):
        store = ArrayStore()
        early = store.share_array(np.ones(3))
        keep = store.share_array(np.zeros(3))
        store.release(early)
        assert early.name not in shm.live_segments()
        assert keep.name in shm.live_segments()
        store.close()

    def test_closed_store_rejects_new_segments(self):
        store = ArrayStore()
        store.close()
        with pytest.raises(EngineError, match="closed"):
            store.share_array(np.ones(1))

    def test_attach_after_unlink_is_a_typed_error(self):
        store = ArrayStore()
        ref = store.share_array(np.arange(64, dtype=float))
        store.close()
        with pytest.raises(EngineError, match="unlinked"):
            SharedArrayRef(ref.name, ref.offset, ref.shape, ref.dtype).resolve()


class TestPublish:
    def test_strips_declared_arrays_without_touching_original(self):
        dataset = make_synthetic(0)
        model = BackgroundModel.from_targets(dataset.targets)
        scorer = LocationICScorer(model, dataset.targets)
        targets_before = scorer.targets
        with ArrayStore() as store:
            stripped = publish(scorer, store)
            assert scorer.targets is targets_before  # original untouched
            assert isinstance(stripped.targets, SharedArrayRef)
            restored = pickle.loads(pickle.dumps(stripped))
        assert np.array_equal(restored.targets, scorer.targets)
        assert np.array_equal(restored._onehot, scorer._onehot)
        assert np.array_equal(
            restored.model.labels, scorer.model.labels
        )
        assert np.array_equal(restored.model.prior.mean, model.prior.mean)

    def test_restored_scorer_scores_bit_identically(self):
        dataset = make_synthetic(0)
        model = BackgroundModel.from_targets(dataset.targets)
        scorer = LocationICScorer(model, dataset.targets)
        masks = np.zeros((3, dataset.n_rows), dtype=bool)
        masks[0, :10] = True
        masks[1, 5:40] = True
        masks[2, ::7] = True
        reference_ics, reference_means = scorer.score_masks(masks)
        with ArrayStore() as store:
            restored = pickle.loads(pickle.dumps(publish(scorer, store)))
            ics, means = restored.score_masks(masks)
        assert np.array_equal(ics, reference_ics)
        assert np.array_equal(means, reference_means)

    def test_spread_objective_publishes(self):
        dataset = make_synthetic(0)
        model = BackgroundModel.from_targets(dataset.targets)
        objective = SpreadObjective(model, np.arange(40), dataset.targets)
        w = np.zeros(objective.dim)
        w[0] = 1.0
        reference = objective.value(w)
        with ArrayStore() as store:
            context = publish((objective, 300, 1e-9), store)
            restored, max_iterations, tol = pickle.loads(pickle.dumps(context))
            assert (max_iterations, tol) == (300, 1e-9)
            assert restored.value(w) == reference

    def test_shared_array_referenced_twice_ships_once(self):
        array = np.arange(6, dtype=float)
        with ArrayStore() as store:
            stripped = publish((array, array), store)
            assert stripped[0] is stripped[1]
            assert len(store.segment_names) == 1
            a, b = pickle.loads(pickle.dumps(stripped))
        assert np.array_equal(a, array)
        assert np.array_equal(b, array)

    def test_context_without_shareable_arrays_passes_through(self):
        context = {"max_iterations": 300, "tol": 1e-9}
        with ArrayStore() as store:
            assert publish(context, store) is context
            assert store.segment_names == ()

    def test_payload_shrinks_at_least_5x_on_scorer(self):
        """Acceptance: per-session context-shipping payload >= 5x smaller."""
        dataset = make_synthetic(0)
        model = BackgroundModel.from_targets(dataset.targets)
        scorer = LocationICScorer(model, dataset.targets)
        copied = shm.payload_nbytes(scorer)
        with ArrayStore() as store:
            shared = shm.payload_nbytes(publish(scorer, store))
        assert shared * 5 <= copied, (
            f"expected >=5x reduction, got {copied} -> {shared} bytes"
        )


class TestPruneAttachments:
    """Pruning must never unmap pages a live view still points into."""

    def test_busy_segments_survive_prune(self):
        store = ArrayStore()
        data = np.arange(8, dtype=float)
        ref = store.share_array(data)
        view = ref.resolve()
        shm.prune_attachments()
        assert ref.name in shm._ATTACHED  # shielded by the live view
        assert np.array_equal(view, data)  # pages still mapped
        del view
        shm.prune_attachments()
        assert ref.name not in shm._ATTACHED  # closable once views die
        store.close()

    def test_keep_shields_viewless_segments(self):
        store = ArrayStore()
        ref = store.share_array(np.ones(4))
        shm._attach_segment(ref.name)  # mapped, no views yet
        shm.prune_attachments(keep=(ref.name,))
        assert ref.name in shm._ATTACHED
        shm.prune_attachments()
        assert ref.name not in shm._ATTACHED
        store.close()
