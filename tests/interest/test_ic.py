"""Tests for information content (Eqs. 13 and 19)."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import ModelError
from repro.interest.ic import location_ic, spread_ic
from repro.model.background import BackgroundModel
from repro.model.patterns import LocationConstraint
from repro.model.priors import Prior
from repro.stats.statistics import subgroup_mean


@pytest.fixture()
def targets(rng):
    return rng.standard_normal((50, 2))


@pytest.fixture()
def model(targets):
    return BackgroundModel.from_targets(targets)


class TestLocationIC:
    def test_closed_form_single_block(self, targets, model):
        """IC = -log N(obs; mu, Sigma/|I|) for the fresh model."""
        idx = np.arange(10)
        observed = subgroup_mean(targets, idx)
        expected = -sps.multivariate_normal(
            mean=model.prior.mean, cov=model.prior.cov / 10
        ).logpdf(observed)
        assert location_ic(model, idx, observed) == pytest.approx(expected, rel=1e-9)

    def test_grows_with_displacement(self, model):
        idx = np.arange(10)
        base = model.prior.mean
        ics = [
            location_ic(model, idx, base + shift)
            for shift in (0.0, 0.5, 1.0, 2.0)
        ]
        assert ics == sorted(ics)

    def test_grows_with_coverage_at_fixed_displacement(self, model):
        """Larger subgroups pin the statistic harder -> more information."""
        displaced = model.prior.mean + 1.0
        small = location_ic(model, np.arange(5), displaced)
        large = location_ic(model, np.arange(40), displaced)
        assert large > small

    def test_ic_at_expectation_is_negative_log_peak(self, model):
        """At zero displacement the IC equals the log-volume term only."""
        idx = np.arange(20)
        mu, cov = model.subgroup_mean_distribution(idx)
        expected = 0.5 * (2 * np.log(2 * np.pi) + np.linalg.slogdet(cov)[1])
        assert location_ic(model, idx, mu) == pytest.approx(expected, rel=1e-9)

    def test_assimilation_kills_ic(self, targets, model):
        idx = np.arange(10)
        observed = subgroup_mean(targets, idx)
        before = location_ic(model, idx, observed)
        model.assimilate(LocationConstraint.from_data(targets, idx))
        after = location_ic(model, idx, observed)
        assert after < before
        assert after < 0.5  # only the log-volume term remains

    def test_dimension_check(self, model):
        with pytest.raises(ValueError, match="length"):
            location_ic(model, np.arange(5), np.zeros(3))


class TestSpreadIC:
    def test_matches_mixture_logpdf(self, targets, model):
        from repro.stats.chi2mix import Chi2Mixture

        idx = np.arange(12)
        w = np.array([1.0, 0.0])
        variance = 0.7
        counts, _, covs = model.spread_blocks(idx)
        a = np.array([w @ c @ w for c in covs]) / 12.0
        expected = -Chi2Mixture(a, weights=counts).logpdf(variance)
        center = subgroup_mean(targets, idx)
        assert spread_ic(model, idx, w, variance, center) == pytest.approx(
            expected, rel=1e-10
        )

    def test_surprising_small_variance_high_ic(self, targets, model):
        idx = np.arange(12)
        w = np.array([1.0, 0.0])
        center = subgroup_mean(targets, idx)
        expected_var = float(model.prior.cov[0, 0])
        ic_tiny = spread_ic(model, idx, w, 1e-4 * expected_var, center)
        ic_typical = spread_ic(model, idx, w, expected_var, center)
        assert ic_tiny > ic_typical + 10.0

    def test_surprising_large_variance_high_ic(self, targets, model):
        idx = np.arange(12)
        w = np.array([0.0, 1.0])
        center = subgroup_mean(targets, idx)
        expected_var = float(model.prior.cov[1, 1])
        ic_huge = spread_ic(model, idx, w, 20.0 * expected_var, center)
        ic_typical = spread_ic(model, idx, w, expected_var, center)
        assert ic_huge > ic_typical

    def test_requires_unit_direction(self, targets, model):
        with pytest.raises(ValueError, match="unit"):
            spread_ic(model, np.arange(5), np.array([2.0, 0.0]), 1.0, np.zeros(2))

    def test_requires_positive_variance(self, targets, model):
        with pytest.raises(ModelError, match="positive"):
            spread_ic(model, np.arange(5), np.array([1.0, 0.0]), 0.0, np.zeros(2))

    def test_dimension_check(self, model):
        with pytest.raises(ModelError, match="dim"):
            spread_ic(model, np.arange(5), np.array([1.0, 0.0, 0.0]) / 1.0, 1.0, np.zeros(3))
