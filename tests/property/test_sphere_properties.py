"""Property-based tests of the sphere manifold and the spread gradient."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.background import BackgroundModel
from repro.model.patterns import SpreadConstraint
from repro.search.sphere import canonical_sign, project_tangent, random_unit, retract
from repro.search.spread import SpreadObjective

seeds = st.integers(min_value=0, max_value=2**31 - 1)
dims = st.integers(min_value=1, max_value=6)


class TestSphereProperties:
    @given(seed=seeds, dim=dims)
    @settings(max_examples=100, deadline=None)
    def test_random_unit_norm(self, seed, dim):
        w = random_unit(np.random.default_rng(seed), dim)
        assert np.linalg.norm(w) == pytest.approx(1.0, abs=1e-12)

    @given(seed=seeds, dim=dims)
    @settings(max_examples=100, deadline=None)
    def test_tangent_orthogonality(self, seed, dim):
        rng = np.random.default_rng(seed)
        w = random_unit(rng, dim)
        v = rng.standard_normal(dim)
        assert float(w @ project_tangent(w, v)) == pytest.approx(0.0, abs=1e-10)

    @given(seed=seeds, dim=dims, scale=st.floats(0.0, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_retraction_stays_on_sphere(self, seed, dim, scale):
        rng = np.random.default_rng(seed)
        w = random_unit(rng, dim)
        step = scale * project_tangent(w, rng.standard_normal(dim))
        assert np.linalg.norm(retract(w, step)) == pytest.approx(1.0, abs=1e-12)

    @given(seed=seeds, dim=dims)
    @settings(max_examples=100, deadline=None)
    def test_canonical_sign_preserves_axis(self, seed, dim):
        w = random_unit(np.random.default_rng(seed), dim)
        flipped = canonical_sign(w)
        np.testing.assert_allclose(np.abs(flipped), np.abs(w))
        assert flipped[np.argmax(np.abs(flipped))] > 0


class TestSpreadGradientProperties:
    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_gradient_matches_finite_differences(self, seed):
        """Holds for fresh and block-split models alike."""
        rng = np.random.default_rng(seed)
        d = int(rng.integers(2, 4))
        n = 50
        targets = rng.standard_normal((n, d))
        model = BackgroundModel.from_targets(targets)
        # Randomly split the model so multiple blocks intersect the group.
        w0 = random_unit(rng, d)
        model.assimilate(
            SpreadConstraint.from_data(targets, np.arange(10, 30), w0)
        )
        objective = SpreadObjective(model, np.arange(0, 25), targets)
        w = random_unit(rng, d)
        value, grad = objective.value_and_grad(w)
        assert np.isfinite(value)
        eps = 1e-6
        for j in range(d):
            delta = np.zeros(d)
            delta[j] = eps
            numeric = (objective.value(w + delta) - objective.value(w - delta)) / (
                2 * eps
            )
            assert grad[j] == pytest.approx(numeric, rel=5e-4, abs=1e-5)

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_objective_even_in_w(self, seed):
        rng = np.random.default_rng(seed)
        targets = rng.standard_normal((40, 3))
        model = BackgroundModel.from_targets(targets)
        objective = SpreadObjective(model, np.arange(15), targets)
        w = random_unit(rng, 3)
        assert objective.value(w) == pytest.approx(objective.value(-w), rel=1e-12)
