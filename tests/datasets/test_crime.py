"""Tests for the Communities-and-Crime stand-in (§I / Fig. 1 calibration)."""

import numpy as np
import pytest

from repro.datasets.crime import PCT_ILLEG_THRESHOLD, make_crime
from repro.errors import DataError


class TestShape:
    def test_paper_dimensions(self, crime_dataset):
        assert crime_dataset.n_rows == 1994
        assert crime_dataset.n_descriptions == 122
        assert crime_dataset.n_targets == 1
        assert crime_dataset.target_names == ["violent_crimes_per_pop"]

    def test_all_values_in_unit_interval(self, crime_dataset):
        assert crime_dataset.targets.min() >= 0.0
        assert crime_dataset.targets.max() <= 1.0
        for col in crime_dataset.columns():
            assert col.values.min() >= 0.0
            assert col.values.max() <= 1.0

    def test_too_few_descriptions_rejected(self):
        with pytest.raises(ValueError):
            make_crime(0, n_descriptions=5)


class TestPlantedCalibration:
    """The paper's numbers: coverage ~20.5%, means 0.53 vs 0.24."""

    def test_threshold_coverage(self, crime_dataset):
        pct = crime_dataset.column("pct_illeg").values
        coverage = (pct >= PCT_ILLEG_THRESHOLD).mean()
        assert 0.15 <= coverage <= 0.26

    def test_subgroup_mean_doubles(self, crime_dataset):
        pct = crime_dataset.column("pct_illeg").values
        crime = crime_dataset.targets[:, 0]
        subgroup = crime[pct >= PCT_ILLEG_THRESHOLD]
        assert 0.20 <= crime.mean() <= 0.30
        assert 0.45 <= subgroup.mean() <= 0.60
        assert subgroup.mean() > 1.7 * crime.mean()

    def test_pct_illeg_is_the_strongest_single_correlate(self, crime_dataset):
        crime = crime_dataset.targets[:, 0]
        correlations = {
            name: abs(np.corrcoef(crime_dataset.column(name).values, crime)[0, 1])
            for name in crime_dataset.description_names
        }
        assert max(correlations, key=correlations.get) == "pct_illeg"

    def test_income_negatively_correlated(self, crime_dataset):
        crime = crime_dataset.targets[:, 0]
        rho = np.corrcoef(crime_dataset.column("med_income").values, crime)[0, 1]
        assert rho < -0.1
