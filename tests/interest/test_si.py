"""Tests for the SI ratio and pattern scores."""

import numpy as np
import pytest

from repro.interest.dl import DLParams
from repro.interest.si import PatternScore, score_location, score_spread
from repro.model.background import BackgroundModel
from repro.stats.statistics import subgroup_mean, subgroup_spread


class TestPatternScore:
    def test_si_is_ratio(self):
        assert PatternScore(ic=10.0, dl=2.0).si == pytest.approx(5.0)

    def test_negative_ic_allowed(self):
        assert PatternScore(ic=-1.0, dl=1.1).si < 0


class TestScoring:
    @pytest.fixture()
    def setup(self, rng):
        targets = rng.standard_normal((40, 2))
        targets[:10] += 3.0
        model = BackgroundModel.from_targets(targets)
        return targets, model

    def test_location_uses_location_dl(self, setup):
        targets, model = setup
        idx = np.arange(10)
        score = score_location(model, idx, subgroup_mean(targets, idx), 2)
        assert score.dl == pytest.approx(1.2)

    def test_spread_dl_has_extra_term(self, setup):
        targets, model = setup
        idx = np.arange(10)
        w = np.array([1.0, 0.0])
        variance = subgroup_spread(targets, idx, w)
        center = subgroup_mean(targets, idx)
        score = score_spread(model, idx, w, variance, center, 2)
        assert score.dl == pytest.approx(2.2)

    def test_more_conditions_lower_si_same_extension(self, setup):
        """The paper's Table I observation: redundant conditions cost SI."""
        targets, model = setup
        idx = np.arange(10)
        observed = subgroup_mean(targets, idx)
        one = score_location(model, idx, observed, 1)
        two = score_location(model, idx, observed, 2)
        assert one.ic == pytest.approx(two.ic)
        assert one.si > two.si

    def test_custom_dl_params(self, setup):
        targets, model = setup
        idx = np.arange(10)
        observed = subgroup_mean(targets, idx)
        score = score_location(
            model, idx, observed, 1, params=DLParams(gamma=1.0, eta=0.5)
        )
        assert score.dl == pytest.approx(1.5)

    def test_planted_shift_scores_higher_than_random(self, setup):
        targets, model = setup
        planted = score_location(
            model, np.arange(10), subgroup_mean(targets, np.arange(10)), 1
        )
        random_idx = np.arange(15, 25)
        random = score_location(
            model, random_idx, subgroup_mean(targets, random_idx), 1
        )
        assert planted.si > random.si + 5.0
