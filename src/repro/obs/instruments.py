"""Every instrument the engine records, declared once, in one order.

Instrumented modules import their handles from here instead of
declaring metrics ad hoc, which buys three things:

- **Deterministic registration order** (a tentpole requirement): the
  registry's contents depend only on this module's top-to-bottom
  order, never on which subsystem happened to be imported first.
- **One place to read the vocabulary**: the README metrics table, the
  ``sisd top`` dashboard, and the CI smoke assertions all reference
  names defined here.
- **Pre-bound handles**: the hot paths bind label children at import
  time (``BEAM_PHASE.labels("score")``), so recording one event is a
  lock and an add — no name lookup, no label join, no formatting.

Everything registers against :data:`METRICS`, the process-wide default
registry that ``GET /metrics`` renders. Pull-style values (cache hit
counts, queue depth, journal lag) are bridged in by *collectors* that
the owning objects register on creation and remove on close — see
:meth:`repro.obs.metrics.MetricsRegistry.register_collector`.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

__all__ = ["METRICS"]

#: The process-wide registry: every tier records here, every
#: ``/metrics`` endpoint renders it.
METRICS = MetricsRegistry()

# --------------------------------------------------------------------- #
# Search hot path (repro.search.beam / repro.search.miner)
# --------------------------------------------------------------------- #
#: Per-level beam phase durations; phase ∈ candidate_gen|score|prune|merge.
BEAM_PHASE = METRICS.histogram(
    "sisd_beam_phase_seconds",
    "Beam search time per phase per level",
    labels=("phase",),
)
#: Candidates scored by the beam search (one count per subgroup).
BEAM_CANDIDATES = METRICS.counter(
    "sisd_beam_candidates_total", "Beam candidates scored"
)
#: Mining-loop steps; outcome ∈ mined|replayed (belief-cache hit).
MINER_STEPS = METRICS.counter(
    "sisd_miner_steps_total",
    "SubgroupDiscovery.step calls by outcome",
    labels=("outcome",),
)
#: Wall time of one step's pattern searches; phase ∈ location|spread.
STEP_PHASE = METRICS.histogram(
    "sisd_step_phase_seconds",
    "Mining-step search time per phase",
    labels=("phase",),
)

# --------------------------------------------------------------------- #
# Service tier (repro.engine.service)
# --------------------------------------------------------------------- #
JOBS_SUBMITTED = METRICS.counter(
    "sisd_jobs_submitted_total", "Jobs accepted per tenant", labels=("tenant",)
)
JOBS_REJECTED = METRICS.counter(
    "sisd_jobs_rejected_total",
    "Jobs refused at submit per tenant (queue caps, auth)",
    labels=("tenant",),
)
JOBS_PREEMPTED = METRICS.counter(
    "sisd_jobs_preempted_total",
    "Jobs preempted back to the queue per tenant",
    labels=("tenant",),
)
JOBS_FINISHED = METRICS.counter(
    "sisd_jobs_finished_total",
    "Jobs reaching a terminal state",
    labels=("state",),
)
QUEUE_DEPTH = METRICS.gauge(
    "sisd_queue_depth", "Jobs currently queued (refreshed at scrape)"
)
QUEUE_AGED = METRICS.counter(
    "sisd_queue_aged_total", "Queue-aging priority promotions"
)
QUEUE_WAIT = METRICS.histogram(
    "sisd_queue_wait_seconds", "Submit-to-dispatch latency"
)

# Result / belief cache hit ratios (collector-refreshed gauges).
RESULT_CACHE_HITS = METRICS.gauge(
    "sisd_result_cache_hits", "Service result-cache hits"
)
RESULT_CACHE_MISSES = METRICS.gauge(
    "sisd_result_cache_misses", "Service result-cache misses"
)
RESULT_CACHE_HIT_RATIO = METRICS.gauge(
    "sisd_result_cache_hit_ratio", "Service result-cache hit ratio"
)
BELIEF_CACHE_HITS = METRICS.gauge(
    "sisd_belief_cache_hits", "Belief-prefix cache hits"
)
BELIEF_CACHE_MISSES = METRICS.gauge(
    "sisd_belief_cache_misses", "Belief-prefix cache misses"
)
BELIEF_CACHE_EVICTIONS = METRICS.gauge(
    "sisd_belief_cache_evictions", "Belief-prefix cache evictions"
)
BELIEF_CACHE_HIT_RATIO = METRICS.gauge(
    "sisd_belief_cache_hit_ratio", "Belief-prefix cache hit ratio"
)

# --------------------------------------------------------------------- #
# Durable store (repro.store)
# --------------------------------------------------------------------- #
STORE_RECORDS = METRICS.gauge(
    "sisd_store_records", "Scheduler records held durably"
)
STORE_JOURNAL_LAG = METRICS.gauge(
    "sisd_store_journal_lag",
    "Journal ops not yet folded into the sqlite snapshot",
)
BELIEF_SPILL_HITS = METRICS.gauge(
    "sisd_belief_spill_hits", "Belief-spill disk hits"
)
BELIEF_SPILL_MISSES = METRICS.gauge(
    "sisd_belief_spill_misses", "Belief-spill disk misses"
)
BELIEF_SPILL_HIT_RATIO = METRICS.gauge(
    "sisd_belief_spill_hit_ratio", "Belief-spill disk hit ratio"
)

# --------------------------------------------------------------------- #
# Server tier (repro.server)
# --------------------------------------------------------------------- #
HTTP_REQUESTS = METRICS.counter(
    "sisd_http_requests_total",
    "HTTP requests dispatched, by route root",
    labels=("route",),
)
EVENTS_PUBLISHED = METRICS.gauge(
    "sisd_events_published", "Events published to the hub"
)
EVENTS_RETAINED = METRICS.gauge(
    "sisd_events_retained", "Events currently in the replay history"
)
EVENTS_SUBSCRIBERS = METRICS.gauge(
    "sisd_events_subscribers", "Live SSE subscribers"
)
EVENTS_DROPPED = METRICS.gauge(
    "sisd_events_dropped", "Events dropped on slow consumers"
)
SSE_RESUME_GAPS = METRICS.counter(
    "sisd_sse_resume_gaps_total",
    "SSE resumes whose Last-Event-ID predated the retained history",
)

# --------------------------------------------------------------------- #
# Distributed tier (repro.dist)
# --------------------------------------------------------------------- #
DIST_SHARD_RTT = METRICS.histogram(
    "sisd_dist_shard_rtt_seconds",
    "Remote shard round-trip time per worker",
    labels=("worker",),
)
DIST_SHARDS = METRICS.counter(
    "sisd_dist_shards_total",
    "Shards executed, by path",
    labels=("path",),
)
DIST_FAILOVERS = METRICS.counter(
    "sisd_dist_failovers_total", "Shards retried on another worker"
)
DIST_CONTEXTS_SHIPPED = METRICS.counter(
    "sisd_dist_contexts_shipped_total", "Session contexts shipped to workers"
)

WORKER_SHARDS = METRICS.counter(
    "sisd_worker_shards_total", "Shards executed by this worker daemon"
)
WORKER_ITEMS = METRICS.counter(
    "sisd_worker_items_total", "Work items scored by this worker daemon"
)
WORKER_ERRORS = METRICS.counter(
    "sisd_worker_errors_total", "Shard executions that raised"
)
WORKER_CONTEXT_MISSES = METRICS.counter(
    "sisd_worker_context_misses_total",
    "Shard requests naming a context this worker did not hold",
)
WORKER_SHARD_SECONDS = METRICS.histogram(
    "sisd_worker_shard_seconds", "Shard execution time on the worker"
)

ROUTER_SUBMITTED = METRICS.counter(
    "sisd_router_submitted_total", "Jobs placed on a replica by the router"
)
ROUTER_FORWARDED = METRICS.counter(
    "sisd_router_forwarded_total", "Requests proxied to replicas"
)
ROUTER_REBALANCES = METRICS.counter(
    "sisd_router_rebalances_total", "Hash-ring membership changes"
)

#: Pre-bound beam phase children (the hot-path handles).
BEAM_PHASE_CANDIDATE_GEN = BEAM_PHASE.labels("candidate_gen")
BEAM_PHASE_SCORE = BEAM_PHASE.labels("score")
BEAM_PHASE_PRUNE = BEAM_PHASE.labels("prune")
BEAM_PHASE_MERGE = BEAM_PHASE.labels("merge")

#: Pre-bound step phases.
STEP_PHASE_LOCATION = STEP_PHASE.labels("location")
STEP_PHASE_SPREAD = STEP_PHASE.labels("spread")

#: Pre-bound miner outcomes.
MINER_STEPS_MINED = MINER_STEPS.labels("mined")
MINER_STEPS_REPLAYED = MINER_STEPS.labels("replayed")

#: Pre-bound dist shard paths.
DIST_SHARDS_REMOTE = DIST_SHARDS.labels("remote")
DIST_SHARDS_LOCAL = DIST_SHARDS.labels("local")


def _collect_belief_cache() -> None:
    """Refresh belief-cache gauges from the process-wide cache."""
    from repro.engine.cache import BELIEF_CACHE

    stats = BELIEF_CACHE.stats
    BELIEF_CACHE_HITS.set(stats.hits)
    BELIEF_CACHE_MISSES.set(stats.misses)
    BELIEF_CACHE_EVICTIONS.set(stats.evictions)
    BELIEF_CACHE_HIT_RATIO.set(stats.hit_rate)


METRICS.register_collector(_collect_belief_cache)
